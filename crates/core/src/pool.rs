//! Concurrent request serving: a pool of bootstrap-enclave workers.
//!
//! The paper's HTTPS evaluation serves many clients concurrently and its
//! Section VII discusses multi-threaded enclaves, warning that shared
//! in-memory CFI metadata is TOCTOU-prone and suggesting per-thread
//! isolation. This pool takes the robust variant of that advice: each
//! worker is a fully isolated enclave instance (own EPC image, own shadow
//! stack, own SSA/control state), so no annotation metadata is ever shared
//! between threads and the TOCTOU surface does not exist. This mirrors how
//! multi-tenant CCaaS deployments actually scale SGX services (one enclave
//! per worker), at the cost of per-worker memory.
//!
//! Installation amortizes verification: [`EnclavePool::install_all`]
//! runs the consumer pipeline once per unique binary and *replays* the
//! captured post-rewrite image into the remaining workers concurrently
//! (sound because the pipeline is deterministic in the
//! measurement-covered inputs — see
//! [`PreparedInstall`](crate::runtime::PreparedInstall)). Prepared images
//! are cached by code hash, so reinstalling a previously seen binary
//! verifies zero times.
//!
//! `serve_parallel` runs requests on OS threads via `std::thread::scope` —
//! real parallelism over the simulated enclaves, used by the examples and
//! available to the Fig. 10 harness.

use crate::policy::Manifest;
use crate::runtime::{BootstrapEnclave, EcallError, PreparedInstall, RunReport};
use deflection_crypto::sha256::sha256;
use deflection_sgx_sim::layout::EnclaveLayout;
use std::collections::HashMap;

/// A pool of identically configured, identically loaded enclave workers.
#[derive(Debug)]
pub struct EnclavePool {
    workers: Vec<BootstrapEnclave>,
    /// Verified install images by code hash (sha256 of the binary).
    prepared: HashMap<[u8; 32], PreparedInstall>,
    /// How many times the full consumer pipeline (with verification) ran.
    verifications: usize,
}

impl EnclavePool {
    /// Creates `count` workers over the same layout and manifest.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(layout: &EnclaveLayout, manifest: &Manifest, count: usize) -> Self {
        assert!(count > 0, "pool needs at least one worker");
        let workers =
            (0..count).map(|_| BootstrapEnclave::new(layout.clone(), manifest.clone())).collect();
        EnclavePool { workers, prepared: HashMap::new(), verifications: 0 }
    }

    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// How many times a full (verifying) consumer pipeline has run in
    /// this pool — exactly once per unique binary installed, however many
    /// workers there are.
    #[must_use]
    pub fn verification_count(&self) -> usize {
        self.verifications
    }

    /// Installs the owner session key in every worker.
    pub fn set_owner_session(&mut self, key: [u8; 32]) {
        for w in &mut self.workers {
            w.set_owner_session(key);
        }
    }

    /// Installs the same target binary in every worker, verifying once.
    ///
    /// The first install of a binary runs the full pipeline (load +
    /// verify + rewrite) on worker 0 and captures the finished image;
    /// the remaining workers adopt replayed copies concurrently. A
    /// cached image (same code hash) replays into every worker with no
    /// verification at all.
    ///
    /// # Errors
    ///
    /// Fails if verification rejects the binary (no worker is then
    /// usable) or a replay hits a measurement mismatch.
    pub fn install_all(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        let hash = sha256(binary);
        let prepared = match self.prepared.get(&hash) {
            Some(p) => p.clone(),
            None => {
                let p = self.workers[0].install_capture(binary)?;
                self.verifications += 1;
                self.prepared.insert(hash, p.clone());
                p
            }
        };
        // Worker 0 already holds the image when it just captured it, but
        // replaying is idempotent and keeps the loop uniform.
        let mut outcomes: Vec<Result<[u8; 32], EcallError>> =
            Vec::with_capacity(self.workers.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in &mut self.workers {
                let prepared = &prepared;
                handles.push(scope.spawn(move || w.install_replayed(prepared)));
            }
            for h in handles {
                outcomes.push(h.join().expect("install thread must not panic"));
            }
        });
        // `outcomes` is in worker order; the first error is deterministic.
        for o in outcomes {
            o?;
        }
        Ok(prepared.code_hash())
    }

    /// Installs the binary in every worker with an *independent* full
    /// pipeline run per worker — the pre-cache behaviour, kept for
    /// ablation benchmarks and for callers that want N genuinely
    /// independent verifications.
    ///
    /// # Errors
    ///
    /// Fails on the first worker that rejects the binary (they all would —
    /// verification is deterministic).
    pub fn install_all_independent(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        let mut hash = [0u8; 32];
        for w in &mut self.workers {
            hash = w.install_plain(binary)?;
            self.verifications += 1;
        }
        Ok(hash)
    }

    /// Serves one request on a specific worker.
    ///
    /// # Errors
    ///
    /// Propagates ECall errors (no binary installed).
    pub fn serve_on(
        &mut self,
        worker: usize,
        input: &[u8],
        fuel: u64,
    ) -> Result<RunReport, EcallError> {
        let idx = worker % self.workers.len();
        let w = &mut self.workers[idx];
        w.provide_input(input)?;
        w.run(fuel)
    }

    /// Serves a batch of requests across the pool with real OS-thread
    /// parallelism: request `i` runs on worker `i % len`, requests mapped
    /// to the same worker run serially on its thread.
    ///
    /// # Errors
    ///
    /// If any request fails, returns the error of the *lowest request
    /// index* that failed — independent of worker count and thread
    /// timing — after all threads join.
    pub fn serve_parallel<T: AsRef<[u8]> + Sync>(
        &mut self,
        requests: &[T],
        fuel: u64,
    ) -> Result<Vec<RunReport>, EcallError> {
        let worker_count = self.workers.len();
        // Distribute request indices per worker, preserving order.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); worker_count];
        for (i, _) in requests.iter().enumerate() {
            assignments[i % worker_count].push(i);
        }

        let mut slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, idxs) in self.workers.iter_mut().zip(&assignments) {
                let handle = scope.spawn(move || {
                    let mut out = Vec::with_capacity(idxs.len());
                    for &i in idxs {
                        let result = worker
                            .provide_input(requests[i].as_ref())
                            .and_then(|()| worker.run(fuel));
                        out.push((i, result));
                    }
                    out
                });
                handles.push(handle);
            }
            for h in handles {
                slots.push(h.join().expect("worker thread must not panic"));
            }
        });

        merge_results(requests.len(), slots)
    }
}

/// Flattens per-worker result batches into request order. On failure the
/// returned error is the one at the lowest request index — a pure
/// function of the per-request outcomes, not of which worker thread
/// finished (or was collected) first.
fn merge_results(
    request_count: usize,
    slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>>,
) -> Result<Vec<RunReport>, EcallError> {
    let mut by_request: Vec<Option<Result<RunReport, EcallError>>> =
        (0..request_count).map(|_| None).collect();
    for batch in slots {
        for (i, result) in batch {
            by_request[i] = Some(result);
        }
    }
    let mut reports = Vec::with_capacity(request_count);
    for r in by_request {
        reports.push(r.expect("every request served")?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;
    use deflection_sgx_sim::vm::{ExecStats, RunExit};

    const ECHO_SUM: &str = "
        fn main() -> int {
            var n: int = input_len();
            var s: int = 0;
            var i: int = 0;
            while (i < n) { s = s + input_byte(i); i = i + 1; }
            return s;
        }
    ";

    fn pool(workers: usize) -> EnclavePool {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, workers);
        let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        pool.set_owner_session([1; 32]);
        pool.install_all(&binary).unwrap();
        pool
    }

    #[test]
    fn parallel_results_match_serial() {
        let requests: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i, i + 1, i + 2]).collect();
        let mut parallel_pool = pool(4);
        let parallel = parallel_pool.serve_parallel(&requests, 10_000_000).unwrap();
        let mut serial_pool = pool(1);
        for (req, report) in requests.iter().zip(&parallel) {
            let expected: u64 = req.iter().map(|&b| b as u64).sum();
            assert_eq!(report.exit, RunExit::Halted { exit: expected });
            let serial = serial_pool.serve_on(0, req, 10_000_000).unwrap();
            assert_eq!(serial.exit, report.exit);
        }
    }

    #[test]
    fn serve_parallel_accepts_any_byte_slices() {
        let mut p = pool(2);
        let requests: [&[u8]; 3] = [b"\x01", b"\x02\x03", b"\x04"];
        let reports = p.serve_parallel(&requests, 10_000_000).unwrap();
        let exits: Vec<_> = reports.iter().map(|r| r.exit.exit_value()).collect();
        assert_eq!(exits, vec![Some(1), Some(5), Some(4)]);
    }

    #[test]
    fn workers_are_isolated() {
        // A counter global must not bleed between workers.
        let src = "
            var hits: int;
            fn main() -> int { hits = hits + 1; return hits; }
        ";
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 3);
        let binary = produce(src, &manifest.policy).unwrap().serialize();
        pool.install_all(&binary).unwrap();
        // Worker 0 runs twice; workers 1 and 2 once each.
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(2));
        assert_eq!(pool.serve_on(1, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(2, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
    }

    #[test]
    fn install_all_verifies_once_per_unique_hash() {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 8);
        let echo = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        pool.install_all(&echo).unwrap();
        assert_eq!(pool.verification_count(), 1, "8 workers, 1 verification");
        // Reinstalling the identical binary hits the cache: zero more.
        pool.install_all(&echo).unwrap();
        assert_eq!(pool.verification_count(), 1);
        // A different binary verifies exactly once more.
        let other =
            produce("fn main() -> int { return 7; }", &manifest.policy).unwrap().serialize();
        pool.install_all(&other).unwrap();
        assert_eq!(pool.verification_count(), 2);
        // Every worker serves from the replayed image.
        for w in 0..8 {
            assert_eq!(pool.serve_on(w, b"", 1_000_000).unwrap().exit.exit_value(), Some(7));
        }
    }

    #[test]
    fn replayed_workers_match_independent_installs() {
        let requests: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, 2 * i]).collect();
        let mut cached = pool(4);
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut independent = EnclavePool::new(&layout, &manifest, 4);
        let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        independent.set_owner_session([1; 32]);
        independent.install_all_independent(&binary).unwrap();
        assert_eq!(independent.verification_count(), 4);
        let a = cached.serve_parallel(&requests, 10_000_000).unwrap();
        let b = independent.serve_parallel(&requests, 10_000_000).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exit, y.exit);
        }
    }

    #[test]
    fn merge_reports_lowest_request_index_error() {
        let ok = || -> Result<RunReport, EcallError> {
            Ok(RunReport {
                exit: RunExit::Halted { exit: 0 },
                stats: ExecStats::default(),
                records: Vec::new(),
                untrusted_writes: 0,
                blur_padding: 0,
            })
        };
        // Worker batches arrive in an order that puts a *higher*-index
        // error first; the merge must still surface request 1's error.
        let slots = vec![
            vec![(0, ok()), (2, Err(EcallError::NoRoomForIo))],
            vec![(1, Err(EcallError::NotInstalled)), (3, ok())],
        ];
        let err = merge_results(4, slots).unwrap_err();
        assert_eq!(err, EcallError::NotInstalled);
    }

    #[test]
    fn round_robin_wraps() {
        let mut p = pool(2);
        // Worker index 5 lands on worker 1.
        let r = p.serve_on(5, b"\x01", 1_000_000).unwrap();
        assert_eq!(r.exit.exit_value(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let manifest = Manifest::ccaas();
        let layout = EnclaveLayout::new(MemConfig::small());
        let _ = EnclavePool::new(&layout, &manifest, 0);
    }
}
