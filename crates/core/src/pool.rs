//! Concurrent request serving: a pool of bootstrap-enclave workers.
//!
//! The paper's HTTPS evaluation serves many clients concurrently and its
//! Section VII discusses multi-threaded enclaves, warning that shared
//! in-memory CFI metadata is TOCTOU-prone and suggesting per-thread
//! isolation. This pool takes the robust variant of that advice: each
//! worker is a fully isolated enclave instance (own EPC image, own shadow
//! stack, own SSA/control state), so no annotation metadata is ever shared
//! between threads and the TOCTOU surface does not exist. This mirrors how
//! multi-tenant CCaaS deployments actually scale SGX services (one enclave
//! per worker), at the cost of per-worker memory.
//!
//! `serve_parallel` runs requests on OS threads via `std::thread::scope` —
//! real parallelism over the simulated enclaves, used by the examples and
//! available to the Fig. 10 harness.

use crate::policy::Manifest;
use crate::runtime::{BootstrapEnclave, EcallError, RunReport};
use deflection_sgx_sim::layout::EnclaveLayout;

/// A pool of identically configured, identically loaded enclave workers.
#[derive(Debug)]
pub struct EnclavePool {
    workers: Vec<BootstrapEnclave>,
}

impl EnclavePool {
    /// Creates `count` workers over the same layout and manifest.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(layout: &EnclaveLayout, manifest: &Manifest, count: usize) -> Self {
        assert!(count > 0, "pool needs at least one worker");
        let workers =
            (0..count).map(|_| BootstrapEnclave::new(layout.clone(), manifest.clone())).collect();
        EnclavePool { workers }
    }

    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Installs the owner session key in every worker.
    pub fn set_owner_session(&mut self, key: [u8; 32]) {
        for w in &mut self.workers {
            w.set_owner_session(key);
        }
    }

    /// Installs (load + verify + rewrite) the same target binary in every
    /// worker; each worker verifies independently, exactly as independent
    /// enclaves would.
    ///
    /// # Errors
    ///
    /// Fails on the first worker that rejects the binary (they all would —
    /// verification is deterministic).
    pub fn install_all(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        let mut hash = [0u8; 32];
        for w in &mut self.workers {
            hash = w.install_plain(binary)?;
        }
        Ok(hash)
    }

    /// Serves one request on a specific worker.
    ///
    /// # Errors
    ///
    /// Propagates ECall errors (no binary installed).
    pub fn serve_on(
        &mut self,
        worker: usize,
        input: &[u8],
        fuel: u64,
    ) -> Result<RunReport, EcallError> {
        let idx = worker % self.workers.len();
        let w = &mut self.workers[idx];
        w.provide_input(input)?;
        w.run(fuel)
    }

    /// Serves a batch of requests across the pool with real OS-thread
    /// parallelism: request `i` runs on worker `i % len`, requests mapped
    /// to the same worker run serially on its thread.
    ///
    /// # Errors
    ///
    /// Returns the first ECall error from any worker, after all threads
    /// join.
    pub fn serve_parallel(
        &mut self,
        requests: &[Vec<u8>],
        fuel: u64,
    ) -> Result<Vec<RunReport>, EcallError> {
        let worker_count = self.workers.len();
        // Distribute request indices per worker, preserving order.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); worker_count];
        for (i, _) in requests.iter().enumerate() {
            assignments[i % worker_count].push(i);
        }

        let mut slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, idxs) in self.workers.iter_mut().zip(&assignments) {
                let handle = scope.spawn(move || {
                    let mut out = Vec::with_capacity(idxs.len());
                    for &i in idxs {
                        let result =
                            worker.provide_input(&requests[i]).and_then(|()| worker.run(fuel));
                        out.push((i, result));
                    }
                    out
                });
                handles.push(handle);
            }
            for h in handles {
                slots.push(h.join().expect("worker thread must not panic"));
            }
        });

        let mut results: Vec<Option<RunReport>> = (0..requests.len()).map(|_| None).collect();
        for batch in slots {
            for (i, result) in batch {
                results[i] = Some(result?);
            }
        }
        Ok(results.into_iter().map(|r| r.expect("every request served")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;
    use deflection_sgx_sim::vm::RunExit;

    const ECHO_SUM: &str = "
        fn main() -> int {
            var n: int = input_len();
            var s: int = 0;
            var i: int = 0;
            while (i < n) { s = s + input_byte(i); i = i + 1; }
            return s;
        }
    ";

    fn pool(workers: usize) -> EnclavePool {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, workers);
        let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        pool.set_owner_session([1; 32]);
        pool.install_all(&binary).unwrap();
        pool
    }

    #[test]
    fn parallel_results_match_serial() {
        let requests: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i, i + 1, i + 2]).collect();
        let mut parallel_pool = pool(4);
        let parallel = parallel_pool.serve_parallel(&requests, 10_000_000).unwrap();
        let mut serial_pool = pool(1);
        for (req, report) in requests.iter().zip(&parallel) {
            let expected: u64 = req.iter().map(|&b| b as u64).sum();
            assert_eq!(report.exit, RunExit::Halted { exit: expected });
            let serial = serial_pool.serve_on(0, req, 10_000_000).unwrap();
            assert_eq!(serial.exit, report.exit);
        }
    }

    #[test]
    fn workers_are_isolated() {
        // A counter global must not bleed between workers.
        let src = "
            var hits: int;
            fn main() -> int { hits = hits + 1; return hits; }
        ";
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 3);
        let binary = produce(src, &manifest.policy).unwrap().serialize();
        pool.install_all(&binary).unwrap();
        // Worker 0 runs twice; workers 1 and 2 once each.
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(2));
        assert_eq!(pool.serve_on(1, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(2, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
    }

    #[test]
    fn round_robin_wraps() {
        let mut p = pool(2);
        // Worker index 5 lands on worker 1.
        let r = p.serve_on(5, b"\x01", 1_000_000).unwrap();
        assert_eq!(r.exit.exit_value(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let manifest = Manifest::ccaas();
        let layout = EnclaveLayout::new(MemConfig::small());
        let _ = EnclavePool::new(&layout, &manifest, 0);
    }
}
