//! Concurrent request serving: a fault-tolerant pool of bootstrap-enclave
//! workers.
//!
//! The paper's HTTPS evaluation serves many clients concurrently and its
//! Section VII discusses multi-threaded enclaves, warning that shared
//! in-memory CFI metadata is TOCTOU-prone and suggesting per-thread
//! isolation. This pool takes the robust variant of that advice: each
//! worker is a fully isolated enclave instance (own EPC image, own shadow
//! stack, own SSA/control state), so no annotation metadata is ever shared
//! between threads and the TOCTOU surface does not exist. This mirrors how
//! multi-tenant CCaaS deployments actually scale SGX services (one enclave
//! per worker), at the cost of per-worker memory.
//!
//! Installation amortizes verification: [`EnclavePool::install_all`]
//! runs the consumer pipeline once per unique binary and *replays* the
//! captured post-rewrite image into the remaining workers concurrently
//! (sound because the pipeline is deterministic in the
//! measurement-covered inputs — see
//! [`PreparedInstall`]). Prepared images
//! are cached by code hash, so reinstalling a previously seen binary
//! verifies zero times, and the cache can be sealed to untrusted storage
//! and re-imported after a restart ([`EnclavePool::export_sealed`] /
//! [`EnclavePool::import_sealed`], see [`crate::sealed`]).
//!
//! # Fault tolerance
//!
//! Long-lived serving must survive individual enclave failures. Two are
//! modeled: a *contained fault* (the program trips a policy guard or a
//! denied OCall — the report is still the request's answer, but the
//! instance may hold corrupted state) and a *lost instance* (the
//! `SGX_ERROR_ENCLAVE_LOST` analogue — power transition or injected chaos
//! kill; the request never completed). Either way the pool quarantines the
//! worker slot and respawns a fresh enclave into it, reinstalling from the
//! prepared-image cache with zero re-verifications. No AEAD nonce is ever
//! reused pool-wide: every slot seals records in its own nonce *channel*
//! (the slot index, part of the nonce — so workers sharing the owner
//! session key never collide even though each counter starts at 0), and a
//! respawn carries the dead instance's channel and record counter forward.
//! Each slot has a bounded respawn budget; when it is exhausted the slot
//! stays quarantined and [`EnclavePool::health`] reports it.
//!
//! [`EnclavePool::serve_parallel`] schedules by *work stealing*: worker
//! threads claim request indices from a shared atomic counter, so a skewed
//! batch no longer idles the statically assigned workers
//! ([`EnclavePool::serve_parallel_round_robin`] keeps the old static
//! `i % len` split as the ablation baseline). Request *outcomes* stay
//! schedule-independent — serving is deterministic per request, a lost
//! request is retried on a fresh or different worker with an identical
//! result, and the documented lowest-request-index error rule is enforced
//! by `merge_results` after all threads join. (Record *ciphertexts* do
//! depend on which worker sealed them, since each worker seals in its own
//! nonce channel under its own monotonic counter.)

use crate::consumer::incremental::{
    install_capture_incremental, IncrementalCache, IncrementalStats,
};
use crate::policy::Manifest;
use crate::runtime::{BootstrapEnclave, EcallError, PreparedInstall, RunReport};
use deflection_crypto::sha256::sha256;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::vm::RunExit;
use deflection_telemetry::flightrec::{self, EventKind, TraceId};
use deflection_telemetry::{Span, METRICS};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of times a worker slot may be respawned between
/// reinstalls before it stays quarantined.
const DEFAULT_RESPAWN_BUDGET: usize = 8;

/// Default cap on retained prepared images (see
/// [`EnclavePool::set_prepared_cap`]). Each [`PreparedInstall`] holds a
/// full enclave memory image, so an unbounded cache is a memory leak on
/// exactly the high-churn fleet workload the pool exists to serve.
pub const DEFAULT_PREPARED_CAP: usize = 64;

/// Why [`EnclavePool::export_sealed_for`] could not seal a hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealedExportError {
    /// The image was installed once but has since been evicted by the
    /// prepared-cache cap; reinstalling the binary re-captures it.
    Evicted,
    /// No binary with this code hash was ever installed in this pool.
    NeverInstalled,
}

impl std::fmt::Display for SealedExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealedExportError::Evicted => {
                write!(f, "prepared image was evicted by the cache cap; reinstall to re-capture")
            }
            SealedExportError::NeverInstalled => {
                write!(f, "no prepared image with this code hash was ever installed")
            }
        }
    }
}

impl std::error::Error for SealedExportError {}

/// Liveness and serving counters for one worker slot.
#[derive(Debug, Clone, Default)]
pub struct WorkerHealth {
    /// Requests that produced a report, including contained-fault reports.
    pub served: usize,
    /// Contained faults plus lost-instance events hit by this slot.
    pub faulted: usize,
    /// Times the slot was rebuilt with a fresh enclave instance.
    pub respawned: usize,
    /// Whether the slot is currently quarantined — unusable until a
    /// respawn or a full reinstall succeeds.
    pub quarantined: bool,
    /// Serving-path respawns still available to the slot before it stays
    /// quarantined (snapshot of the remaining budget).
    pub respawn_headroom: usize,
}

impl WorkerHealth {
    /// Fraction of this slot's completed requests that were contained
    /// faults or lost-instance events (0 when nothing was served).
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.faulted as f64 / self.served as f64
        }
    }
}

/// A snapshot of every worker slot's [`WorkerHealth`], in worker order.
#[derive(Debug, Clone)]
pub struct PoolHealth {
    /// One entry per worker slot.
    pub workers: Vec<WorkerHealth>,
}

impl PoolHealth {
    /// Total requests served across the pool (including fault reports).
    #[must_use]
    pub fn total_served(&self) -> usize {
        self.workers.iter().map(|w| w.served).sum()
    }

    /// Total contained-fault and lost-instance events across the pool.
    #[must_use]
    pub fn total_faulted(&self) -> usize {
        self.workers.iter().map(|w| w.faulted).sum()
    }

    /// Total respawns across the pool.
    #[must_use]
    pub fn total_respawned(&self) -> usize {
        self.workers.iter().map(|w| w.respawned).sum()
    }

    /// Number of slots currently quarantined.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.workers.iter().filter(|w| w.quarantined).count()
    }

    /// Pool-wide fault rate: faulted events over served requests (0 when
    /// nothing was served yet).
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        let served = self.total_served();
        if served == 0 {
            0.0
        } else {
            self.total_faulted() as f64 / served as f64
        }
    }

    /// The smallest remaining respawn allowance across non-quarantined
    /// slots — how close the pool is to losing its next slot for good.
    /// `None` when every slot is quarantined.
    #[must_use]
    pub fn min_respawn_headroom(&self) -> Option<usize> {
        self.workers.iter().filter(|w| !w.quarantined).map(|w| w.respawn_headroom).min()
    }
}

/// One worker slot: the live enclave instance plus its health state and
/// fault-injection hooks.
#[derive(Debug)]
struct Worker {
    enclave: BootstrapEnclave,
    health: WorkerHealth,
    /// Stable slot index, used to attribute flight-recorder events.
    slot: usize,
    /// Remaining serving-path respawns before the slot stays quarantined.
    respawn_left: usize,
    /// Armed chaos kill: lose the instance right before serving the
    /// `n+1`-th subsequent request.
    chaos_kill_after: Option<usize>,
}

/// Everything a respawn needs, borrowed from the pool's non-worker fields
/// so worker threads can self-heal while holding `&mut Worker`.
struct RespawnCtx<'a> {
    layout: &'a EnclaveLayout,
    manifest: &'a Manifest,
    owner_key: Option<[u8; 32]>,
    prepared: Option<&'a PreparedInstall>,
}

/// Replaces a worker slot's enclave with a fresh instance reinstalled from
/// the prepared cache, consuming one unit of the slot's respawn budget.
/// Returns `false` (and quarantines the slot) when the budget is exhausted
/// or the reinstall fails.
fn respawn_worker(w: &mut Worker, ctx: &RespawnCtx<'_>) -> bool {
    if w.respawn_left == 0 {
        if !w.health.quarantined {
            METRICS.pool_quarantines.add(1);
            flightrec::record_ambient(EventKind::Quarantine, w.slot as u64, 0);
        }
        w.health.quarantined = true;
        return false;
    }
    w.respawn_left -= 1;
    let mut fresh = BootstrapEnclave::new(ctx.layout.clone(), ctx.manifest.clone());
    // The fresh instance serves under the same owner session key as the
    // dead one, so it inherits the slot's nonce channel and record counter
    // (a reset would reuse an AEAD nonce), the lifetime output ledger
    // (the optional lifetime entropy cap bounds the slot, not one
    // instance), and the audit sequence counter (exported audit sequences
    // must never regress).
    fresh.set_channel(w.enclave.channel());
    fresh.resume_send_nonce(w.enclave.send_nonce());
    fresh.resume_lifetime_sent_bytes(w.enclave.lifetime_sent_bytes());
    fresh.resume_audit_seq(w.enclave.audit_next_seq());
    if let Some(key) = ctx.owner_key {
        fresh.set_owner_session(key);
    }
    if let Some(prepared) = ctx.prepared {
        if fresh.install_replayed(prepared).is_err() {
            if !w.health.quarantined {
                METRICS.pool_quarantines.add(1);
                flightrec::record_ambient(EventKind::Quarantine, w.slot as u64, 0);
            }
            w.health.quarantined = true;
            return false;
        }
    }
    w.enclave = fresh;
    w.health.respawned += 1;
    w.health.quarantined = false;
    METRICS.pool_respawns.add(1);
    flightrec::record_ambient(EventKind::Respawn, w.slot as u64, 0);
    true
}

/// What one serve attempt on one worker produced.
enum Outcome {
    /// The run completed and this report is the request's result (possibly
    /// a contained-fault report).
    Report(RunReport),
    /// The instance was lost before the run completed; the request has no
    /// result yet and must be retried.
    Lost,
    /// A non-fault ECall error (e.g. no binary installed) — the request's
    /// final, deterministic error.
    Error(EcallError),
}

/// Serves one request on one worker, applying any armed chaos kill and
/// quarantining/respawning the slot after a contained fault or a lost
/// instance.
fn serve_once(w: &mut Worker, ctx: &RespawnCtx<'_>, input: &[u8], fuel: u64) -> Outcome {
    if let Some(left) = w.chaos_kill_after {
        if left == 0 {
            w.enclave.mark_lost();
            w.chaos_kill_after = None;
        } else {
            w.chaos_kill_after = Some(left - 1);
        }
    }
    match w.enclave.provide_input(input).and_then(|()| w.enclave.run(fuel)) {
        Ok(report) => {
            // The pool is the host-side boundary: the run/seal flight
            // events are recorded here, from the returned report, so the
            // runtime itself stays free of recording sites (TCB-counted).
            crate::flight::record_run_report(&report);
            w.health.served += 1;
            if matches!(report.exit, RunExit::Fault(_)) {
                // The contained fault is the request's answer, but the
                // instance may hold corrupted state (partially updated
                // globals, mid-run buffers) — never let it serve again.
                w.health.faulted += 1;
                METRICS.pool_contained_faults.add(1);
                flightrec::record_ambient(EventKind::Fault, w.slot as u64, 0);
                respawn_worker(w, ctx);
            }
            Outcome::Report(report)
        }
        Err(EcallError::EnclaveLost) => {
            w.health.faulted += 1;
            METRICS.pool_lost_instances.add(1);
            flightrec::record_ambient(EventKind::Fault, w.slot as u64, 1);
            respawn_worker(w, ctx);
            Outcome::Lost
        }
        Err(e) => Outcome::Error(e),
    }
}

/// Work-stealing serve loop for one worker thread: claim the next request
/// index from the shared counter, serve it, repeat. A lost instance
/// retries the same request after a successful respawn; a quarantined slot
/// stops claiming and leaves unserved work to the other threads (or the
/// stranded retry pass).
fn drain_queue<T: AsRef<[u8]>>(
    w: &mut Worker,
    ctx: &RespawnCtx<'_>,
    next: &AtomicUsize,
    requests: &[T],
    traces: &[TraceId],
    fuel: u64,
) -> Vec<(usize, Result<RunReport, EcallError>)> {
    let mut out = Vec::new();
    if w.health.quarantined && !respawn_worker(w, ctx) {
        return out;
    }
    loop {
        // The claim counter is the only cross-thread state; joining the
        // scope publishes the per-thread results, so relaxed ordering
        // suffices.
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= requests.len() {
            return out;
        }
        METRICS.pool_work_queue_claims.add(1);
        // Worker threads are scope-spawned, so the batch's ambient trace
        // is not inherited — the request's minted ID is re-established
        // here, making claim/run/seal/fault events land in its lane.
        let stop = flightrec::with_trace(traces[i], || {
            flightrec::record(EventKind::Claim, traces[i], i as u64, w.slot as u64);
            loop {
                match serve_once(w, ctx, requests[i].as_ref(), fuel) {
                    Outcome::Report(report) => {
                        out.push((i, Ok(report)));
                        return false;
                    }
                    // Fresh instance after a successful respawn: retry the
                    // same request — serving is deterministic, so the result
                    // is the one the original instance would have produced.
                    Outcome::Lost if !w.health.quarantined => {}
                    // Respawn budget exhausted mid-request: the claim stays
                    // unserved for the stranded retry pass.
                    Outcome::Lost => return true,
                    Outcome::Error(e) => {
                        out.push((i, Err(e)));
                        return false;
                    }
                }
            }
        });
        if stop {
            return out;
        }
        if w.health.quarantined {
            // A contained fault exhausted the budget: the report above is
            // still the request's result, but this slot must stop.
            return out;
        }
    }
}

/// A pool of identically configured, identically loaded enclave workers.
#[derive(Debug)]
pub struct EnclavePool {
    workers: Vec<Worker>,
    /// Verified install images by code hash (sha256 of the binary).
    prepared: HashMap<[u8; 32], PreparedInstall>,
    /// How many times the full consumer pipeline (with verification) ran.
    verifications: usize,
    layout: EnclaveLayout,
    manifest: Manifest,
    owner_key: Option<[u8; 32]>,
    /// Code hash of the image currently installed pool-wide (respawns
    /// reinstall this image from the cache).
    active: Option<[u8; 32]>,
    respawn_budget: usize,
    /// Cap on retained prepared images; the active image is never evicted.
    prepared_cap: usize,
    /// Monotonic recency stamps backing the LRU eviction order.
    recency: HashMap<[u8; 32], u64>,
    tick: u64,
    /// Hashes that were prepared once but evicted by the cap — kept so
    /// [`EnclavePool::export_sealed_for`] can distinguish "evicted" from
    /// "never installed" instead of failing identically for both.
    evicted: HashSet<[u8; 32]>,
    /// Per-function verification memo backing
    /// [`EnclavePool::install_patched`].
    incremental: IncrementalCache,
}

impl EnclavePool {
    /// Creates `count` workers over the same layout and manifest.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(layout: &EnclaveLayout, manifest: &Manifest, count: usize) -> Self {
        assert!(count > 0, "pool needs at least one worker");
        let workers = (0..count)
            .map(|i| {
                let mut enclave = BootstrapEnclave::new(layout.clone(), manifest.clone());
                // Every slot seals records in its own nonce channel, so
                // workers sharing the owner session key never produce the
                // same (key, nonce) pair even though each counter starts
                // at 0.
                enclave.set_channel(u32::try_from(i).expect("pool size fits u32"));
                Worker {
                    enclave,
                    health: WorkerHealth::default(),
                    slot: i,
                    respawn_left: DEFAULT_RESPAWN_BUDGET,
                    chaos_kill_after: None,
                }
            })
            .collect();
        EnclavePool {
            workers,
            prepared: HashMap::new(),
            verifications: 0,
            layout: layout.clone(),
            manifest: manifest.clone(),
            owner_key: None,
            active: None,
            respawn_budget: DEFAULT_RESPAWN_BUDGET,
            prepared_cap: DEFAULT_PREPARED_CAP,
            recency: HashMap::new(),
            tick: 0,
            evicted: HashSet::new(),
            incremental: IncrementalCache::new(),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The code hash of the currently active (installed-everywhere)
    /// binary, or `None` before the first successful install. The
    /// admission dispatcher compares this against a tenant's registered
    /// hash to skip redundant [`EnclavePool::install_all`] calls when
    /// consecutive batches belong to the same tenant.
    #[must_use]
    pub fn active_code_hash(&self) -> Option<[u8; 32]> {
        self.active
    }

    /// The manifest every worker enclave in this pool was built with.
    /// Tenant registration validates per-tenant budgets against it.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// How many times a full (verifying) consumer pipeline has run in
    /// this pool — exactly once per unique binary installed, however many
    /// workers there are, and zero for sealed imports.
    #[must_use]
    pub fn verification_count(&self) -> usize {
        self.verifications
    }

    /// A snapshot of every worker slot's health counters, including the
    /// slot's remaining respawn allowance.
    #[must_use]
    pub fn health(&self) -> PoolHealth {
        PoolHealth {
            workers: self
                .workers
                .iter()
                .map(|w| {
                    let mut h = w.health.clone();
                    h.respawn_headroom = w.respawn_left;
                    h
                })
                .collect(),
        }
    }

    /// Sets the per-slot respawn budget (default 8) and refills every
    /// slot's remaining allowance to it.
    pub fn set_respawn_budget(&mut self, budget: usize) {
        self.respawn_budget = budget;
        for w in &mut self.workers {
            w.respawn_left = budget;
        }
    }

    /// Installs the owner session key in every worker (and in every future
    /// respawn).
    pub fn set_owner_session(&mut self, key: [u8; 32]) {
        self.owner_key = Some(key);
        for w in &mut self.workers {
            w.enclave.set_owner_session(key);
        }
    }

    /// Fault injection: arms worker `worker` to lose its enclave instance
    /// (the `SGX_ERROR_ENCLAVE_LOST` analogue) right before serving its
    /// `runs + 1`-th subsequent request. The pool's quarantine/respawn
    /// machinery then takes over; the interrupted request is retried and
    /// still completes.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn chaos_kill_after(&mut self, worker: usize, runs: usize) {
        self.workers[worker].chaos_kill_after = Some(runs);
    }

    /// Fault injection: replaces `worker`'s enclave with a fresh instance
    /// built over a *different* layout — hence a different measurement —
    /// as if an operator misdeployed the slot. Used to exercise the
    /// fail-closed replay path of [`EnclavePool::install_all`].
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn chaos_replace_worker(&mut self, worker: usize, layout: &EnclaveLayout) {
        let owner_key = self.owner_key;
        let mut fresh = BootstrapEnclave::new(layout.clone(), self.manifest.clone());
        fresh.set_channel(self.workers[worker].enclave.channel());
        if let Some(key) = owner_key {
            fresh.set_owner_session(key);
        }
        self.workers[worker].enclave = fresh;
    }

    /// Seals the currently active prepared image for untrusted storage
    /// (see [`crate::sealed`]); `None` when nothing is installed.
    #[must_use]
    pub fn export_sealed(&self) -> Option<Vec<u8>> {
        let hash = self.active.as_ref()?;
        let blob = self.prepared.get(hash)?.seal();
        METRICS.pool_sealed_exports.add(1);
        Some(blob)
    }

    /// Seals the prepared image with code hash `hash` for untrusted
    /// storage, whether or not it is the active one.
    ///
    /// # Errors
    ///
    /// Distinguishes the two failure modes an unbounded cache used to
    /// conflate: [`SealedExportError::Evicted`] when the image existed
    /// but was evicted by the cap (reinstalling the binary re-captures
    /// it), [`SealedExportError::NeverInstalled`] when no binary with
    /// this hash was ever installed here.
    pub fn export_sealed_for(&self, hash: &[u8; 32]) -> Result<Vec<u8>, SealedExportError> {
        match self.prepared.get(hash) {
            Some(p) => {
                METRICS.pool_sealed_exports.add(1);
                Ok(p.seal())
            }
            None if self.evicted.contains(hash) => Err(SealedExportError::Evicted),
            None => Err(SealedExportError::NeverInstalled),
        }
    }

    /// Imports a sealed prepared image — e.g. into a freshly restarted
    /// pool — and installs it in every worker with **zero**
    /// re-verifications. Fails closed on any tampering, measurement,
    /// manifest or rebuild mismatch.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::sealed::UnsealError`] (as
    /// [`EcallError::Unseal`]) and replay failures, which quarantine the
    /// affected workers like [`EnclavePool::install_all`].
    pub fn import_sealed(&mut self, blob: &[u8]) -> Result<[u8; 32], EcallError> {
        let prepared = PreparedInstall::unseal(blob, &self.layout, &self.manifest)?;
        METRICS.pool_sealed_imports.add(1);
        let hash = prepared.code_hash();
        self.insert_prepared(hash, prepared);
        let prepared = self.prepared.get(&hash).expect("just inserted").clone();
        self.replay_into_all(&prepared)
    }

    /// Installs the same target binary in every worker, verifying once.
    ///
    /// The first install of a binary runs the full pipeline (load +
    /// verify + rewrite) on the first healthy worker and captures the
    /// finished image; all workers then adopt replayed copies
    /// concurrently (quarantined or lost slots are rebuilt fresh first — a
    /// full reinstall re-establishes trust, so it clears quarantine
    /// without consuming the serving-path respawn budget). A cached image
    /// (same code hash) replays into every worker with no verification at
    /// all.
    ///
    /// # Errors
    ///
    /// Fails if verification rejects the binary (nothing is installed
    /// anywhere) or a replay fails. Replay failure is fail-closed: every
    /// worker that rejected the image is quarantined, the rest hold the
    /// new image uniformly, and the surfaced error is the lowest-index
    /// worker's.
    pub fn install_all(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        // Installs get their own causal ID so verify phases and per-worker
        // replays group into one lane per install.
        let tid = TraceId::mint();
        flightrec::with_trace(tid, || {
            let hash = sha256(binary);
            let cached = self.prepared.contains_key(&hash);
            if cached {
                METRICS.pool_install_cache_hits.add(1);
                self.touch(hash);
            } else {
                METRICS.pool_install_cache_misses.add(1);
                let idx = self.verifying_worker();
                let p = self.workers[idx].enclave.install_capture(binary)?;
                self.verifications += 1;
                self.insert_prepared(hash, p);
            }
            flightrec::record(
                EventKind::Install,
                tid,
                self.workers.len() as u64,
                u64::from(cached),
            );
            let prepared = self.prepared.get(&hash).expect("present").clone();
            self.replay_into_all(&prepared)
        })
    }

    /// Installs a (typically patched) target binary in every worker using
    /// the pool's **incremental** verification memo: discovery re-runs in
    /// full, but per-instruction checks and abstract-interpretation
    /// fixpoints are reused for every function whose captured inputs are
    /// unchanged since the previous install through this pool. The
    /// verdict is bit-identical to [`EnclavePool::install_all`] — the
    /// memo only skips recomputation, never checks (see
    /// [`crate::consumer::incremental`]). Cache hits, replay, respawn and
    /// eviction behave exactly as in `install_all`.
    ///
    /// # Errors
    ///
    /// Same contract as [`EnclavePool::install_all`].
    pub fn install_patched(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        let tid = TraceId::mint();
        flightrec::with_trace(tid, || {
            let hash = sha256(binary);
            let cached = self.prepared.contains_key(&hash);
            if cached {
                METRICS.pool_install_cache_hits.add(1);
                self.touch(hash);
            } else {
                METRICS.pool_install_cache_misses.add(1);
                let idx = self.verifying_worker();
                let p = install_capture_incremental(
                    &mut self.workers[idx].enclave,
                    binary,
                    &mut self.incremental,
                )?;
                self.verifications += 1;
                self.insert_prepared(hash, p);
            }
            flightrec::record(
                EventKind::Install,
                tid,
                self.workers.len() as u64,
                u64::from(cached),
            );
            let prepared = self.prepared.get(&hash).expect("present").clone();
            self.replay_into_all(&prepared)
        })
    }

    /// The worker slot a fresh verifying install runs on: the first
    /// healthy one, or slot 0 rebuilt from scratch when every slot is
    /// quarantined (the full pipeline re-establishes trust).
    fn verifying_worker(&mut self) -> usize {
        let idx = self.workers.iter().position(|w| !w.health.quarantined && !w.enclave.is_lost());
        match idx {
            Some(idx) => idx,
            None => {
                self.rebuild_fresh(0);
                0
            }
        }
    }

    /// Memo outcome of the most recent incremental verification run by
    /// [`EnclavePool::install_patched`].
    #[must_use]
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.incremental.last_stats()
    }

    /// Number of prepared images currently retained (bounded by
    /// [`EnclavePool::set_prepared_cap`]).
    #[must_use]
    pub fn prepared_cache_len(&self) -> usize {
        self.prepared.len()
    }

    /// Sets the cap on retained prepared images (default
    /// [`DEFAULT_PREPARED_CAP`]) and evicts immediately down to it,
    /// least-recently-installed first. The active image — the one
    /// respawns and sealed exports replay from — is never evicted.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero: the pool must always be able to retain
    /// the image it is serving from.
    pub fn set_prepared_cap(&mut self, cap: usize) {
        assert!(cap > 0, "prepared cache cap must be at least 1");
        self.prepared_cap = cap;
        self.evict_to_cap();
    }

    /// Stamps `hash` most-recently-used.
    fn touch(&mut self, hash: [u8; 32]) {
        self.tick += 1;
        self.recency.insert(hash, self.tick);
    }

    /// Retains `(hash, image)` in the prepared cache, clearing any
    /// eviction tombstone. Trimming happens in `replay_into_all`, after
    /// the new image became active, so the cap can never evict the image
    /// being installed.
    fn insert_prepared(&mut self, hash: [u8; 32], p: PreparedInstall) {
        self.evicted.remove(&hash);
        self.touch(hash);
        self.prepared.insert(hash, p);
    }

    /// Evicts least-recently-used prepared images until the cap holds,
    /// skipping the active image. Each eviction leaves a tombstone in
    /// `evicted` and bumps the eviction counter.
    fn evict_to_cap(&mut self) {
        while self.prepared.len() > self.prepared_cap {
            let victim = self
                .prepared
                .keys()
                .filter(|h| Some(**h) != self.active)
                .min_by_key(|h| self.recency.get(*h).copied().unwrap_or(0))
                .copied();
            let Some(victim) = victim else { break };
            self.prepared.remove(&victim);
            self.recency.remove(&victim);
            self.evicted.insert(victim);
            METRICS.pool_prepared_evictions.add(1);
        }
    }

    /// Installs the binary in every worker with an *independent* full
    /// pipeline run per worker — the pre-cache behaviour, kept for
    /// ablation benchmarks and for callers that want N genuinely
    /// independent verifications. Does not populate the prepared cache,
    /// so respawned workers cannot reinstall from it.
    ///
    /// # Errors
    ///
    /// Fails on the first worker that rejects the binary (they all would —
    /// verification is deterministic).
    pub fn install_all_independent(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        let mut hash = [0u8; 32];
        for w in &mut self.workers {
            hash = w.enclave.install_plain(binary)?;
            self.verifications += 1;
        }
        Ok(hash)
    }

    /// Rebuilds a worker slot with a brand-new enclave (pool layout and
    /// manifest), clearing quarantine. Used by the reinstall path; does
    /// not consume the serving-path respawn budget — the slot's allowance
    /// refills, since the subsequent full reinstall re-establishes trust.
    fn rebuild_fresh(&mut self, idx: usize) {
        let w = &mut self.workers[idx];
        let mut fresh = BootstrapEnclave::new(self.layout.clone(), self.manifest.clone());
        fresh.set_channel(w.enclave.channel());
        fresh.resume_send_nonce(w.enclave.send_nonce());
        fresh.resume_lifetime_sent_bytes(w.enclave.lifetime_sent_bytes());
        fresh.resume_audit_seq(w.enclave.audit_next_seq());
        if let Some(key) = self.owner_key {
            fresh.set_owner_session(key);
        }
        w.enclave = fresh;
        w.health.respawned += 1;
        w.health.quarantined = false;
        w.respawn_left = self.respawn_budget;
    }

    /// Replays a prepared image into every worker concurrently,
    /// rebuilding quarantined or lost slots first. Fail-closed on replay
    /// errors: failing workers are quarantined, the rest hold the image
    /// uniformly, and the lowest-index worker's error is returned.
    fn replay_into_all(&mut self, prepared: &PreparedInstall) -> Result<[u8; 32], EcallError> {
        let rebuild: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.health.quarantined || w.enclave.is_lost())
            .map(|(i, _)| i)
            .collect();
        for i in rebuild {
            self.rebuild_fresh(i);
        }
        let mut outcomes: Vec<Result<[u8; 32], EcallError>> =
            Vec::with_capacity(self.workers.len());
        // Scope-spawned replay threads do not inherit the install's ambient
        // trace; capture it here and attribute each replay explicitly.
        let tid = flightrec::ambient();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in &mut self.workers {
                handles.push(scope.spawn(move || {
                    flightrec::record(EventKind::InstallReplay, tid, w.slot as u64, 0);
                    w.enclave.install_replayed(prepared)
                }));
            }
            for h in handles {
                outcomes.push(h.join().expect("install thread must not panic"));
            }
        });
        // Even on partial failure every *usable* worker now holds this
        // image, so it becomes the active one respawns reinstall. Only
        // now is it safe to trim the cache: the just-inserted image is
        // active and therefore exempt from eviction.
        self.active = Some(prepared.code_hash());
        self.evict_to_cap();
        let mut first_err = None;
        for (w, outcome) in self.workers.iter_mut().zip(outcomes) {
            if let Err(e) = outcome {
                if !w.health.quarantined {
                    METRICS.pool_quarantines.add(1);
                    flightrec::record(EventKind::Quarantine, tid, w.slot as u64, 0);
                }
                w.health.quarantined = true;
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(prepared.code_hash()),
        }
    }

    /// Serves one request on a specific worker, transparently respawning
    /// it when it is quarantined or loses its instance mid-request.
    ///
    /// # Errors
    ///
    /// Propagates ECall errors (no binary installed), or
    /// [`EcallError::WorkerQuarantined`] when the slot's respawn budget is
    /// exhausted.
    pub fn serve_on(
        &mut self,
        worker: usize,
        input: &[u8],
        fuel: u64,
    ) -> Result<RunReport, EcallError> {
        let idx = worker % self.workers.len();
        let ctx = RespawnCtx {
            layout: &self.layout,
            manifest: &self.manifest,
            owner_key: self.owner_key,
            prepared: self.active.as_ref().and_then(|h| self.prepared.get(h)),
        };
        let w = &mut self.workers[idx];
        if w.health.quarantined && !respawn_worker(w, &ctx) {
            return Err(EcallError::WorkerQuarantined);
        }
        loop {
            match serve_once(w, &ctx, input, fuel) {
                Outcome::Report(report) => return Ok(report),
                Outcome::Lost if !w.health.quarantined => {}
                Outcome::Lost => return Err(EcallError::WorkerQuarantined),
                Outcome::Error(e) => return Err(e),
            }
        }
    }

    /// Serves a batch of requests across the pool with real OS-thread
    /// parallelism and work stealing: each worker thread claims the next
    /// unserved request index from a shared counter, so a skewed batch
    /// keeps every healthy worker busy. Workers that fault or lose their
    /// instance are quarantined and respawned from the prepared cache;
    /// requests stranded on a dead slot are retried serially, in index
    /// order, on the remaining healthy workers (each tried once, in
    /// worker order — deterministic).
    ///
    /// # Errors
    ///
    /// If any request fails, returns the error of the *lowest request
    /// index* that failed — independent of worker count and thread
    /// timing — after all threads join.
    pub fn serve_parallel<T: AsRef<[u8]> + Sync>(
        &mut self,
        requests: &[T],
        fuel: u64,
    ) -> Result<Vec<RunReport>, EcallError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // One causal ID per request, minted at batch entry — every later
        // event for request `i` (claim, run, seal, fault, retry) is
        // attributed to `traces[i]` regardless of which worker thread
        // serves it.
        let traces: Vec<TraceId> = (0..requests.len()).map(|_| TraceId::mint()).collect();
        for (i, &t) in traces.iter().enumerate() {
            flightrec::record(EventKind::Enqueue, t, i as u64, requests.len() as u64);
        }
        // Collecting per-request verdicts short-circuits at the first
        // `Err` in request order — exactly the lowest-request-index rule.
        self.serve_batch(requests, &traces, fuel).into_iter().collect()
    }

    /// Serves a batch like [`EnclavePool::serve_parallel`] but with
    /// caller-minted trace IDs and **per-request** verdicts instead of a
    /// batch-level first-error collapse.
    ///
    /// This is the admission frontend's entry point: the dispatcher mints
    /// each request's [`TraceId`] at *enqueue* (so queueing delay shows up
    /// as its own lane segment in the flight recorder) and needs every
    /// request's individual outcome to deliver to the waiting client —
    /// one tenant's verifier-rejected binary must not eat its
    /// batch-mates' reports. `traces.len()` must equal `requests.len()`.
    ///
    /// Scheduling, respawn, stranded-retry and accounting behavior are
    /// bit-identical to `serve_parallel`; that method is now a thin
    /// wrapper that mints traces and collapses this vector with the
    /// lowest-request-index error rule.
    pub fn serve_parallel_each_traced<T: AsRef<[u8]> + Sync>(
        &mut self,
        requests: &[T],
        traces: &[TraceId],
        fuel: u64,
    ) -> Vec<Result<RunReport, EcallError>> {
        assert_eq!(requests.len(), traces.len(), "one trace per request");
        if requests.is_empty() {
            return Vec::new();
        }
        self.serve_batch(requests, traces, fuel)
    }

    /// The shared work-stealing batch engine behind
    /// [`EnclavePool::serve_parallel`] and
    /// [`EnclavePool::serve_parallel_each_traced`]: scoped worker threads
    /// claim request indices from a shared counter, stranded requests are
    /// retried serially in index order, and the per-request outcomes are
    /// returned in request order.
    fn serve_batch<T: AsRef<[u8]> + Sync>(
        &mut self,
        requests: &[T],
        traces: &[TraceId],
        fuel: u64,
    ) -> Vec<Result<RunReport, EcallError>> {
        let _batch_span = Span::start(&METRICS.pool_serve_batch_ns);
        let ctx = RespawnCtx {
            layout: &self.layout,
            manifest: &self.manifest,
            owner_key: self.owner_key,
            prepared: self.active.as_ref().and_then(|h| self.prepared.get(h)),
        };
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in &mut self.workers {
                let ctx = &ctx;
                let next = &next;
                let traces = &traces;
                handles
                    .push(scope.spawn(move || drain_queue(w, ctx, next, requests, traces, fuel)));
            }
            for h in handles {
                slots.push(h.join().expect("worker thread must not panic"));
            }
        });

        // Stranded retry pass: requests claimed by a slot that died with
        // an exhausted budget (or never claimed because every thread
        // stopped early) are served here, serially and in index order.
        let mut has_result = vec![false; requests.len()];
        for batch in &slots {
            for &(i, _) in batch {
                has_result[i] = true;
            }
        }
        let stranded: Vec<usize> = (0..requests.len()).filter(|&i| !has_result[i]).collect();
        if !stranded.is_empty() {
            METRICS.pool_stranded_retries.add(stranded.len() as u64);
            let mut retried = Vec::with_capacity(stranded.len());
            for i in stranded {
                let entry = flightrec::with_trace(traces[i], || {
                    flightrec::record(EventKind::StrandedRetry, traces[i], i as u64, 0);
                    let mut entry = Err(EcallError::WorkerQuarantined);
                    for w in &mut self.workers {
                        if w.health.quarantined && !respawn_worker(w, &ctx) {
                            continue;
                        }
                        match serve_once(w, &ctx, requests[i].as_ref(), fuel) {
                            Outcome::Report(report) => {
                                entry = Ok(report);
                                break;
                            }
                            Outcome::Lost => {}
                            Outcome::Error(e) => {
                                entry = Err(e);
                                break;
                            }
                        }
                    }
                    entry
                });
                retried.push((i, entry));
            }
            slots.push(retried);
        }
        // Flatten per-worker batches into request order. Every index has
        // exactly one outcome: the stranded pass above filled any gap.
        let mut by_request: Vec<Option<Result<RunReport, EcallError>>> =
            (0..requests.len()).map(|_| None).collect();
        for batch in slots {
            for (i, result) in batch {
                by_request[i] = Some(result);
            }
        }
        by_request.into_iter().map(|r| r.expect("every request served")).collect()
    }

    /// The pre-work-stealing scheduler: request `i` runs on worker
    /// `i % len`, requests mapped to the same worker run serially on its
    /// thread. Kept as the ablation baseline for
    /// [`EnclavePool::serve_parallel`]; performs no quarantine or respawn
    /// handling, so it assumes a healthy pool. Health counters follow the
    /// same accounting as the work-stealing path: every completed run
    /// (including a contained-fault report) counts as served, and fault
    /// reports increment `faulted`.
    ///
    /// # Errors
    ///
    /// Same lowest-request-index error rule as
    /// [`EnclavePool::serve_parallel`].
    pub fn serve_parallel_round_robin<T: AsRef<[u8]> + Sync>(
        &mut self,
        requests: &[T],
        fuel: u64,
    ) -> Result<Vec<RunReport>, EcallError> {
        let worker_count = self.workers.len();
        METRICS.pool_round_robin_assignments.add(requests.len() as u64);
        let traces: Vec<TraceId> = (0..requests.len()).map(|_| TraceId::mint()).collect();
        for (i, &t) in traces.iter().enumerate() {
            flightrec::record(EventKind::Enqueue, t, i as u64, requests.len() as u64);
        }
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); worker_count];
        for i in 0..requests.len() {
            assignments[i % worker_count].push(i);
        }
        let mut slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, idxs) in self.workers.iter_mut().zip(&assignments) {
                let traces = &traces;
                let handle = scope.spawn(move || {
                    let mut out = Vec::with_capacity(idxs.len());
                    for &i in idxs {
                        let result = flightrec::with_trace(traces[i], || {
                            flightrec::record(EventKind::Claim, traces[i], i as u64, w.slot as u64);
                            let r = w
                                .enclave
                                .provide_input(requests[i].as_ref())
                                .and_then(|()| w.enclave.run(fuel));
                            if let Ok(report) = &r {
                                crate::flight::record_run_report(report);
                            }
                            r
                        });
                        // Same accounting as `serve_once`: a completed run
                        // is served, a contained-fault report also counts
                        // as faulted — keeping PoolHealth comparable
                        // between the two schedulers in the ablation.
                        if let Ok(report) = &result {
                            w.health.served += 1;
                            if matches!(report.exit, RunExit::Fault(_)) {
                                w.health.faulted += 1;
                            }
                        }
                        out.push((i, result));
                    }
                    out
                });
                handles.push(handle);
            }
            for h in handles {
                slots.push(h.join().expect("worker thread must not panic"));
            }
        });
        merge_results(requests.len(), slots)
    }
}

/// Flattens per-worker result batches into request order. On failure the
/// returned error is the one at the lowest request index — a pure
/// function of the per-request outcomes, not of which worker thread
/// finished (or was collected) first.
fn merge_results(
    request_count: usize,
    slots: Vec<Vec<(usize, Result<RunReport, EcallError>)>>,
) -> Result<Vec<RunReport>, EcallError> {
    let mut by_request: Vec<Option<Result<RunReport, EcallError>>> =
        (0..request_count).map(|_| None).collect();
    for batch in slots {
        for (i, result) in batch {
            by_request[i] = Some(result);
        }
    }
    let mut reports = Vec::with_capacity(request_count);
    for r in by_request {
        reports.push(r.expect("every request served")?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;
    use deflection_sgx_sim::vm::{ExecStats, RunExit};

    const ECHO_SUM: &str = "
        fn main() -> int {
            var n: int = input_len();
            var s: int = 0;
            var i: int = 0;
            while (i < n) { s = s + input_byte(i); i = i + 1; }
            return s;
        }
    ";

    fn pool(workers: usize) -> EnclavePool {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, workers);
        let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        pool.set_owner_session([1; 32]);
        pool.install_all(&binary).unwrap();
        pool
    }

    #[test]
    fn parallel_results_match_serial() {
        let requests: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i, i + 1, i + 2]).collect();
        let mut parallel_pool = pool(4);
        let parallel = parallel_pool.serve_parallel(&requests, 10_000_000).unwrap();
        let mut serial_pool = pool(1);
        for (req, report) in requests.iter().zip(&parallel) {
            let expected: u64 = req.iter().map(|&b| b as u64).sum();
            assert_eq!(report.exit, RunExit::Halted { exit: expected });
            let serial = serial_pool.serve_on(0, req, 10_000_000).unwrap();
            assert_eq!(serial.exit, report.exit);
        }
    }

    #[test]
    fn round_robin_baseline_matches_work_stealing() {
        let requests: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i, i + 3]).collect();
        let a = pool(3).serve_parallel(&requests, 10_000_000).unwrap();
        let b = pool(3).serve_parallel_round_robin(&requests, 10_000_000).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exit, y.exit);
        }
    }

    #[test]
    fn serve_parallel_accepts_any_byte_slices() {
        let mut p = pool(2);
        let requests: [&[u8]; 3] = [b"\x01", b"\x02\x03", b"\x04"];
        let reports = p.serve_parallel(&requests, 10_000_000).unwrap();
        let exits: Vec<_> = reports.iter().map(|r| r.exit.exit_value()).collect();
        assert_eq!(exits, vec![Some(1), Some(5), Some(4)]);
    }

    #[test]
    fn workers_are_isolated() {
        // A counter global must not bleed between workers.
        let src = "
            var hits: int;
            fn main() -> int { hits = hits + 1; return hits; }
        ";
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 3);
        let binary = produce(src, &manifest.policy).unwrap().serialize();
        pool.install_all(&binary).unwrap();
        // Worker 0 runs twice; workers 1 and 2 once each.
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(2));
        assert_eq!(pool.serve_on(1, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
        assert_eq!(pool.serve_on(2, b"", 1_000_000).unwrap().exit.exit_value(), Some(1));
    }

    #[test]
    fn install_all_verifies_once_per_unique_hash() {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 8);
        let echo = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        pool.install_all(&echo).unwrap();
        assert_eq!(pool.verification_count(), 1, "8 workers, 1 verification");
        // Reinstalling the identical binary hits the cache: zero more.
        pool.install_all(&echo).unwrap();
        assert_eq!(pool.verification_count(), 1);
        // A different binary verifies exactly once more.
        let other =
            produce("fn main() -> int { return 7; }", &manifest.policy).unwrap().serialize();
        pool.install_all(&other).unwrap();
        assert_eq!(pool.verification_count(), 2);
        // Every worker serves from the replayed image.
        for w in 0..8 {
            assert_eq!(pool.serve_on(w, b"", 1_000_000).unwrap().exit.exit_value(), Some(7));
        }
    }

    #[test]
    fn replayed_workers_match_independent_installs() {
        let requests: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, 2 * i]).collect();
        let mut cached = pool(4);
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut independent = EnclavePool::new(&layout, &manifest, 4);
        let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
        independent.set_owner_session([1; 32]);
        independent.install_all_independent(&binary).unwrap();
        assert_eq!(independent.verification_count(), 4);
        let a = cached.serve_parallel(&requests, 10_000_000).unwrap();
        let b = independent.serve_parallel(&requests, 10_000_000).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exit, y.exit);
        }
    }

    #[test]
    fn workers_seal_records_in_disjoint_nonce_channels() {
        use crate::runtime::open_record;
        // Two workers share the owner key and both seal their first record
        // (counter 0) over identical plaintext — exactly the (key, nonce)
        // collision the per-slot channel id exists to prevent.
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 2);
        let owner_key = [1u8; 32];
        pool.set_owner_session(owner_key);
        let binary =
            produce("fn main() -> int { return send(4); }", &manifest.policy).unwrap().serialize();
        pool.install_all(&binary).unwrap();
        let r0 = pool.serve_on(0, b"", 1_000_000).unwrap();
        let r1 = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert_ne!(r0.records[0], r1.records[0], "same plaintext must not repeat a nonce");
        let p0 = open_record(&owner_key, 0, 0, &r0.records[0]).unwrap();
        let p1 = open_record(&owner_key, 1, 0, &r1.records[0]).unwrap();
        assert_eq!(p0, p1, "the plaintexts really were identical");
        // Records authenticate only in their own channel.
        assert!(open_record(&owner_key, 0, 0, &r1.records[0]).is_err());
        assert!(open_record(&owner_key, 1, 0, &r0.records[0]).is_err());
    }

    #[test]
    fn respawned_worker_keeps_its_nonce_channel() {
        use crate::runtime::open_record;
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 2);
        let owner_key = [1u8; 32];
        pool.set_owner_session(owner_key);
        let binary =
            produce("fn main() -> int { return send(4); }", &manifest.policy).unwrap().serialize();
        pool.install_all(&binary).unwrap();
        pool.chaos_kill_after(1, 0);
        // The kill fires, the slot respawns, and the retried request seals
        // in the slot's channel (1) at the inherited counter (0).
        let first = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert_eq!(pool.health().workers[1].respawned, 1);
        assert!(open_record(&owner_key, 1, 0, &first.records[0]).is_ok());
        let second = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert!(open_record(&owner_key, 1, 1, &second.records[0]).is_ok());
    }

    #[test]
    fn round_robin_health_accounting_matches_work_stealing() {
        // A batch where every request hits a contained fault: both
        // schedulers must report identical pool-wide served/faulted
        // totals (the respawn counters legitimately differ — the baseline
        // performs no quarantine handling).
        let src = "fn main() -> int { return send(1); }";
        let manifest = {
            let mut m = Manifest::ccaas();
            m.policy = PolicySet::p1();
            m
        };
        let layout = EnclaveLayout::new(MemConfig::small());
        let binary = produce(src, &manifest.policy).unwrap().serialize();
        let requests: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i]).collect();
        // No owner session: every send faults, contained.
        let mut stealing = EnclavePool::new(&layout, &manifest, 2);
        stealing.install_all(&binary).unwrap();
        stealing.serve_parallel(&requests, 1_000_000).unwrap();
        let mut round_robin = EnclavePool::new(&layout, &manifest, 2);
        round_robin.install_all(&binary).unwrap();
        round_robin.serve_parallel_round_robin(&requests, 1_000_000).unwrap();
        let a = stealing.health();
        let b = round_robin.health();
        assert_eq!(a.total_served(), b.total_served());
        assert_eq!(a.total_faulted(), b.total_faulted());
        assert_eq!(b.total_served(), requests.len());
        assert_eq!(b.total_faulted(), requests.len());
        // The derived aggregates agree too: every request faulted.
        assert_eq!(a.fault_rate(), 1.0);
        assert_eq!(b.fault_rate(), 1.0);
    }

    #[test]
    fn health_aggregates_derive_from_worker_counters() {
        let mut p = pool(2);
        let fresh = p.health();
        assert_eq!(fresh.fault_rate(), 0.0, "nothing served yet");
        assert_eq!(fresh.min_respawn_headroom(), Some(DEFAULT_RESPAWN_BUDGET));
        // One kill on worker 1: its headroom drops below worker 0's.
        p.chaos_kill_after(1, 0);
        p.serve_on(1, b"\x01", 1_000_000).unwrap();
        let h = p.health();
        assert_eq!(h.workers[1].respawn_headroom, DEFAULT_RESPAWN_BUDGET - 1);
        assert_eq!(h.workers[0].respawn_headroom, DEFAULT_RESPAWN_BUDGET);
        assert_eq!(h.min_respawn_headroom(), Some(DEFAULT_RESPAWN_BUDGET - 1));
        assert_eq!(h.workers[1].fault_rate(), 1.0, "one served, one lost-instance fault");
        assert!(h.fault_rate() > 0.0 && h.fault_rate() <= 1.0);
        // Quarantined slots drop out of the headroom aggregate.
        let mut q = pool(1);
        q.set_respawn_budget(0);
        q.chaos_kill_after(0, 0);
        let _ = q.serve_on(0, b"\x01", 1_000_000);
        assert_eq!(q.health().min_respawn_headroom(), None);
    }

    #[test]
    fn merge_reports_lowest_request_index_error() {
        let ok = || -> Result<RunReport, EcallError> {
            Ok(RunReport {
                exit: RunExit::Halted { exit: 0 },
                stats: ExecStats::default(),
                records: Vec::new(),
                untrusted_writes: 0,
                blur_padding: 0,
            })
        };
        // Worker batches arrive in an order that puts a *higher*-index
        // error first; the merge must still surface request 1's error.
        let slots = vec![
            vec![(0, ok()), (2, Err(EcallError::NoRoomForIo))],
            vec![(1, Err(EcallError::NotInstalled)), (3, ok())],
        ];
        let err = merge_results(4, slots).unwrap_err();
        assert_eq!(err, EcallError::NotInstalled);
    }

    #[test]
    fn round_robin_wraps() {
        let mut p = pool(2);
        // Worker index 5 lands on worker 1.
        let r = p.serve_on(5, b"\x01", 1_000_000).unwrap();
        assert_eq!(r.exit.exit_value(), Some(1));
    }

    #[test]
    fn killed_worker_respawns_and_serving_continues() {
        let mut p = pool(2);
        p.chaos_kill_after(1, 0); // worker 1 dies on its next request
        for i in 0..6u8 {
            let r = p.serve_on(usize::from(i % 2), &[i], 1_000_000).unwrap();
            assert_eq!(r.exit.exit_value(), Some(u64::from(i)));
        }
        let health = p.health();
        assert_eq!(health.workers[1].respawned, 1);
        assert_eq!(health.workers[1].faulted, 1);
        assert_eq!(health.quarantined(), 0);
        // Zero re-verifications: the respawn reinstalled from the cache.
        assert_eq!(p.verification_count(), 1);
    }

    #[test]
    fn exhausted_budget_quarantines_worker() {
        let mut p = pool(1);
        p.set_respawn_budget(0);
        p.chaos_kill_after(0, 0);
        assert_eq!(p.serve_on(0, b"\x01", 1_000_000).unwrap_err(), EcallError::WorkerQuarantined);
        assert_eq!(p.serve_on(0, b"\x01", 1_000_000).unwrap_err(), EcallError::WorkerQuarantined);
        assert_eq!(p.health().quarantined(), 1);
        // A full reinstall re-establishes the slot.
        let binary = produce(ECHO_SUM, &PolicySet::full()).unwrap().serialize();
        p.install_all(&binary).unwrap();
        assert_eq!(p.health().quarantined(), 0);
        assert_eq!(p.serve_on(0, b"\x01", 1_000_000).unwrap().exit.exit_value(), Some(1));
    }

    #[test]
    fn churn_preserves_nonce_channels_and_audit_seqs() {
        use crate::runtime::open_record;
        // High-churn fleet shape: install A, serve, hot-patch to B, serve,
        // lose a worker mid-way. The per-slot nonce channels must stay
        // monotonic across the image swap (a reset would repeat a
        // (key, nonce) pair) and the audit sequence counters must never
        // regress (a regression would let the host replay an old export).
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 2);
        let owner_key = [7u8; 32];
        pool.set_owner_session(owner_key);
        let a =
            produce("fn main() -> int { return send(4); }", &manifest.policy).unwrap().serialize();
        let b =
            produce("fn main() -> int { return send(9); }", &manifest.policy).unwrap().serialize();
        pool.install_all(&a).unwrap();
        let r = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert!(open_record(&owner_key, 1, 0, &r.records[0]).is_ok());
        let seqs_after_a: Vec<u64> =
            pool.workers.iter().map(|w| w.enclave.audit_next_seq()).collect();
        // Image swap through the incremental path.
        pool.install_patched(&b).unwrap();
        let seqs_after_b: Vec<u64> =
            pool.workers.iter().map(|w| w.enclave.audit_next_seq()).collect();
        for (before, after) in seqs_after_a.iter().zip(&seqs_after_b) {
            assert!(after > before, "install must advance, never regress, the audit seq");
        }
        // The swapped-in program serves and its record continues the
        // slot's counter — the swap did not reset the nonce channel.
        let r = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert!(open_record(&owner_key, 1, 1, &r.records[0]).is_ok());
        assert!(open_record(&owner_key, 1, 0, &r.records[0]).is_err(), "not counter 0 again");
        // Kill worker 1 mid-way: the respawn replays image B and inherits
        // both counters.
        pool.chaos_kill_after(1, 0);
        let r = pool.serve_on(1, b"", 1_000_000).unwrap();
        assert_eq!(pool.health().workers[1].respawned, 1);
        assert!(open_record(&owner_key, 1, 2, &r.records[0]).is_ok());
        assert!(
            pool.workers[1].enclave.audit_next_seq() >= seqs_after_b[1],
            "respawn must not regress the audit seq"
        );
        // Both prepared images are retained (cap 64 untouched), and the
        // verification count shows one full + one incremental verify.
        assert_eq!(pool.prepared_cache_len(), 2);
        assert_eq!(pool.verification_count(), 2);
    }

    #[test]
    fn patched_install_reuses_unchanged_functions() {
        // Two-function program where only `leaf` changes: the pool's memo
        // must replay `main`'s checks and re-verify only `leaf`.
        let src = |k: u64| {
            format!(
                "
                var g: [int; 4];
                fn leaf(x: int) -> int {{ g[0] = x; return g[0] + {k}; }}
                fn main() -> int {{ return leaf(2); }}
                "
            )
        };
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 1);
        let a = produce(&src(1), &manifest.policy).unwrap().serialize();
        let b = produce(&src(2), &manifest.policy).unwrap().serialize();
        pool.install_patched(&a).unwrap();
        let cold = pool.incremental_stats();
        assert_eq!(cold.hits, 0);
        assert!(cold.misses >= 2, "every function is a first sight");
        pool.install_patched(&b).unwrap();
        let warm = pool.incremental_stats();
        assert!(warm.hits >= 1, "unchanged functions replay from the memo");
        assert_eq!(warm.hits + warm.misses + warm.invalidated, cold.misses);
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(4));
    }

    #[test]
    fn prepared_cache_is_bounded_and_never_evicts_active() {
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::p1();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 1);
        pool.set_prepared_cap(2);
        let binaries: Vec<Vec<u8>> = (0..5u64)
            .map(|i| {
                produce(&format!("fn main() -> int {{ return {i}; }}"), &manifest.policy)
                    .unwrap()
                    .serialize()
            })
            .collect();
        let hashes: Vec<[u8; 32]> = binaries
            .iter()
            .map(|b| {
                let h = pool.install_all(b).unwrap();
                assert!(pool.prepared_cache_len() <= 2, "cap enforced after every install");
                h
            })
            .collect();
        // The two most recent installs survive; older ones are tombstoned
        // as evicted, distinguishable from a hash never seen here.
        assert!(pool.export_sealed_for(&hashes[4]).is_ok());
        assert!(pool.export_sealed_for(&hashes[3]).is_ok());
        assert_eq!(pool.export_sealed_for(&hashes[0]), Err(SealedExportError::Evicted));
        assert_eq!(pool.export_sealed_for(&[0xAB; 32]), Err(SealedExportError::NeverInstalled));
        // The active image is exempt even at cap 1.
        pool.set_prepared_cap(1);
        assert_eq!(pool.prepared_cache_len(), 1);
        assert!(pool.export_sealed().is_some(), "active image survived the trim");
        // Respawn replays the active image from the cache: no re-verify.
        let before = pool.verification_count();
        pool.chaos_kill_after(0, 0);
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(4));
        assert_eq!(pool.verification_count(), before);
        // Reinstalling an evicted binary re-captures it and clears the
        // tombstone.
        pool.install_all(&binaries[0]).unwrap();
        assert!(pool.export_sealed_for(&hashes[0]).is_ok());
        assert_eq!(pool.serve_on(0, b"", 1_000_000).unwrap().exit.exit_value(), Some(0));
    }

    #[test]
    #[should_panic(expected = "prepared cache cap must be at least 1")]
    fn zero_prepared_cap_panics() {
        let manifest = Manifest::ccaas();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, 1);
        pool.set_prepared_cap(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let manifest = Manifest::ccaas();
        let layout = EnclaveLayout::new(MemConfig::small());
        let _ = EnclavePool::new(&layout, &manifest, 0);
    }
}
