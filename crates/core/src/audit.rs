//! The attested in-enclave audit log: a fixed-capacity ring recording
//! policy-relevant events (installs, guard trips, AEX injections, budget
//! exhaustions) with monotonic sequence numbers.
//!
//! # Covert-channel argument (DESIGN.md §5e)
//!
//! The log is an *output* of the enclave, so it is treated exactly like a
//! P0 record: it leaves the enclave only through
//! [`crate::runtime::BootstrapEnclave::ecall_export_audit`], which seals
//! the ring with [`crate::runtime::seal_record`] on the worker's own nonce
//! channel and charges the export against the per-run and lifetime output
//! budgets. The export is always [`AUDIT_EXPORT_LEN`] bytes regardless of
//! how many events fired (fixed-size records), the event vocabulary is the
//! closed [`AuditKind`] enum, and the per-event argument is a value the
//! runtime itself computes (a code-hash prefix, an instruction count, a
//! refused length) — never attacker-controlled payload bytes. A malicious
//! program therefore cannot use the audit path to move more information
//! than the budget already permits.

use crate::runtime::open_record;
use deflection_crypto::CryptoError;

/// Ring capacity: the newest [`AUDIT_CAPACITY`] events are retained.
pub const AUDIT_CAPACITY: usize = 64;

/// Serialized bytes per event: `seq (u64 LE) ‖ kind (u8) ‖ arg (u64 LE)`.
pub const AUDIT_ENTRY_LEN: usize = 17;

/// Export framing magic.
pub const AUDIT_MAGIC: &[u8; 8] = b"DFLAUDT1";

/// Fixed plaintext length of every audit export: magic, `first_seq`,
/// `next_seq`, `count`, then [`AUDIT_CAPACITY`] entry slots (zero-padded).
pub const AUDIT_EXPORT_LEN: usize = 8 + 8 + 8 + 8 + AUDIT_CAPACITY * AUDIT_ENTRY_LEN;

/// The closed vocabulary of auditable events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AuditKind {
    /// A binary passed the consumer pipeline and was adopted; `arg` is the
    /// first 8 bytes of its code hash (little-endian).
    Install = 1,
    /// A run ended in a policy fault (guard trip, denied OCall, …); `arg`
    /// is the instruction count at the trip.
    GuardTrip = 2,
    /// A run experienced injected asynchronous exits; `arg` is the count.
    AexInjected = 3,
    /// A `send` was refused by the per-run output budget; `arg` is the
    /// refused length.
    RunBudgetExhausted = 4,
    /// A `send` or audit export was refused by the lifetime output ledger;
    /// `arg` is the refused length.
    LifetimeBudgetExhausted = 5,
}

impl AuditKind {
    /// Decodes a serialized kind byte.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<AuditKind> {
        match v {
            1 => Some(AuditKind::Install),
            2 => Some(AuditKind::GuardTrip),
            3 => Some(AuditKind::AexInjected),
            4 => Some(AuditKind::RunBudgetExhausted),
            5 => Some(AuditKind::LifetimeBudgetExhausted),
            _ => None,
        }
    }
}

/// One audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number, assigned at record time and never reused
    /// by this slot (pools carry it across respawns like the send nonce).
    pub seq: u64,
    /// What happened.
    pub kind: AuditKind,
    /// Runtime-computed argument (see [`AuditKind`]).
    pub arg: u64,
}

/// The in-enclave ring. Fixed capacity: when full, the oldest event is
/// overwritten and the export's `first_seq` field becomes the gap marker
/// (every event below it was dropped).
#[derive(Debug, Clone)]
pub struct AuditRing {
    events: Vec<AuditEvent>,
    next_seq: u64,
}

impl AuditRing {
    /// An empty ring with sequence numbers starting at 0.
    #[must_use]
    pub fn new() -> AuditRing {
        AuditRing { events: Vec::with_capacity(AUDIT_CAPACITY), next_seq: 0 }
    }

    /// Records one event, assigning the next sequence number; drops the
    /// oldest retained event when the ring is full.
    ///
    /// Deliberately *not* instrumented: a host-visible counter bumped here
    /// would leak the count and timing of in-run policy events outside the
    /// sealed, budget-charged export path. Telemetry counts audit events
    /// only when the owner decodes an authenticated export
    /// ([`open_audit_export`]), after the information has already left the
    /// enclave through the charged channel.
    pub fn record(&mut self, kind: AuditKind, arg: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == AUDIT_CAPACITY {
            self.events.remove(0);
        }
        self.events.push(AuditEvent { seq, kind, arg });
        seq
    }

    /// Retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// The sequence number the next recorded event will get (equals the
    /// total number of events ever recorded, modulo resumes).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to at least `floor` (pool respawn
    /// carry-forward, mirroring `resume_send_nonce`). Never moves backwards.
    ///
    /// When the floor jumps past retained events, those events are cleared
    /// and read as dropped (the export's `first_seq` gap marker) — keeping
    /// them would produce an export whose sequence numbers skip from the old
    /// range to the floor, which [`parse_audit_export`] rejects as
    /// non-monotonic.
    pub fn resume_seq(&mut self, floor: u64) {
        if floor > self.next_seq {
            self.events.clear();
            self.next_seq = floor;
        }
    }

    /// Serializes the ring into its fixed [`AUDIT_EXPORT_LEN`]-byte export
    /// form. Length is independent of how many events fired.
    #[must_use]
    pub fn export_bytes(&self) -> Vec<u8> {
        let first_seq = self.events.first().map_or(self.next_seq, |e| e.seq);
        let mut out = Vec::with_capacity(AUDIT_EXPORT_LEN);
        out.extend_from_slice(AUDIT_MAGIC);
        out.extend_from_slice(&first_seq.to_le_bytes());
        out.extend_from_slice(&self.next_seq.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.seq.to_le_bytes());
            out.push(e.kind as u8);
            out.extend_from_slice(&e.arg.to_le_bytes());
        }
        out.resize(AUDIT_EXPORT_LEN, 0);
        out
    }
}

impl Default for AuditRing {
    fn default() -> Self {
        AuditRing::new()
    }
}

/// A parsed audit export (the owner's view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditExport {
    /// Sequence number of the oldest retained event; when greater than 0
    /// the ring wrapped and exactly `first_seq` older events were dropped.
    pub first_seq: u64,
    /// Sequence number the next event would get.
    pub next_seq: u64,
    /// Retained events, oldest first.
    pub events: Vec<AuditEvent>,
}

impl AuditExport {
    /// How many events were overwritten before this export (the gap
    /// marker): 0 means the log is complete since the slot started.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.first_seq
    }
}

/// Why an audit export failed to open or parse on the owner's side.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditOpenError {
    /// AEAD authentication failed (tamper, truncation, wrong channel or
    /// counter).
    Sealed(CryptoError),
    /// Authenticated plaintext is not a well-formed audit export.
    Malformed(&'static str),
}

impl std::fmt::Display for AuditOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditOpenError::Sealed(e) => write!(f, "audit export rejected: {e}"),
            AuditOpenError::Malformed(why) => write!(f, "audit export malformed: {why}"),
        }
    }
}

impl std::error::Error for AuditOpenError {}

/// Parses the fixed-format plaintext of an audit export.
///
/// # Errors
///
/// Rejects wrong length, bad magic, an inconsistent event count, and
/// non-monotonic or unknown-kind entries.
pub fn parse_audit_export(plain: &[u8]) -> Result<AuditExport, AuditOpenError> {
    if plain.len() != AUDIT_EXPORT_LEN {
        return Err(AuditOpenError::Malformed("wrong export length"));
    }
    if &plain[..8] != AUDIT_MAGIC {
        return Err(AuditOpenError::Malformed("bad magic"));
    }
    let word = |i: usize| u64::from_le_bytes(plain[i..i + 8].try_into().expect("sliced"));
    let (first_seq, next_seq, count) = (word(8), word(16), word(24));
    if count > AUDIT_CAPACITY as u64 {
        return Err(AuditOpenError::Malformed("count exceeds capacity"));
    }
    let mut events = Vec::with_capacity(count as usize);
    for k in 0..count as usize {
        let base = 32 + k * AUDIT_ENTRY_LEN;
        let seq = word(base);
        let kind = AuditKind::from_u8(plain[base + 8])
            .ok_or(AuditOpenError::Malformed("unknown event kind"))?;
        let arg = word(base + 9);
        if events.last().is_some_and(|p: &AuditEvent| seq != p.seq + 1)
            || (k == 0 && seq != first_seq)
        {
            return Err(AuditOpenError::Malformed("non-monotonic sequence"));
        }
        events.push(AuditEvent { seq, kind, arg });
    }
    if events.last().map_or(first_seq, |e| e.seq + 1) != next_seq {
        return Err(AuditOpenError::Malformed("sequence header mismatch"));
    }
    Ok(AuditExport { first_seq, next_seq, events })
}

/// Opens a sealed audit export (owner side): authenticates the record on
/// the worker's `(channel, counter)` nonce lane, then parses the fixed
/// format.
///
/// # Errors
///
/// Fails on AEAD rejection (tamper, truncation, replay on the wrong
/// channel/counter) or a malformed plaintext.
pub fn open_audit_export(
    key: &[u8; 32],
    channel: u32,
    counter: u64,
    sealed: &[u8],
) -> Result<AuditExport, AuditOpenError> {
    let plain = open_record(key, channel, counter, sealed).map_err(AuditOpenError::Sealed)?;
    let export = parse_audit_export(&plain)?;
    // Owner-side, post-release accounting: by the time an export opens the
    // event count has already left the enclave sealed and budget-charged,
    // so the counter reveals nothing the owner did not just learn.
    deflection_telemetry::METRICS.audit_events.add(export.events.len() as u64);
    Ok(export)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_assigns_monotonic_seqs_and_exports_roundtrip() {
        let mut ring = AuditRing::new();
        assert_eq!(ring.record(AuditKind::Install, 7), 0);
        assert_eq!(ring.record(AuditKind::GuardTrip, 99), 1);
        let export = parse_audit_export(&ring.export_bytes()).unwrap();
        assert_eq!(export.dropped(), 0);
        assert_eq!(export.next_seq, 2);
        assert_eq!(
            export.events,
            vec![
                AuditEvent { seq: 0, kind: AuditKind::Install, arg: 7 },
                AuditEvent { seq: 1, kind: AuditKind::GuardTrip, arg: 99 },
            ]
        );
    }

    #[test]
    fn wraparound_keeps_newest_and_marks_the_gap() {
        let mut ring = AuditRing::new();
        for i in 0..(AUDIT_CAPACITY as u64 + 10) {
            ring.record(AuditKind::AexInjected, i);
        }
        let export = parse_audit_export(&ring.export_bytes()).unwrap();
        assert_eq!(export.events.len(), AUDIT_CAPACITY);
        assert_eq!(export.dropped(), 10, "10 oldest events were overwritten");
        assert_eq!(export.first_seq, 10);
        assert_eq!(export.events.first().unwrap().arg, 10);
        assert_eq!(export.events.last().unwrap().seq, AUDIT_CAPACITY as u64 + 9);
    }

    #[test]
    fn export_length_is_fixed() {
        let mut ring = AuditRing::new();
        assert_eq!(ring.export_bytes().len(), AUDIT_EXPORT_LEN);
        ring.record(AuditKind::Install, 1);
        assert_eq!(ring.export_bytes().len(), AUDIT_EXPORT_LEN);
        for _ in 0..200 {
            ring.record(AuditKind::GuardTrip, 2);
        }
        assert_eq!(ring.export_bytes().len(), AUDIT_EXPORT_LEN);
    }

    #[test]
    fn resume_seq_never_moves_backwards() {
        let mut ring = AuditRing::new();
        ring.record(AuditKind::Install, 0);
        ring.resume_seq(10);
        assert_eq!(ring.next_seq(), 10);
        ring.resume_seq(3);
        assert_eq!(ring.next_seq(), 10);
        assert_eq!(ring.record(AuditKind::GuardTrip, 0), 10);
    }

    #[test]
    fn resume_seq_on_a_nonempty_ring_still_exports_parseably() {
        // A floor past retained events clears them (they read as dropped);
        // keeping them would make the export non-monotonic and unopenable.
        let mut ring = AuditRing::new();
        ring.record(AuditKind::Install, 1);
        ring.record(AuditKind::GuardTrip, 2);
        ring.resume_seq(10);
        let export = parse_audit_export(&ring.export_bytes()).unwrap();
        assert_eq!(export.dropped(), 10, "pre-resume events read as a gap");
        assert!(export.events.is_empty());
        assert_eq!(export.next_seq, 10);
        // Events recorded after the resume export normally.
        ring.record(AuditKind::AexInjected, 3);
        let export = parse_audit_export(&ring.export_bytes()).unwrap();
        assert_eq!(
            export.events,
            vec![AuditEvent { seq: 10, kind: AuditKind::AexInjected, arg: 3 }]
        );
        // A floor at or below next_seq is a no-op and keeps retained events.
        let mut ring = AuditRing::new();
        ring.record(AuditKind::Install, 1);
        ring.resume_seq(1);
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn parser_rejects_malformed_exports() {
        let mut ring = AuditRing::new();
        ring.record(AuditKind::Install, 1);
        ring.record(AuditKind::GuardTrip, 2);
        let good = ring.export_bytes();
        // Wrong length.
        assert!(parse_audit_export(&good[..good.len() - 1]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 1;
        assert!(parse_audit_export(&bad).is_err());
        // Count beyond capacity.
        let mut bad = good.clone();
        bad[24] = 0xFF;
        assert!(parse_audit_export(&bad).is_err());
        // Unknown kind byte.
        let mut bad = good.clone();
        bad[32 + 8] = 0x77;
        assert!(parse_audit_export(&bad).is_err());
        // Non-monotonic second entry.
        let mut bad = good.clone();
        bad[32 + AUDIT_ENTRY_LEN] = 5;
        assert!(parse_audit_export(&bad).is_err());
    }
}
