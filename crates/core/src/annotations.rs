//! Security-annotation templates: the exact instruction sequences the code
//! producer implants (paper Section V-A, Fig. 5) and the matchers the
//! in-enclave verifier uses to re-recognize them after disassembly.
//!
//! Emission and matching live in one module **on purpose**: the verifier's
//! soundness depends on recognizing precisely what the producer emits, and
//! keeping both sides of each template adjacent makes divergence impossible
//! to miss (the round-trip is property-tested).
//!
//! All templates use `r11` (and where noted `r10`) as scratch — registers
//! the DCL code generator never allocates — plus the save/restore pattern of
//! the paper's Fig. 5 for the store guard. Bounds and table addresses are
//! *placeholder immediates* (`PH_*`): magic 64-bit values the in-enclave
//! rewriter replaces with the real region bounds after verification, exactly
//! like the paper's `0x3FFFFFFFFFFFFFFF`/`0x4FFFFFFFFFFFFFFF` immediates.

use crate::policy::abort_codes;
use deflection_analysis::AnalysisConfig;
use deflection_isa::{AluOp, CondCode, Inst, MemOperand, Reg};
use deflection_lang::mir::{MFunction, MInst};
use deflection_sgx_sim::layout::EnclaveLayout;

/// Placeholder for the store window's lower bound (P1/P3/P4).
pub const PH_STORE_LO: u64 = 0x3FFF_FFFF_FFFF_FF01;
/// Placeholder for the store window's upper bound (P1/P3/P4).
pub const PH_STORE_HI: u64 = 0x4FFF_FFFF_FFFF_FF02;
/// Placeholder for the stack window's lower bound (P2).
pub const PH_STACK_LO: u64 = 0x5FFF_FFFF_FFFF_FF03;
/// Placeholder for the stack window's upper bound (P2).
pub const PH_STACK_HI: u64 = 0x5FFF_FFFF_FFFF_FF04;
/// Placeholder for the indirect-branch table base (P5).
pub const PH_BT_BASE: u64 = 0x6FFF_FFFF_FFFF_FF05;
/// Placeholder for the indirect-branch table length (P5).
pub const PH_BT_LEN: u64 = 0x6FFF_FFFF_FFFF_FF06;
/// Placeholder for the shadow-stack top-pointer slot address (P5).
pub const PH_SS_SLOT: u64 = 0x7FFF_FFFF_FFFF_FF07;
/// Placeholder for the SSA marker address (P6).
pub const PH_SSA_MARKER: u64 = 0x8FFF_FFFF_FFFF_FF08;
/// Placeholder for the AEX counter slot address (P6).
pub const PH_AEX_SLOT: u64 = 0x8FFF_FFFF_FFFF_FF09;
/// Placeholder for the AEX abort threshold (P6).
pub const PH_AEX_MAX: u64 = 0x8FFF_FFFF_FFFF_FF0A;

/// Every placeholder immediate the templates carry, in one list.
///
/// The guard-elision analysis must treat these values as opaque (`Top`):
/// the in-enclave rewriter replaces them after verification, so any proof
/// that leaned on a placeholder's numeric value would be unsound for the
/// binary that actually runs.
pub const PLACEHOLDER_IMMS: [u64; 10] = [
    PH_STORE_LO,
    PH_STORE_HI,
    PH_STACK_LO,
    PH_STACK_HI,
    PH_BT_BASE,
    PH_BT_LEN,
    PH_SS_SLOT,
    PH_SSA_MARKER,
    PH_AEX_SLOT,
    PH_AEX_MAX,
];

/// The guard-elision analysis parameters derived from the enclave layout.
///
/// Producer and verifier must agree on these bit-for-bit: the verifier
/// accepts an unguarded operation only when its *own* run of the analysis
/// under this configuration re-derives the safety proof, so any divergence
/// would make the producer elide guards the verifier then rejects (safe,
/// but pointless). Keeping the derivation next to the templates makes the
/// shared contract obvious.
#[must_use]
pub fn elision_analysis_config(layout: &EnclaveLayout) -> AnalysisConfig {
    AnalysisConfig {
        store_lo: layout.store_window().start,
        store_hi: layout.store_window().end,
        stack_hi: layout.initial_rsp(),
        stack_lo: layout.stack_window().start,
        opaque_imms: PLACEHOLDER_IMMS.to_vec(),
        nonstack_imms: NONSTACK_IMMS.to_vec(),
    }
}

/// The placeholders the templates dereference as *pointers*, all of which
/// the rewriter binds to runtime-structure addresses (SSA marker, control
/// page, branch table) that lie strictly below the heap — never inside the
/// stack region. The analysis may therefore keep its abstract frame slots
/// alive across a store through one of these (`AVal::NonStack`): the claim
/// holds for the pre-rewrite binary too, whose magic values sit far above
/// the ELRANGE. Without this fact the per-block P6 AEX probes would clear
/// every loop counter's slot and no in-loop store could ever prove safe.
pub const NONSTACK_IMMS: [u64; 4] = [PH_BT_BASE, PH_SS_SLOT, PH_SSA_MARKER, PH_AEX_SLOT];

/// The marker value P6 annotations plant in the SSA; an AEX overwrites it
/// with the saved `rip`, which can never equal this value because the code
/// window never sits at this address.
pub const SSA_MARKER_VALUE: i32 = 0x5AA5_0FF0;

/// Maximum negative `rbp`-relative displacement exempt from store guards.
///
/// Frame-local scalar stores `mov [rbp - d], r` with `0 < d ≤` this bound
/// need no P1 annotation: the verifier separately enforces that `rbp` is
/// only ever written by the frame idiom (`mov rbp, rsp` / `pop rbp`), so
/// `rbp` always lies inside the stack window, and a displacement bounded by
/// one page can at worst land on the guard page below the stack — which
/// faults. This is the classic SFI guard-page optimization (XFI's scoped
/// stack accesses) and the reason the paper's loader "assigns two
/// non-writable blank guard pages right before and after the target
/// binary's stack".
pub const FRAME_STORE_LIMIT: i64 = 4032;

/// Whether a store to `mem` is a guard-page-contained frame store that
/// needs no P1 annotation.
#[must_use]
pub fn is_exempt_frame_store(mem: &MemOperand) -> bool {
    mem.base == Some(Reg::RBP)
        && mem.index.is_none()
        && mem.disp < 0
        && (mem.disp as i64) >= -FRAME_STORE_LIMIT
}

/// Kinds of annotation template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// P1/P3/P4 store-bounds guard; subject = the guarded store.
    StoreGuard,
    /// P2 stack-pointer guard (follows an rsp-writing instruction).
    RspGuard,
    /// P5 forward-edge CFI with bounds check; subject = the indirect branch.
    CfiChecked,
    /// Baseline branch-table lowering without the bounds check; subject =
    /// the indirect branch.
    CfiUnchecked,
    /// P5 shadow-stack push at function entry.
    Prologue,
    /// P5 shadow-stack pop + compare; subject = the `ret`.
    Epilogue,
    /// P6 SSA marker check with AEX counting.
    AexCheck,
}

/// A matched template instance over the disassembled instruction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Which template.
    pub kind: TemplateKind,
    /// Index of the first instruction in the instance.
    pub start_idx: usize,
    /// Index of the last instruction (the subject where one exists).
    pub end_idx: usize,
    /// Index of the subject instruction, if this template guards one.
    pub subject_idx: Option<usize>,
}

// ---------------------------------------------------------------------------
// Emission (producer side)
// ---------------------------------------------------------------------------

fn abort(f: &mut MFunction, code: u8) {
    f.real(Inst::Abort { code });
}

/// Emits the P1/P3/P4 store guard (paper Fig. 5) for a store whose
/// destination operand is `mem`, followed by nothing — the caller emits the
/// store itself immediately after.
///
/// # Panics
///
/// Panics if `mem` uses `rsp` (the guard's `lea` would observe a shifted
/// stack pointer); the DCL code generator never produces such stores.
pub fn emit_store_guard(f: &mut MFunction, mem: &MemOperand) {
    assert!(!mem.uses(Reg::RSP), "store guard cannot check rsp-relative stores");
    let ok1 = f.new_label();
    let ok2 = f.new_label();
    f.real(Inst::Push { reg: Reg::RBX });
    f.real(Inst::Push { reg: Reg::RAX });
    f.real(Inst::Lea { dst: Reg::RAX, mem: *mem });
    f.real(Inst::MovRI { dst: Reg::RBX, imm: PH_STORE_LO });
    f.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
    f.push(MInst::Jcc(CondCode::Ae, ok1));
    abort(f, abort_codes::STORE_BOUNDS);
    f.push(MInst::Label(ok1));
    f.real(Inst::MovRI { dst: Reg::RBX, imm: PH_STORE_HI });
    f.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
    f.push(MInst::Jcc(CondCode::B, ok2));
    abort(f, abort_codes::STORE_BOUNDS);
    f.push(MInst::Label(ok2));
    f.real(Inst::Pop { reg: Reg::RAX });
    f.real(Inst::Pop { reg: Reg::RBX });
}

/// Emits the P2 stack-pointer guard; the caller emits it immediately after
/// every instruction that explicitly writes `rsp`.
pub fn emit_rsp_guard(f: &mut MFunction) {
    let ok1 = f.new_label();
    let ok2 = f.new_label();
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_STACK_LO });
    f.real(Inst::CmpRR { lhs: Reg::RSP, rhs: Reg::R11 });
    f.push(MInst::Jcc(CondCode::Ae, ok1));
    abort(f, abort_codes::RSP_BOUNDS);
    f.push(MInst::Label(ok1));
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_STACK_HI });
    f.real(Inst::CmpRR { lhs: Reg::RSP, rhs: Reg::R11 });
    f.push(MInst::Jcc(CondCode::Be, ok2));
    abort(f, abort_codes::RSP_BOUNDS);
    f.push(MInst::Label(ok2));
}

/// Emits the branch-table lowering of an indirect branch whose register
/// holds a table *index*: optionally bounds-checked (P5), then the table
/// load and the actual branch (`call` when `is_call`, `jmp` otherwise).
pub fn emit_cfi_branch(f: &mut MFunction, reg: Reg, is_call: bool, checked: bool) {
    assert!(reg != Reg::R11, "indirect-branch register must not be the annotation scratch");
    if checked {
        let ok = f.new_label();
        f.real(Inst::MovRI { dst: Reg::R11, imm: PH_BT_LEN });
        f.real(Inst::CmpRR { lhs: reg, rhs: Reg::R11 });
        f.push(MInst::Jcc(CondCode::B, ok));
        abort(f, abort_codes::CFI_FORWARD);
        f.push(MInst::Label(ok));
    }
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_BT_BASE });
    f.real(Inst::Load { dst: reg, mem: MemOperand::base_index(Reg::R11, reg, 8, 0) });
    if is_call {
        f.real(Inst::CallInd { reg });
    } else {
        f.real(Inst::JmpInd { reg });
    }
}

/// Emits the P5 shadow-stack prologue at function entry: pushes the return
/// address (`[rsp]`) onto the downward-growing shadow stack.
pub fn emit_prologue(f: &mut MFunction) {
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_SS_SLOT });
    f.real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::R11, 0) });
    f.real(Inst::AluRI { op: AluOp::Sub, dst: Reg::RAX, imm: 8 });
    f.real(Inst::Load { dst: Reg::RBX, mem: MemOperand::base_disp(Reg::RSP, 0) });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RAX, 0), src: Reg::RBX });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::R11, 0), src: Reg::RAX });
}

/// Emits the P5 shadow-stack epilogue followed by the `ret` it protects:
/// pops the saved return address and aborts on mismatch with `[rsp]`.
pub fn emit_epilogue_and_ret(f: &mut MFunction) {
    let ok = f.new_label();
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_SS_SLOT });
    f.real(Inst::Load { dst: Reg::RBX, mem: MemOperand::base_disp(Reg::R11, 0) });
    f.real(Inst::Load { dst: Reg::R10, mem: MemOperand::base_disp(Reg::RBX, 0) });
    f.real(Inst::AluRI { op: AluOp::Add, dst: Reg::RBX, imm: 8 });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::R11, 0), src: Reg::RBX });
    f.real(Inst::CmpMem { reg: Reg::R10, mem: MemOperand::base_disp(Reg::RSP, 0) });
    f.push(MInst::Jcc(CondCode::E, ok));
    abort(f, abort_codes::CFI_RETURN);
    f.push(MInst::Label(ok));
    f.push(MInst::Ret);
}

/// Emits the P6 SSA marker check: on a clobbered marker it runs the
/// co-location probe, counts the AEX, aborts past the threshold, and
/// re-arms the marker (HyperRace-style, paper Section IV-C).
pub fn emit_aex_check(f: &mut MFunction) {
    let ok = f.new_label();
    let counted = f.new_label();
    let rearm = f.new_label();
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_SSA_MARKER });
    f.real(Inst::Load { dst: Reg::R10, mem: MemOperand::base_disp(Reg::R11, 0) });
    f.real(Inst::CmpRI { lhs: Reg::R10, imm: SSA_MARKER_VALUE as i64 });
    f.push(MInst::Jcc(CondCode::E, ok));
    // AEX detected: co-location probe first.
    f.real(Inst::Push { reg: Reg::RAX });
    f.real(Inst::AexProbe);
    f.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
    f.real(Inst::Pop { reg: Reg::RAX });
    f.push(MInst::Jcc(CondCode::Ne, counted));
    abort(f, abort_codes::AEX);
    f.push(MInst::Label(counted));
    // Count the AEX and compare against the threshold.
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_AEX_SLOT });
    f.real(Inst::Load { dst: Reg::R10, mem: MemOperand::base_disp(Reg::R11, 0) });
    f.real(Inst::AluRI { op: AluOp::Add, dst: Reg::R10, imm: 1 });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::R11, 0), src: Reg::R10 });
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_AEX_MAX });
    f.real(Inst::CmpRR { lhs: Reg::R10, rhs: Reg::R11 });
    f.push(MInst::Jcc(CondCode::B, rearm));
    abort(f, abort_codes::AEX);
    f.push(MInst::Label(rearm));
    // Re-arm the marker.
    f.real(Inst::MovRI { dst: Reg::R11, imm: PH_SSA_MARKER });
    f.real(Inst::StoreImm { mem: MemOperand::base_disp(Reg::R11, 0), imm: SSA_MARKER_VALUE });
    f.push(MInst::Label(ok));
}

// ---------------------------------------------------------------------------
// Matching (consumer side)
// ---------------------------------------------------------------------------

/// A view over the disassembled, address-ordered instruction list.
#[derive(Debug, Clone, Copy)]
pub struct Code<'a> {
    /// `(offset, instruction, encoded length)` sorted by offset.
    pub insts: &'a [(usize, Inst, usize)],
}

impl<'a> Code<'a> {
    /// Instruction at list index `i`.
    #[must_use]
    pub fn inst(&self, i: usize) -> Option<&'a Inst> {
        self.insts.get(i).map(|(_, inst, _)| inst)
    }

    /// Offset of instruction `i`.
    #[must_use]
    pub fn offset(&self, i: usize) -> Option<usize> {
        self.insts.get(i).map(|(off, _, _)| *off)
    }

    /// Offset one past instruction `i`.
    #[must_use]
    pub fn end_offset(&self, i: usize) -> Option<usize> {
        self.insts.get(i).map(|(off, _, len)| off + len)
    }

    /// Whether instructions `i` and `i+1` are byte-adjacent (no gap).
    fn adjacent(&self, i: usize) -> bool {
        match (self.end_offset(i), self.offset(i + 1)) {
            (Some(e), Some(s)) => e == s,
            _ => false,
        }
    }

    /// Whether the `Jcc` at index `i` jumps exactly to the instruction at
    /// index `target_idx`.
    fn jcc_lands_at(&self, i: usize, cc: CondCode, target_idx: usize) -> bool {
        let Some(Inst::Jcc { cc: actual_cc, rel }) = self.inst(i) else { return false };
        if *actual_cc != cc {
            return false;
        }
        let (Some(end), Some(target)) = (self.end_offset(i), self.offset(target_idx)) else {
            return false;
        };
        end as i64 + *rel as i64 == target as i64
    }

    /// Whether the `Jcc` at index `i` jumps exactly to the byte *after*
    /// instruction `last_idx` (used when the landing pad is outside the
    /// template).
    fn jcc_lands_after(&self, i: usize, cc: CondCode, last_idx: usize) -> bool {
        let Some(Inst::Jcc { cc: actual_cc, rel }) = self.inst(i) else { return false };
        if *actual_cc != cc {
            return false;
        }
        let (Some(end), Some(target)) = (self.end_offset(i), self.end_offset(last_idx)) else {
            return false;
        };
        end as i64 + *rel as i64 == target as i64
    }

    /// Checks that instructions `start..=end` form one byte-contiguous run.
    fn contiguous(&self, start: usize, end: usize) -> bool {
        (start..end).all(|i| self.adjacent(i))
    }
}

fn is_movri(inst: Option<&Inst>, dst: Reg, imm: u64) -> bool {
    matches!(inst, Some(Inst::MovRI { dst: d, imm: v }) if *d == dst && *v == imm)
}

fn is_abort(inst: Option<&Inst>, code: u8) -> bool {
    matches!(inst, Some(Inst::Abort { code: c }) if *c == code)
}

/// Tries to match the store guard starting at index `i`; the guarded store
/// is the 14th instruction.
#[must_use]
pub fn match_store_guard(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !matches!(code.inst(i), Some(Inst::Push { reg: Reg::RBX })) {
        return None;
    }
    if !matches!(code.inst(i + 1), Some(Inst::Push { reg: Reg::RAX })) {
        return None;
    }
    let Some(Inst::Lea { dst: Reg::RAX, mem: lea_mem }) = code.inst(i + 2) else { return None };
    if !is_movri(code.inst(i + 3), Reg::RBX, PH_STORE_LO) {
        return None;
    }
    if !matches!(code.inst(i + 4), Some(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX })) {
        return None;
    }
    if !code.jcc_lands_at(i + 5, CondCode::Ae, i + 7) {
        return None;
    }
    if !is_abort(code.inst(i + 6), abort_codes::STORE_BOUNDS) {
        return None;
    }
    if !is_movri(code.inst(i + 7), Reg::RBX, PH_STORE_HI) {
        return None;
    }
    if !matches!(code.inst(i + 8), Some(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX })) {
        return None;
    }
    if !code.jcc_lands_at(i + 9, CondCode::B, i + 11) {
        return None;
    }
    if !is_abort(code.inst(i + 10), abort_codes::STORE_BOUNDS) {
        return None;
    }
    if !matches!(code.inst(i + 11), Some(Inst::Pop { reg: Reg::RAX })) {
        return None;
    }
    if !matches!(code.inst(i + 12), Some(Inst::Pop { reg: Reg::RBX })) {
        return None;
    }
    // The subject store: same memory operand as the lea checked, no rsp.
    let store_mem = code.inst(i + 13)?.stored_mem()?;
    if store_mem != lea_mem || store_mem.uses(Reg::RSP) {
        return None;
    }
    if !code.contiguous(i, i + 13) {
        return None;
    }
    Some(Instance {
        kind: TemplateKind::StoreGuard,
        start_idx: i,
        end_idx: i + 13,
        subject_idx: Some(i + 13),
    })
}

/// Tries to match the rsp guard starting at index `i`.
#[must_use]
pub fn match_rsp_guard(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !is_movri(code.inst(i), Reg::R11, PH_STACK_LO) {
        return None;
    }
    if !matches!(code.inst(i + 1), Some(Inst::CmpRR { lhs: Reg::RSP, rhs: Reg::R11 })) {
        return None;
    }
    if !code.jcc_lands_at(i + 2, CondCode::Ae, i + 4) {
        return None;
    }
    if !is_abort(code.inst(i + 3), abort_codes::RSP_BOUNDS) {
        return None;
    }
    if !is_movri(code.inst(i + 4), Reg::R11, PH_STACK_HI) {
        return None;
    }
    if !matches!(code.inst(i + 5), Some(Inst::CmpRR { lhs: Reg::RSP, rhs: Reg::R11 })) {
        return None;
    }
    if !code.jcc_lands_at(i + 6, CondCode::Be, i + 8) {
        return None;
    }
    if !is_abort(code.inst(i + 7), abort_codes::RSP_BOUNDS) {
        return None;
    }
    if !code.contiguous(i, i + 7) {
        return None;
    }
    Some(Instance { kind: TemplateKind::RspGuard, start_idx: i, end_idx: i + 7, subject_idx: None })
}

fn match_cfi_tail(code: &Code<'_>, i: usize) -> Option<(usize, Reg)> {
    if !is_movri(code.inst(i), Reg::R11, PH_BT_BASE) {
        return None;
    }
    let Some(Inst::Load { dst, mem }) = code.inst(i + 1) else { return None };
    let expected = MemOperand::base_index(Reg::R11, *dst, 8, 0);
    if *mem != expected {
        return None;
    }
    match code.inst(i + 2) {
        Some(Inst::CallInd { reg }) | Some(Inst::JmpInd { reg }) if reg == dst => {
            Some((i + 2, *reg))
        }
        _ => None,
    }
}

/// Tries to match a *checked* CFI lowering starting at index `i`.
#[must_use]
pub fn match_cfi_checked(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !is_movri(code.inst(i), Reg::R11, PH_BT_LEN) {
        return None;
    }
    let Some(Inst::CmpRR { lhs, rhs: Reg::R11 }) = code.inst(i + 1) else { return None };
    if !code.jcc_lands_at(i + 2, CondCode::B, i + 4) {
        return None;
    }
    if !is_abort(code.inst(i + 3), abort_codes::CFI_FORWARD) {
        return None;
    }
    let (subject, reg) = match_cfi_tail(code, i + 4)?;
    if reg != *lhs {
        return None;
    }
    if !code.contiguous(i, subject) {
        return None;
    }
    Some(Instance {
        kind: TemplateKind::CfiChecked,
        start_idx: i,
        end_idx: subject,
        subject_idx: Some(subject),
    })
}

/// Tries to match an *unchecked* (baseline) CFI lowering at index `i`.
#[must_use]
pub fn match_cfi_unchecked(code: &Code<'_>, i: usize) -> Option<Instance> {
    let (subject, _) = match_cfi_tail(code, i)?;
    if !code.contiguous(i, subject) {
        return None;
    }
    Some(Instance {
        kind: TemplateKind::CfiUnchecked,
        start_idx: i,
        end_idx: subject,
        subject_idx: Some(subject),
    })
}

/// Tries to match the shadow-stack prologue at index `i`.
#[must_use]
pub fn match_prologue(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !is_movri(code.inst(i), Reg::R11, PH_SS_SLOT) {
        return None;
    }
    if !matches!(code.inst(i + 1), Some(Inst::Load { dst: Reg::RAX, mem }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 2), Some(Inst::AluRI { op: AluOp::Sub, dst: Reg::RAX, imm: 8 })) {
        return None;
    }
    if !matches!(code.inst(i + 3), Some(Inst::Load { dst: Reg::RBX, mem }) if *mem == MemOperand::base_disp(Reg::RSP, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 4), Some(Inst::Store { mem, src: Reg::RBX }) if *mem == MemOperand::base_disp(Reg::RAX, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 5), Some(Inst::Store { mem, src: Reg::RAX }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !code.contiguous(i, i + 5) {
        return None;
    }
    Some(Instance { kind: TemplateKind::Prologue, start_idx: i, end_idx: i + 5, subject_idx: None })
}

/// Tries to match the shadow-stack epilogue (ending in `ret`) at index `i`.
#[must_use]
pub fn match_epilogue(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !is_movri(code.inst(i), Reg::R11, PH_SS_SLOT) {
        return None;
    }
    if !matches!(code.inst(i + 1), Some(Inst::Load { dst: Reg::RBX, mem }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 2), Some(Inst::Load { dst: Reg::R10, mem }) if *mem == MemOperand::base_disp(Reg::RBX, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 3), Some(Inst::AluRI { op: AluOp::Add, dst: Reg::RBX, imm: 8 })) {
        return None;
    }
    if !matches!(code.inst(i + 4), Some(Inst::Store { mem, src: Reg::RBX }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 5), Some(Inst::CmpMem { reg: Reg::R10, mem }) if *mem == MemOperand::base_disp(Reg::RSP, 0))
    {
        return None;
    }
    if !code.jcc_lands_at(i + 6, CondCode::E, i + 8) {
        return None;
    }
    if !is_abort(code.inst(i + 7), abort_codes::CFI_RETURN) {
        return None;
    }
    if !matches!(code.inst(i + 8), Some(Inst::Ret)) {
        return None;
    }
    if !code.contiguous(i, i + 8) {
        return None;
    }
    Some(Instance {
        kind: TemplateKind::Epilogue,
        start_idx: i,
        end_idx: i + 8,
        subject_idx: Some(i + 8),
    })
}

/// Tries to match the P6 AEX check at index `i` (19 instructions).
#[must_use]
pub fn match_aex_check(code: &Code<'_>, i: usize) -> Option<Instance> {
    if !is_movri(code.inst(i), Reg::R11, PH_SSA_MARKER) {
        return None;
    }
    if !matches!(code.inst(i + 1), Some(Inst::Load { dst: Reg::R10, mem }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !matches!(
        code.inst(i + 2),
        Some(Inst::CmpRI { lhs: Reg::R10, imm }) if *imm == SSA_MARKER_VALUE as i64
    ) {
        return None;
    }
    // Fast path jumps past the whole AEX path, landing right after the
    // re-arm store at i+19.
    if !code.jcc_lands_after(i + 3, CondCode::E, i + 19) {
        return None;
    }
    if !matches!(code.inst(i + 4), Some(Inst::Push { reg: Reg::RAX })) {
        return None;
    }
    if !matches!(code.inst(i + 5), Some(Inst::AexProbe)) {
        return None;
    }
    if !matches!(code.inst(i + 6), Some(Inst::CmpRI { lhs: Reg::RAX, imm: 0 })) {
        return None;
    }
    if !matches!(code.inst(i + 7), Some(Inst::Pop { reg: Reg::RAX })) {
        return None;
    }
    if !code.jcc_lands_at(i + 8, CondCode::Ne, i + 10) {
        return None;
    }
    if !is_abort(code.inst(i + 9), abort_codes::AEX) {
        return None;
    }
    if !is_movri(code.inst(i + 10), Reg::R11, PH_AEX_SLOT) {
        return None;
    }
    if !matches!(code.inst(i + 11), Some(Inst::Load { dst: Reg::R10, mem }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !matches!(code.inst(i + 12), Some(Inst::AluRI { op: AluOp::Add, dst: Reg::R10, imm: 1 })) {
        return None;
    }
    if !matches!(code.inst(i + 13), Some(Inst::Store { mem, src: Reg::R10 }) if *mem == MemOperand::base_disp(Reg::R11, 0))
    {
        return None;
    }
    if !is_movri(code.inst(i + 14), Reg::R11, PH_AEX_MAX) {
        return None;
    }
    if !matches!(code.inst(i + 15), Some(Inst::CmpRR { lhs: Reg::R10, rhs: Reg::R11 })) {
        return None;
    }
    if !code.jcc_lands_at(i + 16, CondCode::B, i + 18) {
        return None;
    }
    if !is_abort(code.inst(i + 17), abort_codes::AEX) {
        return None;
    }
    if !is_movri(code.inst(i + 18), Reg::R11, PH_SSA_MARKER) {
        return None;
    }
    // The re-arm store completes the template.
    if !matches!(
        code.inst(i + 19),
        Some(Inst::StoreImm { mem, imm }) if *mem == MemOperand::base_disp(Reg::R11, 0)
            && *imm == SSA_MARKER_VALUE
    ) {
        return None;
    }
    if !code.contiguous(i, i + 19) {
        return None;
    }
    Some(Instance {
        kind: TemplateKind::AexCheck,
        start_idx: i,
        end_idx: i + 19,
        subject_idx: None,
    })
}

/// Attempts all templates at index `i`, in signature-disambiguated order.
#[must_use]
pub fn match_any(code: &Code<'_>, i: usize) -> Option<Instance> {
    match_store_guard(code, i)
        .or_else(|| match_rsp_guard(code, i))
        .or_else(|| match_cfi_checked(code, i))
        .or_else(|| match_cfi_unchecked(code, i))
        .or_else(|| match_aex_check(code, i))
        .or_else(|| match_epilogue(code, i))
        .or_else(|| match_prologue(code, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflection_isa::disassemble;
    use deflection_lang::asm::assemble;
    use deflection_lang::mir::MirProgram;

    /// Assembles one function and returns the ordered instruction list.
    fn roundtrip(f: MFunction, ibt: &[usize]) -> Vec<(usize, Inst, usize)> {
        let p = MirProgram {
            entry: f.name.clone(),
            functions: vec![f],
            data: vec![],
            indirect_targets: vec![],
        };
        let obj = assemble(&p).unwrap();
        let d = disassemble(&obj.text, 0, ibt).unwrap();
        d.insts().to_vec()
    }

    #[test]
    fn store_guard_roundtrip() {
        let mut f = MFunction::new("t");
        let mem = MemOperand::base_index(Reg::RCX, Reg::RDX, 8, 16);
        emit_store_guard(&mut f, &mem);
        f.real(Inst::Store { mem, src: Reg::RSI });
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let m = match_store_guard(&code, 0).expect("emitted guard must match");
        assert_eq!(m.end_idx, 13);
        assert_eq!(m.subject_idx, Some(13));
        assert_eq!(match_any(&code, 0).unwrap().kind, TemplateKind::StoreGuard);
    }

    #[test]
    fn store_guard_wrong_operand_rejected() {
        // Guard checks [rcx] but the store writes [rdx] — classic evasion.
        let mut f = MFunction::new("t");
        emit_store_guard(&mut f, &MemOperand::base_disp(Reg::RCX, 0));
        f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RDX, 0), src: Reg::RSI });
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        assert!(match_store_guard(&code, 0).is_none());
    }

    #[test]
    fn rsp_guard_roundtrip() {
        let mut f = MFunction::new("t");
        emit_rsp_guard(&mut f);
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let m = match_rsp_guard(&code, 0).expect("must match");
        assert_eq!(m.end_idx, 7);
        assert_eq!(match_any(&code, 0).unwrap().kind, TemplateKind::RspGuard);
    }

    #[test]
    fn cfi_checked_roundtrip() {
        let mut f = MFunction::new("t");
        emit_cfi_branch(&mut f, Reg::R10, true, true);
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let m = match_cfi_checked(&code, 0).expect("must match");
        assert_eq!(m.subject_idx, Some(6));
        assert!(matches!(code.inst(6), Some(Inst::CallInd { reg: Reg::R10 })));
    }

    #[test]
    fn cfi_unchecked_roundtrip() {
        let mut f = MFunction::new("t");
        emit_cfi_branch(&mut f, Reg::R10, false, false);
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let m = match_cfi_unchecked(&code, 0).expect("must match");
        assert_eq!(m.subject_idx, Some(2));
        assert!(matches!(code.inst(2), Some(Inst::JmpInd { reg: Reg::R10 })));
        assert_eq!(match_any(&code, 0).unwrap().kind, TemplateKind::CfiUnchecked);
    }

    #[test]
    fn prologue_epilogue_roundtrip() {
        let mut f = MFunction::new("t");
        emit_prologue(&mut f);
        emit_epilogue_and_ret(&mut f);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let p = match_prologue(&code, 0).expect("prologue must match");
        assert_eq!(p.end_idx, 5);
        let e = match_epilogue(&code, 6).expect("epilogue must match");
        assert_eq!(e.subject_idx, Some(14));
        assert!(matches!(code.inst(14), Some(Inst::Ret)));
        // match_any disambiguates the shared PH_SS_SLOT signature.
        assert_eq!(match_any(&code, 0).unwrap().kind, TemplateKind::Prologue);
        assert_eq!(match_any(&code, 6).unwrap().kind, TemplateKind::Epilogue);
    }

    #[test]
    fn aex_check_roundtrip() {
        let mut f = MFunction::new("t");
        emit_aex_check(&mut f);
        f.real(Inst::Halt);
        let insts = roundtrip(f, &[]);
        let code = Code { insts: &insts };
        let m = match_aex_check(&code, 0).expect("must match");
        assert_eq!(m.end_idx, 19);
        assert_eq!(match_any(&code, 0).unwrap().kind, TemplateKind::AexCheck);
        // The instruction after the template is the halt.
        assert!(matches!(code.inst(20), Some(Inst::Halt)));
    }

    #[test]
    #[should_panic(expected = "rsp-relative")]
    fn store_guard_refuses_rsp_operands() {
        let mut f = MFunction::new("t");
        emit_store_guard(&mut f, &MemOperand::base_disp(Reg::RSP, 8));
    }

    #[test]
    fn tampered_placeholder_rejected() {
        let mut f = MFunction::new("t");
        emit_rsp_guard(&mut f);
        f.real(Inst::Halt);
        let p = MirProgram {
            entry: "t".into(),
            functions: vec![f],
            data: vec![],
            indirect_targets: vec![],
        };
        let mut obj = assemble(&p).unwrap();
        // Flip one byte of the PH_STACK_LO immediate (starts at offset 2).
        obj.text[4] ^= 1;
        let d = disassemble(&obj.text, 0, &[]).unwrap();
        let insts: Vec<_> = d.insts().to_vec();
        let code = Code { insts: &insts };
        assert!(match_rsp_guard(&code, 0).is_none());
    }
}
