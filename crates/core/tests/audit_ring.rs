//! Attested audit log, end to end: the ring records policy-relevant events
//! across installs and runs, wraps while keeping the newest events behind a
//! monotonic gap marker, and leaves the enclave only as a fixed-size record
//! sealed on the worker's nonce channel — so every tampered, truncated,
//! replayed or over-budget export fails closed.

use deflection_core::audit::{
    open_audit_export, AuditKind, AuditOpenError, AUDIT_CAPACITY, AUDIT_EXPORT_LEN,
};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::produce;
use deflection_core::runtime::{BootstrapEnclave, EcallError};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};

const FUEL: u64 = 10_000_000;
const OWNER_KEY: [u8; 32] = [0xA7; 32];

const SENDER: &str = "
    fn main() -> int {
        var n: int = input_len();
        var s: int = 0;
        var i: int = 0;
        while (i < n) { s = s + input_byte(i); i = i + 1; }
        output_byte(0, s & 0xFF);
        send(1);
        return s;
    }
";

fn manifest() -> Manifest {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    manifest
}

fn enclave_with(manifest: Manifest) -> (BootstrapEnclave, Vec<u8>) {
    let binary = produce(SENDER, &manifest.policy).unwrap().serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session(OWNER_KEY);
    (enclave, binary)
}

#[test]
fn honest_run_export_roundtrips_with_install_first() {
    let (mut enclave, binary) = enclave_with(manifest());
    enclave.install_plain(&binary).unwrap();
    enclave.provide_input(&[1, 2, 3]).unwrap();
    let report = enclave.run(FUEL).unwrap();
    let sealed = enclave.ecall_export_audit().unwrap();
    // The export rides the same nonce channel as the run's sealed records:
    // channel 0, counter = number of records already sent.
    let log = open_audit_export(&OWNER_KEY, 0, report.records.len() as u64, &sealed).unwrap();
    assert_eq!(log.dropped(), 0);
    assert_eq!(log.events[0].kind, AuditKind::Install);
    assert_eq!(log.events[0].seq, 0);
    assert_eq!(log.next_seq, log.events.len() as u64);
}

#[test]
fn wraparound_keeps_newest_events_behind_a_gap_marker() {
    let (mut enclave, binary) = enclave_with(manifest());
    // Every adopt records one Install event; replayed installs skip the
    // consumer pipeline, so overflowing the ring is cheap.
    let prepared = enclave.install_capture(&binary).unwrap();
    let total = AUDIT_CAPACITY as u64 + 7;
    for _ in 1..total {
        enclave.install_replayed(&prepared).unwrap();
    }
    let sealed = enclave.ecall_export_audit().unwrap();
    let log = open_audit_export(&OWNER_KEY, 0, 0, &sealed).unwrap();
    assert_eq!(log.next_seq, total);
    assert_eq!(log.events.len(), AUDIT_CAPACITY);
    assert_eq!(log.dropped(), total - AUDIT_CAPACITY as u64, "gap marker counts the overwritten");
    // The survivors are exactly the newest events, contiguous up to next_seq.
    assert_eq!(log.events.first().unwrap().seq, log.dropped());
    assert_eq!(log.events.last().unwrap().seq, total - 1);
    assert!(log.events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
}

#[test]
fn every_bitflip_and_truncation_of_the_sealed_export_is_rejected() {
    let (mut enclave, binary) = enclave_with(manifest());
    enclave.install_plain(&binary).unwrap();
    let sealed = enclave.ecall_export_audit().unwrap();
    assert!(open_audit_export(&OWNER_KEY, 0, 0, &sealed).is_ok());
    // A flipped bit anywhere — header, ciphertext or MAC — must fail the
    // authenticated open; nothing about the log may be recoverable.
    for pos in 0..sealed.len() {
        let mut bad = sealed.clone();
        bad[pos] ^= 1;
        let err = open_audit_export(&OWNER_KEY, 0, 0, &bad).unwrap_err();
        assert!(matches!(err, AuditOpenError::Sealed(_)), "byte {pos}: unexpected {err:?}");
    }
    for cut in [0, 1, sealed.len() / 2, sealed.len() - 1] {
        let err = open_audit_export(&OWNER_KEY, 0, 0, &sealed[..cut]).unwrap_err();
        assert!(matches!(err, AuditOpenError::Sealed(_)), "cut {cut}: unexpected {err:?}");
    }
}

#[test]
fn cross_channel_and_cross_counter_replay_is_rejected() {
    let (mut enclave, binary) = enclave_with(manifest());
    // A pool slot exports on its own channel; replaying the blob into any
    // other (channel, counter) slot — or under another key — must fail.
    enclave.set_channel(3);
    enclave.install_plain(&binary).unwrap();
    let sealed = enclave.ecall_export_audit().unwrap();
    assert!(open_audit_export(&OWNER_KEY, 3, 0, &sealed).is_ok());
    for wrong_channel in [0, 2, 4] {
        assert!(matches!(
            open_audit_export(&OWNER_KEY, wrong_channel, 0, &sealed),
            Err(AuditOpenError::Sealed(_))
        ));
    }
    assert!(matches!(open_audit_export(&OWNER_KEY, 3, 1, &sealed), Err(AuditOpenError::Sealed(_))));
    assert!(matches!(
        open_audit_export(&[0xFF; 32], 3, 0, &sealed),
        Err(AuditOpenError::Sealed(_))
    ));
}

#[test]
fn export_fails_closed_when_the_run_budget_cannot_absorb_it() {
    let mut manifest = manifest();
    manifest.output_budget = AUDIT_EXPORT_LEN - 1;
    let (mut enclave, binary) = enclave_with(manifest);
    enclave.install_plain(&binary).unwrap();
    assert!(matches!(enclave.ecall_export_audit(), Err(EcallError::AuditBudget)));
}

#[test]
fn export_fails_closed_when_the_lifetime_budget_is_exhausted() {
    let mut manifest = manifest();
    manifest.lifetime_output_budget = Some(AUDIT_EXPORT_LEN as u64 + 1);
    let (mut enclave, binary) = enclave_with(manifest);
    enclave.install_plain(&binary).unwrap();
    // The first export fits the lifetime ledger; the second would cross it
    // and must be refused without sealing anything.
    let first = enclave.ecall_export_audit().unwrap();
    assert!(open_audit_export(&OWNER_KEY, 0, 0, &first).is_ok());
    let seq_before_refusal = enclave.audit_next_seq();
    assert!(matches!(enclave.ecall_export_audit(), Err(EcallError::AuditBudget)));
    assert_eq!(enclave.lifetime_sent_bytes(), AUDIT_EXPORT_LEN as u64, "refusal sealed nothing");
    // The refusal itself is a policy-relevant event: it lands in the ring
    // even though this ring can no longer be exported from this instance.
    assert_eq!(enclave.audit_next_seq(), seq_before_refusal + 1);
}

#[test]
fn budget_refusals_are_recorded_as_audit_events() {
    use deflection_sgx_sim::vm::RunExit;
    let mut manifest = manifest();
    manifest.output_budget = 0; // every send is refused
    let (mut enclave, binary) = enclave_with(manifest);
    enclave.install_plain(&binary).unwrap();
    enclave.provide_input(&[5]).unwrap();
    let report = enclave.run(FUEL).unwrap();
    // The refused send faults the run; the ring now holds the install, the
    // budget exhaustion and the guard trip from the faulted run.
    assert!(matches!(report.exit, RunExit::Fault(_)));
    assert!(enclave.audit_next_seq() >= 3);
}

#[test]
fn resumed_sequence_survives_a_respawn() {
    // What the pool's quarantine/respawn path does: a fresh instance
    // adopts the dead worker's next sequence number as a floor, so the
    // owner's view of the slot's log stays monotonic across respawns.
    let (mut first, binary) = enclave_with(manifest());
    first.install_plain(&binary).unwrap();
    let carried = first.audit_next_seq();
    assert!(carried > 0);
    let (mut respawned, _) = enclave_with(manifest());
    respawned.resume_audit_seq(carried);
    assert_eq!(respawned.audit_next_seq(), carried);
    // Resuming backwards is a no-op: the floor never rewinds the counter.
    respawned.resume_audit_seq(0);
    assert_eq!(respawned.audit_next_seq(), carried);
    respawned.install_plain(&binary).unwrap();
    let sealed = respawned.ecall_export_audit().unwrap();
    let log = open_audit_export(&OWNER_KEY, 0, 0, &sealed).unwrap();
    assert_eq!(log.events.first().unwrap().seq, carried, "post-respawn events continue the seq");
    assert_eq!(log.dropped(), carried, "pre-respawn events read as a gap, never as seq reuse");
}
