//! Adversarial edge cases surfaced by design review — each probes one
//! specific boundary of the verifier's rule set.

use deflection_core::consumer::verifier::{verify, VerifyError};
use deflection_core::policy::PolicySet;
use deflection_core::producer::produce_from_mir;
use deflection_isa::{Inst, MemOperand, Reg};
use deflection_lang::mir::{MFunction, MInst, MirProgram};

fn program_of(functions: Vec<MFunction>, ibt: Vec<String>) -> MirProgram {
    MirProgram { entry: functions[0].name.clone(), functions, data: vec![], indirect_targets: ibt }
}

fn verify_full(obj: &deflection_obj::ObjectFile, policy: &PolicySet) -> Result<(), VerifyError> {
    let entry = obj.symbol(&obj.entry_symbol).unwrap().offset as usize;
    let ibt: Vec<usize> =
        obj.indirect_branch_table.iter().map(|n| obj.symbol(n).unwrap().offset as usize).collect();
    verify(&obj.text, entry, &ibt, policy).map(|_| ())
}

#[test]
fn ibt_entry_pointing_into_annotation_rejected() {
    // A malicious proof list naming a symbol placed inside a store guard
    // would let indirect jumps skip the bounds check.
    let mut f = MFunction::new("__start");
    deflection_core::annotations::emit_store_guard(&mut f, &MemOperand::base_disp(Reg::RCX, 0));
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RCX, 0), src: Reg::RAX });
    f.real(Inst::Halt);
    let mir = program_of(vec![f], vec![]);
    let mut obj = produce_from_mir(&mir, &PolicySet::none()).unwrap();
    // Forge a symbol into the middle of the guard (after the first push,
    // offset 2 within __start) and list it as an indirect target.
    obj.symbols.push(deflection_obj::Symbol {
        name: "evil".into(),
        section: deflection_obj::SectionId::Text,
        offset: 2,
        kind: deflection_obj::SymbolKind::Func,
    });
    obj.indirect_branch_table.push("evil".into());
    let err = verify_full(&obj, &PolicySet::p1()).unwrap_err();
    assert!(matches!(err, VerifyError::IndirectTargetIntoAnnotation { .. }), "{err:?}");
}

#[test]
fn abort_and_probe_in_program_code_are_harmless_and_allowed() {
    // Raw `abort` / `aexprobe` in program position cannot leak anything;
    // the verifier must not reject them (self-sabotage is permitted).
    let mut f = MFunction::new("__start");
    f.real(Inst::AexProbe);
    f.real(Inst::CmpRI { lhs: Reg::RAX, imm: 1 });
    f.real(Inst::Abort { code: 99 });
    let obj = produce_from_mir(&program_of(vec![f], vec![]), &PolicySet::none()).unwrap();
    verify_full(&obj, &PolicySet::p1()).expect("self-aborting code is safe");
}

#[test]
fn lea_of_rsp_requires_p2_guard() {
    // `lea rsp, [...]` is an explicit rsp write and must carry the guard.
    let mut f = MFunction::new("__start");
    f.real(Inst::Lea { dst: Reg::RSP, mem: MemOperand::base_disp(Reg::RAX, 64) });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(vec![f], vec![]), &PolicySet::none()).unwrap();
    let err = verify_full(&obj, &PolicySet::p1_p2()).unwrap_err();
    assert!(matches!(err, VerifyError::UnguardedRspWrite { .. }), "{err:?}");
    // The honest producer guards it automatically.
    let mut g = MFunction::new("__start");
    g.real(Inst::Lea { dst: Reg::RSP, mem: MemOperand::base_disp(Reg::RAX, 64) });
    g.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(vec![g], vec![]), &PolicySet::p1_p2()).unwrap();
    verify_full(&obj, &PolicySet::p1_p2()).expect("guarded rsp lea verifies");
}

#[test]
fn pop_rsp_requires_p2_guard() {
    let mut f = MFunction::new("__start");
    f.real(Inst::Push { reg: Reg::RAX });
    f.real(Inst::Pop { reg: Reg::RSP });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(vec![f], vec![]), &PolicySet::none()).unwrap();
    assert!(matches!(
        verify_full(&obj, &PolicySet::p1_p2()),
        Err(VerifyError::UnguardedRspWrite { .. })
    ));
}

#[test]
fn store_through_rsp_is_never_exemptable() {
    // `mov [rsp - 8], rax` cannot be guarded (the guard's pushes shift rsp)
    // nor exempted (exemption is rbp-only) — the verifier must reject it
    // under P1 however it is wrapped.
    let mut f = MFunction::new("__start");
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RSP, -8), src: Reg::RAX });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(vec![f], vec![]), &PolicySet::none()).unwrap();
    assert!(matches!(verify_full(&obj, &PolicySet::p1()), Err(VerifyError::UnguardedStore { .. })));
}

#[test]
fn entry_listed_in_ibt_does_not_bypass_prologue_rule_for_others() {
    // Listing the entry itself in the proof list is legal (it has no
    // prologue), but other listed functions still need theirs.
    let mut f = MFunction::new("__start");
    f.real(Inst::Halt);
    let mut victim = MFunction::new("victim");
    victim.push(MInst::Ret);
    let mir = program_of(vec![f, victim], vec!["victim".into()]);
    let obj = produce_from_mir(&mir, &PolicySet::none()).unwrap();
    assert!(matches!(
        verify_full(&obj, &PolicySet::p1_p5()),
        Err(VerifyError::MissingPrologue { .. } | VerifyError::MissingEpilogue { .. })
    ));
}
