//! Sealed install cache across pool restarts: a pool that verified a
//! binary once exports the prepared image under the enclave sealing key, a
//! freshly constructed pool imports it with zero re-verifications, and
//! every tampered or mismatched import is rejected.

use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::pool::EnclavePool;
use deflection_core::producer::produce;
use deflection_core::runtime::EcallError;
use deflection_core::sealed::UnsealError;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::vm::RunExit;

const FUEL: u64 = 10_000_000;

const ECHO_SUM: &str = "
    fn main() -> int {
        var n: int = input_len();
        var s: int = 0;
        var i: int = 0;
        while (i < n) { s = s + input_byte(i); i = i + 1; }
        return s;
    }
";

fn manifest() -> Manifest {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    manifest
}

/// A pool that installed (and therefore verified) the echo binary, plus
/// the sealed blob it exports.
fn sealed_from_first_pool() -> (Vec<u8>, [u8; 32]) {
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &manifest, 4);
    let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
    pool.set_owner_session([1; 32]);
    let hash = pool.install_all(&binary).unwrap();
    assert_eq!(pool.verification_count(), 1);
    (pool.export_sealed().expect("an image is active"), hash)
}

#[test]
fn restarted_pool_serves_from_sealed_cache_with_zero_verifications() {
    let (blob, hash) = sealed_from_first_pool();
    // "Restart": a brand-new pool over the same layout and manifest.
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &manifest, 4);
    pool.set_owner_session([1; 32]);
    assert_eq!(pool.import_sealed(&blob).unwrap(), hash);
    assert_eq!(pool.verification_count(), 0, "sealed import never verifies");
    // The rebuilt image serves correctly on every worker.
    let batch: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, i + 1]).collect();
    let reports = pool.serve_parallel(&batch, FUEL).unwrap();
    for (req, report) in batch.iter().zip(&reports) {
        let expected: u64 = req.iter().map(|&b| u64::from(b)).sum();
        assert_eq!(report.exit, RunExit::Halted { exit: expected });
    }
    // Respawns after the import also come from the imported cache.
    pool.chaos_kill_after(0, 0);
    assert_eq!(pool.serve_on(0, b"\x05", FUEL).unwrap().exit.exit_value(), Some(5));
    assert_eq!(pool.verification_count(), 0);
}

#[test]
fn export_before_install_is_none() {
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let pool = EnclavePool::new(&layout, &manifest, 1);
    assert!(pool.export_sealed().is_none());
}

#[test]
fn bit_flipped_seal_is_rejected() {
    let (blob, _) = sealed_from_first_pool();
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &manifest, 2);
    // Flip a bit in the sealed payload and in the MAC itself: both must
    // fail the MAC check, and nothing gets installed.
    for pos in [blob.len() / 2, blob.len() - 1] {
        let mut bad = blob.clone();
        bad[pos] ^= 1;
        let err = pool.import_sealed(&bad).unwrap_err();
        assert!(
            matches!(err, EcallError::Unseal(UnsealError::BadMac)),
            "byte {pos}: unexpected {err:?}"
        );
    }
    assert_eq!(pool.verification_count(), 0);
    assert!(matches!(pool.serve_on(0, b"", FUEL), Err(EcallError::NotInstalled)));
}

#[test]
fn wrong_measurement_import_is_rejected() {
    let (blob, _) = sealed_from_first_pool();
    // A pool over a different layout has a different measurement and must
    // not accept the blob (it could not derive the sealing key on real
    // hardware).
    let manifest = manifest();
    let other = EnclaveLayout::new(MemConfig::paper());
    let mut pool = EnclavePool::new(&other, &manifest, 2);
    let err = pool.import_sealed(&blob).unwrap_err();
    assert!(matches!(err, EcallError::Unseal(UnsealError::WrongMeasurement)), "{err:?}");
}

#[test]
fn wrong_manifest_import_is_rejected() {
    let (blob, _) = sealed_from_first_pool();
    let mut other = manifest();
    other.output_budget += 1;
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &other, 2);
    let err = pool.import_sealed(&blob).unwrap_err();
    assert!(matches!(err, EcallError::Unseal(UnsealError::WrongManifest)), "{err:?}");
}

#[test]
fn malformed_blobs_are_rejected() {
    let (blob, _) = sealed_from_first_pool();
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &manifest, 1);
    for bad in [&b"garbage"[..], &blob[..blob.len() - 1], &[]] {
        let err = pool.import_sealed(bad).unwrap_err();
        assert!(matches!(err, EcallError::Unseal(UnsealError::Malformed)), "{err:?}");
    }
}
