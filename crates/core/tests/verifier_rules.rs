//! Focused integration tests for individual verifier rules, exercised with
//! hand-crafted machine IR (the granularity the unit tests inside the
//! crate cannot reach without duplicating the attack corpus).

use deflection_core::annotations::{self, FRAME_STORE_LIMIT};
use deflection_core::consumer::verifier::{verify, VerifyError};
use deflection_core::policy::PolicySet;
use deflection_core::producer::produce_from_mir;
use deflection_isa::{Inst, MemOperand, Reg};
use deflection_lang::mir::{MFunction, MInst, MirProgram};

fn program_of(f: MFunction) -> MirProgram {
    MirProgram { entry: f.name.clone(), functions: vec![f], data: vec![], indirect_targets: vec![] }
}

fn verify_obj(obj: &deflection_obj::ObjectFile, policy: &PolicySet) -> Result<(), VerifyError> {
    let entry = obj.symbol(&obj.entry_symbol).unwrap().offset as usize;
    let ibt: Vec<usize> =
        obj.indirect_branch_table.iter().map(|n| obj.symbol(n).unwrap().offset as usize).collect();
    verify(&obj.text, entry, &ibt, policy).map(|_| ())
}

#[test]
fn frame_stores_within_limit_need_no_guard() {
    let mut f = MFunction::new("__start");
    f.real(Inst::Push { reg: Reg::RBP });
    f.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    f.real(Inst::Store {
        mem: MemOperand::base_disp(Reg::RBP, -(FRAME_STORE_LIMIT as i32)),
        src: Reg::RAX,
    });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    verify_obj(&obj, &PolicySet::p1()).expect("frame stores are exempt");
}

#[test]
fn frame_store_past_limit_requires_guard() {
    let mut f = MFunction::new("__start");
    f.real(Inst::Push { reg: Reg::RBP });
    f.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    f.real(Inst::Store {
        mem: MemOperand::base_disp(Reg::RBP, -(FRAME_STORE_LIMIT as i32) - 8),
        src: Reg::RAX,
    });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    assert!(matches!(verify_obj(&obj, &PolicySet::p1()), Err(VerifyError::UnguardedStore { .. })));
}

#[test]
fn positive_rbp_displacement_requires_guard() {
    // [rbp + 8] is the return address — not frame-local, must be guarded.
    let mut f = MFunction::new("__start");
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, 8), src: Reg::RAX });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    assert!(matches!(verify_obj(&obj, &PolicySet::p1()), Err(VerifyError::UnguardedStore { .. })));
}

#[test]
fn indexed_rbp_store_requires_guard() {
    let mut f = MFunction::new("__start");
    f.real(Inst::Store { mem: MemOperand::base_index(Reg::RBP, Reg::RAX, 8, -64), src: Reg::RBX });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    assert!(matches!(verify_obj(&obj, &PolicySet::p1()), Err(VerifyError::UnguardedStore { .. })));
}

#[test]
fn rbp_write_outside_frame_idiom_rejected() {
    for bad in [
        Inst::MovRI { dst: Reg::RBP, imm: 0x100 },
        Inst::MovRR { dst: Reg::RBP, src: Reg::RAX },
        Inst::AluRI { op: deflection_isa::AluOp::Add, dst: Reg::RBP, imm: 64 },
        Inst::Load { dst: Reg::RBP, mem: MemOperand::abs(0x2000_0000) },
    ] {
        let mut f = MFunction::new("__start");
        f.real(bad);
        f.real(Inst::Halt);
        let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
        assert!(
            matches!(verify_obj(&obj, &PolicySet::p1()), Err(VerifyError::IllegalRbpWrite { .. })),
            "{bad:?} must be rejected"
        );
    }
}

#[test]
fn frame_idiom_writes_accepted() {
    let mut f = MFunction::new("__start");
    f.real(Inst::Push { reg: Reg::RBP });
    f.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    f.real(Inst::Pop { reg: Reg::RBP });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    verify_obj(&obj, &PolicySet::p1()).expect("frame idiom is legal");
}

#[test]
fn rbp_discipline_not_enforced_without_store_bounds() {
    // With no store policy there is no exemption to protect.
    let mut f = MFunction::new("__start");
    f.real(Inst::MovRI { dst: Reg::RBP, imm: 0x100 });
    f.real(Inst::Halt);
    let obj = produce_from_mir(&program_of(f), &PolicySet::none()).unwrap();
    verify_obj(&obj, &PolicySet::none()).expect("no policy, no rule");
}

#[test]
fn exemption_predicate_boundaries() {
    let exempt = MemOperand::base_disp(Reg::RBP, -1);
    assert!(annotations::is_exempt_frame_store(&exempt));
    let at_limit = MemOperand::base_disp(Reg::RBP, -(FRAME_STORE_LIMIT as i32));
    assert!(annotations::is_exempt_frame_store(&at_limit));
    let past = MemOperand::base_disp(Reg::RBP, -(FRAME_STORE_LIMIT as i32) - 1);
    assert!(!annotations::is_exempt_frame_store(&past));
    let zero = MemOperand::base_disp(Reg::RBP, 0);
    assert!(!annotations::is_exempt_frame_store(&zero));
    let other_base = MemOperand::base_disp(Reg::RBX, -8);
    assert!(!annotations::is_exempt_frame_store(&other_base));
}

#[test]
fn guarded_and_exempt_stores_mix_in_one_binary() {
    // A function with both kinds: frame spill (exempt) and a global write
    // (guarded).  The producer must guard only the latter and the verifier
    // must accept the mix.
    let mut f = MFunction::new("__start");
    f.real(Inst::Push { reg: Reg::RBP });
    f.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -16), src: Reg::RAX });
    f.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "g".into(), addend: 0 });
    f.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    f.real(Inst::Halt);
    let mut mir = program_of(f);
    mir.data.push(deflection_lang::mir::DataDef { name: "g".into(), size: 8, init: None });
    let obj = produce_from_mir(&mir, &PolicySet::p1()).unwrap();
    verify_obj(&obj, &PolicySet::p1()).expect("mixed binary verifies");
    // Exactly one store guard was emitted (for the global write).
    let entry = obj.symbol("__start").unwrap().offset as usize;
    let v = verify(&obj.text, entry, &[], &PolicySet::p1()).unwrap();
    let guards = v
        .instances
        .iter()
        .filter(|i| i.kind == deflection_core::annotations::TemplateKind::StoreGuard)
        .count();
    assert_eq!(guards, 1);
}
