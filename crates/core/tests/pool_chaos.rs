//! Chaos/fault-injection tests for the serving pool: workers are killed or
//! faulted mid-batch and the pool must still complete every request with
//! results identical to a serial single-worker pool, reporting what
//! happened through `PoolHealth`.

use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::pool::EnclavePool;
use deflection_core::producer::produce;
use deflection_core::runtime::EcallError;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::vm::RunExit;

const FUEL: u64 = 10_000_000;

const ECHO_SUM: &str = "
    fn main() -> int {
        var n: int = input_len();
        var s: int = 0;
        var i: int = 0;
        while (i < n) { s = s + input_byte(i); i = i + 1; }
        return s;
    }
";

fn manifest() -> Manifest {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    manifest
}

fn echo_pool(workers: usize) -> EnclavePool {
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &manifest, workers);
    let binary = produce(ECHO_SUM, &manifest.policy).unwrap().serialize();
    pool.set_owner_session([1; 32]);
    pool.install_all(&binary).unwrap();
    pool
}

fn requests(n: u8) -> Vec<Vec<u8>> {
    (0..n).map(|i| vec![i, i.wrapping_mul(3), 7]).collect()
}

/// Serial ground truth: the same batch served one-by-one on a 1-worker
/// pool. Exit values are what we compare — record ciphertexts legitimately
/// differ because each worker seals under its own monotonic counter.
fn serial_exits(batch: &[Vec<u8>]) -> Vec<RunExit> {
    let mut pool = echo_pool(1);
    batch.iter().map(|req| pool.serve_on(0, req, FUEL).unwrap().exit).collect()
}

#[test]
fn chaos_kills_mid_batch_results_identical_to_serial() {
    let batch = requests(32);
    let expected = serial_exits(&batch);
    let mut pool = echo_pool(2);
    // Each worker dies on its 3rd request. Work stealing decides how many
    // requests each worker claims, but with 32 requests over 2 workers at
    // least one worker makes 3 claims, so at least one kill always fires
    // mid-batch.
    pool.chaos_kill_after(0, 2);
    pool.chaos_kill_after(1, 2);
    let reports = pool.serve_parallel(&batch, FUEL).unwrap();
    assert_eq!(reports.len(), batch.len(), "every request completes");
    for (report, expect) in reports.iter().zip(&expected) {
        assert_eq!(report.exit, *expect);
    }
    let health = pool.health();
    let respawned = health.total_respawned();
    assert!((1..=2).contains(&respawned), "at least one kill fired, got {respawned}");
    assert_eq!(health.total_faulted(), respawned, "every kill was respawned");
    assert_eq!(health.quarantined(), 0, "respawns succeeded within budget");
    // Respawns reinstalled from the cache: still exactly one verification.
    assert_eq!(pool.verification_count(), 1);
}

#[test]
fn every_worker_killed_batch_still_completes() {
    let batch = requests(16);
    let expected = serial_exits(&batch);
    let mut pool = echo_pool(4);
    for w in 0..4 {
        pool.chaos_kill_after(w, 1);
    }
    let reports = pool.serve_parallel(&batch, FUEL).unwrap();
    for (report, expect) in reports.iter().zip(&expected) {
        assert_eq!(report.exit, *expect);
    }
    let health = pool.health();
    let respawned = health.total_respawned();
    // 16 claims over 4 workers: at least one worker reaches its 2nd
    // request and dies; every fired kill must have been healed.
    assert!((1..=4).contains(&respawned), "got {respawned}");
    assert_eq!(health.total_faulted(), respawned);
    assert_eq!(health.quarantined(), 0);
}

#[test]
fn exhausted_respawn_budget_surfaces_quarantine_error() {
    let batch = requests(4);
    let mut pool = echo_pool(1);
    pool.set_respawn_budget(0);
    pool.chaos_kill_after(0, 0);
    // The single worker dies on the first claimed request and cannot
    // respawn: that lowest request index surfaces the quarantine error.
    let err = pool.serve_parallel(&batch, FUEL).unwrap_err();
    assert_eq!(err, EcallError::WorkerQuarantined);
    assert_eq!(pool.health().quarantined(), 1);
}

#[test]
fn empty_batch_is_a_noop() {
    for workers in [1, 2, 4] {
        let mut pool = echo_pool(workers);
        let batch: Vec<Vec<u8>> = Vec::new();
        let reports = pool.serve_parallel(&batch, FUEL).unwrap();
        assert!(reports.is_empty());
        assert_eq!(pool.health().total_served(), 0);
    }
}

#[test]
fn fewer_requests_than_workers() {
    let batch = requests(2);
    let expected = serial_exits(&batch);
    let mut pool = echo_pool(8);
    let reports = pool.serve_parallel(&batch, FUEL).unwrap();
    assert_eq!(reports.len(), 2);
    for (report, expect) in reports.iter().zip(&expected) {
        assert_eq!(report.exit, *expect);
    }
    // Idle workers served nothing and nothing faulted.
    assert_eq!(pool.health().total_served(), 2);
    assert_eq!(pool.health().total_faulted(), 0);
}

#[test]
fn batch_of_all_errors_is_deterministic_across_worker_counts() {
    // No binary installed: every request fails with the same ECall error,
    // and the lowest-request-index rule makes the batch verdict
    // deterministic at every worker count.
    let batch = requests(9);
    for workers in [1, 2, 4, 8] {
        let manifest = manifest();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest, workers);
        let err = pool.serve_parallel(&batch, FUEL).unwrap_err();
        assert_eq!(err, EcallError::NotInstalled, "{workers} workers");
    }
}

#[test]
fn batch_of_all_faults_matches_serial_at_every_worker_count() {
    // `send` without an owner session faults every single request; the
    // fault report is still each request's deterministic result.
    let src = "fn main() -> int { return send(1); }";
    let manifest = manifest();
    let layout = EnclaveLayout::new(MemConfig::small());
    let binary = produce(src, &manifest.policy).unwrap().serialize();
    let batch = requests(8);
    for workers in [1, 2, 4, 8] {
        let mut pool = EnclavePool::new(&layout, &manifest, workers);
        pool.install_all(&binary).unwrap();
        let reports = pool.serve_parallel(&batch, FUEL).unwrap();
        assert_eq!(reports.len(), batch.len(), "{workers} workers");
        for report in &reports {
            assert!(matches!(report.exit, RunExit::Fault(_)), "{workers} workers");
        }
        let health = pool.health();
        assert_eq!(health.total_served(), 8, "{workers} workers");
        assert_eq!(health.total_faulted(), 8, "{workers} workers");
        // Every fault quarantined-and-respawned the slot that hit it.
        assert_eq!(health.total_respawned(), 8, "{workers} workers");
    }
}

#[test]
fn install_all_fails_closed_on_mismatched_worker() {
    let mut pool = echo_pool(4);
    // Misdeploy slot 2: a fresh enclave over a different layout, hence a
    // different measurement.
    pool.chaos_replace_worker(2, &EnclaveLayout::new(MemConfig::paper()));
    let manifest = manifest();
    let other = produce("fn main() -> int { return 7; }", &manifest.policy).unwrap().serialize();
    let err = pool.install_all(&other).unwrap_err();
    assert_eq!(err, EcallError::PreparedMismatch);
    // Fail closed: the mismatched slot is quarantined, every other worker
    // holds the *new* image uniformly.
    let health = pool.health();
    assert!(health.workers[2].quarantined);
    assert_eq!(health.quarantined(), 1);
    for w in [0usize, 1, 3] {
        assert_eq!(pool.serve_on(w, b"", FUEL).unwrap().exit.exit_value(), Some(7), "worker {w}");
    }
    // Serving on the quarantined slot respawns it over the pool's own
    // layout and reinstalls from the cache — full recovery.
    assert_eq!(pool.serve_on(2, b"", FUEL).unwrap().exit.exit_value(), Some(7));
    assert_eq!(pool.health().quarantined(), 0);
}

#[test]
fn killed_workers_under_sustained_admission_load_lose_no_verdicts() {
    use deflection_core::admission::{AdmissionConfig, AdmissionFrontend, Overloaded, Ticket};
    use deflection_core::tenant::{TenantConfig, TenantRegistry};
    use std::time::Duration;

    // Sustained load through the admission frontend while every worker is
    // chaos-killed mid-stream: every accepted request must receive exactly
    // one verdict, every shed submission exactly one typed `Overloaded`,
    // at every pool width.
    const PER_THREAD: usize = 60;
    const THREADS: usize = 3;
    for workers in [1usize, 2, 4] {
        let fe = AdmissionFrontend::new(
            AdmissionConfig {
                queue_capacity: 32,
                // A small high-water mark so sustained submission actually
                // outruns the pool and sheds fire alongside the kills.
                high_water: 8,
                batch_max: 8,
                batch_wait: Duration::from_micros(200),
            },
            TenantRegistry::new(&manifest()),
        );
        let binary = produce(ECHO_SUM, &manifest().policy).unwrap().serialize();
        let tenant = fe
            .register(TenantConfig {
                name: "sustained".to_string(),
                binary,
                manifest: manifest(),
                max_in_flight: 32,
                lifetime_output_budget: None,
            })
            .unwrap();

        let mut pool =
            EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest(), workers);
        pool.set_owner_session([1; 32]);
        // Every worker dies after its 2nd claimed request, so the
        // fault→respawn→retry machinery runs under live admission traffic.
        for w in 0..workers {
            pool.chaos_kill_after(w, 2);
        }

        let pool_ref = &mut pool;
        let fe_ref = &fe;
        let (tickets, shed_count, report) = std::thread::scope(|s| {
            let submitters: Vec<_> = (0..THREADS)
                .map(|t| {
                    s.spawn(move || {
                        let mut tickets: Vec<(usize, usize, Ticket)> = Vec::new();
                        let mut shed = 0usize;
                        for i in 0..PER_THREAD {
                            match fe_ref.submit(tenant, vec![t as u8, i as u8, 7]) {
                                Ok(ticket) => tickets.push((t, i, ticket)),
                                Err(
                                    Overloaded::QueueFull { .. }
                                    | Overloaded::TenantInFlight { .. },
                                ) => {
                                    shed += 1;
                                    // Closed-loop-ish backoff before the
                                    // next (distinct) submission.
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                Err(other) => panic!("unexpected shed reason: {other}"),
                            }
                        }
                        (tickets, shed)
                    })
                })
                .collect();
            let dispatcher = s.spawn(move || fe_ref.run_dispatcher(pool_ref, FUEL));
            let mut tickets = Vec::new();
            let mut shed_count = 0usize;
            for sub in submitters {
                let (t, shed) = sub.join().expect("submitter thread");
                tickets.extend(t);
                shed_count += shed;
            }
            fe_ref.close();
            (tickets, shed_count, dispatcher.join().expect("dispatcher thread"))
        });

        let accepted = tickets.len();
        assert_eq!(accepted + shed_count, PER_THREAD * THREADS, "{workers} workers");
        assert_eq!(report.served, accepted as u64, "{workers} workers");
        // Exactly one verdict per accepted request, and the right one:
        // the echo sum is deterministic per payload, kills or not.
        for (t, i, ticket) in tickets {
            let run = ticket.wait().unwrap_or_else(|e| {
                panic!("{workers} workers: request ({t},{i}) lost its verdict: {e:?}")
            });
            assert_eq!(run.exit.exit_value(), Some((t + i + 7) as u64), "{workers} workers");
        }
        let stats = fe.tenant_stats(tenant).unwrap();
        assert_eq!(stats.admitted, accepted as u64, "{workers} workers");
        assert_eq!(stats.completed, accepted as u64, "{workers} workers");
        assert_eq!(stats.shed, shed_count as u64, "{workers} workers");
        // The kills actually fired and every one was healed.
        let health = pool.health();
        assert!(health.total_faulted() >= 1, "{workers} workers: no chaos kill fired");
        assert_eq!(health.total_respawned(), health.total_faulted(), "{workers} workers");
        assert_eq!(health.quarantined(), 0, "{workers} workers");
    }
}

#[test]
fn output_budget_is_per_request_on_a_pool_worker() {
    // Regression: the P0 budget used to accumulate across runs, so a
    // long-lived worker spuriously faulted after budget/len requests.
    let mut manifest = manifest();
    manifest.output_budget = 450;
    let layout = EnclaveLayout::new(MemConfig::small());
    let send100 =
        produce("fn main() -> int { return send(100); }", &manifest.policy).unwrap().serialize();
    let mut pool = EnclavePool::new(&layout, &manifest, 1);
    pool.set_owner_session([1; 32]);
    pool.install_all(&send100).unwrap();
    // budget/len + 1 = 5 requests on the one worker; plus one for margin.
    for i in 0..6 {
        let report = pool.serve_on(0, b"", FUEL).unwrap();
        assert_eq!(report.exit, RunExit::Halted { exit: 100 }, "request {i}");
    }
    assert_eq!(pool.health().total_faulted(), 0);
    // With the optional lifetime cap set, the never-reset ledger bounds
    // cumulative output across runs — and survives a respawn, so a killed
    // worker cannot launder its leakage history.
    let mut capped = manifest.clone();
    capped.lifetime_output_budget = Some(250);
    let mut capped_pool = EnclavePool::new(&layout, &capped, 1);
    capped_pool.set_owner_session([1; 32]);
    capped_pool.install_all(&send100).unwrap();
    for i in 0..2 {
        let report = capped_pool.serve_on(0, b"", FUEL).unwrap();
        assert_eq!(report.exit, RunExit::Halted { exit: 100 }, "request {i}");
    }
    capped_pool.chaos_kill_after(0, 0);
    // The respawned instance inherits the 200-byte ledger: its send would
    // cross the 250-byte lifetime cap and faults, contained.
    let report = capped_pool.serve_on(0, b"", FUEL).unwrap();
    assert!(matches!(report.exit, RunExit::Fault(_)), "lifetime cap must survive the respawn");
    // Two respawns: one for the kill, one quarantining the contained fault.
    assert_eq!(capped_pool.health().workers[0].respawned, 2);
    // A single over-budget run still faults.
    let burst = "
        fn main() -> int {
            var i: int = 0;
            while (i < 5) { send(100); i = i + 1; }
            return 0;
        }
    ";
    let burst = produce(burst, &manifest.policy).unwrap().serialize();
    pool.install_all(&burst).unwrap();
    let report = pool.serve_on(0, b"", FUEL).unwrap();
    assert!(matches!(report.exit, RunExit::Fault(_)));
}
