//! # deflection-obj
//!
//! The relocatable object format DEFLECTION's code producer emits and the
//! in-enclave dynamic loader consumes, plus the out-of-enclave static linker.
//!
//! The paper splits code loading in two (Section IV-C): *linking* happens
//! outside the enclave — "our code generator assembles all the symbols of the
//! entire code (including necessary libraries and dependencies) into one
//! relocatable file via static linking ... it keeps all symbols and relocation
//! information held in relocatable entries" — while *relocation* happens
//! inside, where the loader "parses the binary to retrieve its relocation
//! tables, then updates symbol offsets, and further reloads the symbols to
//! designated addresses."
//!
//! An [`ObjectFile`] therefore carries:
//!
//! * four canonical sections (`.text`, `.rodata`, `.data`, `.bss`),
//! * a symbol table ([`Symbol`]) naming functions and objects,
//! * relocations ([`Relocation`]) — PC-relative ones are resolved at link
//!   time, absolute ones are left for the in-enclave loader,
//! * the **indirect-branch table** ([`ObjectFile::indirect_branch_table`]):
//!   the list of symbols that may legitimately be used as indirect-branch
//!   targets. This list *is* the proof accompanying the code in the
//!   PCC-inspired DEFLECTION design, and the in-enclave verifier uses it to
//!   continue recursive-descent disassembly across indirect flows.
//!
//! # Example
//!
//! ```
//! use deflection_obj::{ObjectFile, SectionId, Symbol, SymbolKind};
//!
//! let mut obj = ObjectFile::new("main");
//! obj.text = vec![0x01]; // halt
//! obj.symbols.push(Symbol {
//!     name: "main".into(),
//!     section: SectionId::Text,
//!     offset: 0,
//!     kind: SymbolKind::Func,
//! });
//! let bytes = obj.serialize();
//! let parsed = ObjectFile::parse(&bytes)?;
//! assert_eq!(parsed.entry_symbol, "main");
//! # Ok::<(), deflection_obj::ObjError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod link;

pub use format::{ObjError, MAGIC, VERSION};
pub use link::{link, LinkError};

/// Canonical section identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SectionId {
    /// Executable code (`.text`). Loaded onto RWX pages under SGXv1.
    Text = 0,
    /// Read-only data (`.rodata`). Loaded with the data image.
    Rodata = 1,
    /// Initialized writable data (`.data`).
    Data = 2,
    /// Zero-initialized writable data (`.bss`).
    Bss = 3,
}

impl SectionId {
    /// Decodes a section identifier.
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<SectionId> {
        match v {
            0 => Some(SectionId::Text),
            1 => Some(SectionId::Rodata),
            2 => Some(SectionId::Data),
            3 => Some(SectionId::Bss),
            _ => None,
        }
    }
}

/// What a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SymbolKind {
    /// A function entry point in `.text`.
    Func = 0,
    /// A data object.
    Object = 1,
}

impl SymbolKind {
    /// Decodes a symbol kind.
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<SymbolKind> {
        match v {
            0 => Some(SymbolKind::Func),
            1 => Some(SymbolKind::Object),
            _ => None,
        }
    }
}

/// A named location in a section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name, unique within a linked object.
    pub name: String,
    /// Section the symbol lives in.
    pub section: SectionId,
    /// Byte offset within the section.
    pub offset: u64,
    /// Function or data object.
    pub kind: SymbolKind,
}

/// How a relocation patches bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RelocKind {
    /// Write the absolute virtual address of `symbol + addend` into 8 bytes
    /// at the relocation site. Resolved by the *in-enclave loader* because it
    /// depends on the load base.
    Abs64 = 0,
    /// Write `(symbol + addend) - (site + 4)` into 4 bytes — a PC-relative
    /// displacement. Resolved at *link time* (relative distances are fixed
    /// once sections are concatenated).
    Rel32 = 1,
}

impl RelocKind {
    /// Decodes a relocation kind.
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<RelocKind> {
        match v {
            0 => Some(RelocKind::Abs64),
            1 => Some(RelocKind::Rel32),
            _ => None,
        }
    }
}

/// A patch the linker or loader must apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// Section containing the bytes to patch.
    pub section: SectionId,
    /// Offset of the patch site within the section.
    pub offset: u64,
    /// Target symbol name.
    pub symbol: String,
    /// Patch semantics.
    pub kind: RelocKind,
    /// Constant added to the symbol address.
    pub addend: i64,
}

/// A relocatable object file (or a fully linked relocatable program).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectFile {
    /// Name of the entry-point symbol.
    pub entry_symbol: String,
    /// Executable code bytes.
    pub text: Vec<u8>,
    /// Read-only data bytes.
    pub rodata: Vec<u8>,
    /// Initialized data bytes.
    pub data: Vec<u8>,
    /// Size of the zero-initialized region.
    pub bss_size: u64,
    /// Defined symbols.
    pub symbols: Vec<Symbol>,
    /// Pending relocations.
    pub relocations: Vec<Relocation>,
    /// Names of symbols that are legitimate indirect-branch targets — the
    /// PCC-style proof list shipped with the binary.
    pub indirect_branch_table: Vec<String>,
}

impl ObjectFile {
    /// Creates an empty object with the given entry symbol name.
    #[must_use]
    pub fn new(entry_symbol: impl Into<String>) -> Self {
        ObjectFile { entry_symbol: entry_symbol.into(), ..Default::default() }
    }

    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Returns the byte length of a section.
    #[must_use]
    pub fn section_len(&self, id: SectionId) -> u64 {
        match id {
            SectionId::Text => self.text.len() as u64,
            SectionId::Rodata => self.rodata.len() as u64,
            SectionId::Data => self.data.len() as u64,
            SectionId::Bss => self.bss_size,
        }
    }

    /// Mutable access to a byte-backed section.
    ///
    /// # Panics
    ///
    /// Panics when asked for `.bss`, which has no bytes.
    pub fn section_bytes_mut(&mut self, id: SectionId) -> &mut Vec<u8> {
        match id {
            SectionId::Text => &mut self.text,
            SectionId::Rodata => &mut self.rodata,
            SectionId::Data => &mut self.data,
            SectionId::Bss => panic!(".bss has no backing bytes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_roundtrips() {
        for v in 0..4u8 {
            assert_eq!(SectionId::from_u8(v).unwrap() as u8, v);
        }
        assert_eq!(SectionId::from_u8(4), None);
        for v in 0..2u8 {
            assert_eq!(SymbolKind::from_u8(v).unwrap() as u8, v);
            assert_eq!(RelocKind::from_u8(v).unwrap() as u8, v);
        }
        assert_eq!(SymbolKind::from_u8(2), None);
        assert_eq!(RelocKind::from_u8(2), None);
    }

    #[test]
    fn symbol_lookup() {
        let mut obj = ObjectFile::new("main");
        obj.symbols.push(Symbol {
            name: "foo".into(),
            section: SectionId::Text,
            offset: 4,
            kind: SymbolKind::Func,
        });
        assert_eq!(obj.symbol("foo").unwrap().offset, 4);
        assert!(obj.symbol("bar").is_none());
    }

    #[test]
    fn section_lengths() {
        let mut obj = ObjectFile::new("main");
        obj.text = vec![0; 10];
        obj.bss_size = 64;
        assert_eq!(obj.section_len(SectionId::Text), 10);
        assert_eq!(obj.section_len(SectionId::Bss), 64);
        assert_eq!(obj.section_len(SectionId::Data), 0);
    }
}
