//! Byte-level (de)serialization of [`ObjectFile`].
//!
//! The format is deliberately simple and strictly validated: the in-enclave
//! parser is part of the TCB, so every length is bounds-checked and every
//! enum byte verified, and parsing never panics on hostile input.

use crate::{ObjectFile, RelocKind, Relocation, SectionId, Symbol, SymbolKind};
use std::error::Error as StdError;
use std::fmt;

/// Magic bytes at the start of every object file.
pub const MAGIC: [u8; 4] = *b"DFLO";
/// Current format version.
pub const VERSION: u32 = 1;

/// Limits guarding the in-enclave parser against resource-exhaustion input.
const MAX_SECTION: usize = 256 * 1024 * 1024;
const MAX_COUNT: usize = 1 << 20;
const MAX_NAME: usize = 4096;

/// Parse failures; the loader rejects the binary on any of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObjError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// Input ended inside a field.
    Truncated,
    /// A declared length exceeded the hard parser limits.
    LimitExceeded,
    /// A name was not valid UTF-8.
    InvalidUtf8,
    /// An enum byte was out of range.
    InvalidEnum(u8),
    /// Trailing garbage followed the encoded object.
    TrailingBytes,
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::BadMagic => write!(f, "bad object magic"),
            ObjError::UnsupportedVersion(v) => write!(f, "unsupported object version {v}"),
            ObjError::Truncated => write!(f, "truncated object file"),
            ObjError::LimitExceeded => write!(f, "object field exceeds parser limits"),
            ObjError::InvalidUtf8 => write!(f, "object name is not valid utf-8"),
            ObjError::InvalidEnum(b) => write!(f, "invalid enum byte {b:#04x} in object"),
            ObjError::TrailingBytes => write!(f, "trailing bytes after object"),
        }
    }
}

impl StdError for ObjError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjError> {
        if self.pos + n > self.bytes.len() {
            return Err(ObjError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ObjError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ObjError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ObjError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ObjError> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, ObjError> {
        let len = self.u32()? as usize;
        if len > MAX_NAME {
            return Err(ObjError::LimitExceeded);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ObjError::InvalidUtf8)
    }

    fn blob(&mut self) -> Result<Vec<u8>, ObjError> {
        let len = self.u32()? as usize;
        if len > MAX_SECTION {
            return Err(ObjError::LimitExceeded);
        }
        Ok(self.take(len)?.to_vec())
    }

    fn count(&mut self) -> Result<usize, ObjError> {
        let n = self.u32()? as usize;
        if n > MAX_COUNT {
            return Err(ObjError::LimitExceeded);
        }
        Ok(n)
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

impl ObjectFile {
    /// Serializes the object to its binary representation.
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + self.text.len() + self.rodata.len() + self.data.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        write_string(&mut out, &self.entry_symbol);
        write_blob(&mut out, &self.text);
        write_blob(&mut out, &self.rodata);
        write_blob(&mut out, &self.data);
        out.extend_from_slice(&self.bss_size.to_le_bytes());
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for s in &self.symbols {
            write_string(&mut out, &s.name);
            out.push(s.section as u8);
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.push(s.kind as u8);
        }
        out.extend_from_slice(&(self.relocations.len() as u32).to_le_bytes());
        for r in &self.relocations {
            out.push(r.section as u8);
            out.extend_from_slice(&r.offset.to_le_bytes());
            write_string(&mut out, &r.symbol);
            out.push(r.kind as u8);
            out.extend_from_slice(&r.addend.to_le_bytes());
        }
        out.extend_from_slice(&(self.indirect_branch_table.len() as u32).to_le_bytes());
        for name in &self.indirect_branch_table {
            write_string(&mut out, name);
        }
        out
    }

    /// Parses an object from bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjError`] for malformed, truncated or oversized input;
    /// never panics on hostile bytes.
    pub fn parse(bytes: &[u8]) -> Result<ObjectFile, ObjError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ObjError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ObjError::UnsupportedVersion(version));
        }
        let entry_symbol = r.string()?;
        let text = r.blob()?;
        let rodata = r.blob()?;
        let data = r.blob()?;
        let bss_size = r.u64()?;
        let mut symbols = Vec::new();
        for _ in 0..r.count()? {
            let name = r.string()?;
            let sec = r.u8()?;
            let section = SectionId::from_u8(sec).ok_or(ObjError::InvalidEnum(sec))?;
            let offset = r.u64()?;
            let kind_b = r.u8()?;
            let kind = SymbolKind::from_u8(kind_b).ok_or(ObjError::InvalidEnum(kind_b))?;
            symbols.push(Symbol { name, section, offset, kind });
        }
        let mut relocations = Vec::new();
        for _ in 0..r.count()? {
            let sec = r.u8()?;
            let section = SectionId::from_u8(sec).ok_or(ObjError::InvalidEnum(sec))?;
            let offset = r.u64()?;
            let symbol = r.string()?;
            let kind_b = r.u8()?;
            let kind = RelocKind::from_u8(kind_b).ok_or(ObjError::InvalidEnum(kind_b))?;
            let addend = r.i64()?;
            relocations.push(Relocation { section, offset, symbol, kind, addend });
        }
        let mut indirect_branch_table = Vec::new();
        for _ in 0..r.count()? {
            indirect_branch_table.push(r.string()?);
        }
        if r.pos != bytes.len() {
            return Err(ObjError::TrailingBytes);
        }
        Ok(ObjectFile {
            entry_symbol,
            text,
            rodata,
            data,
            bss_size,
            symbols,
            relocations,
            indirect_branch_table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectFile {
        ObjectFile {
            entry_symbol: "main".into(),
            text: vec![1, 2, 3, 4],
            rodata: vec![9],
            data: vec![5, 6],
            bss_size: 128,
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    section: SectionId::Text,
                    offset: 0,
                    kind: SymbolKind::Func,
                },
                Symbol {
                    name: "table".into(),
                    section: SectionId::Data,
                    offset: 0,
                    kind: SymbolKind::Object,
                },
            ],
            relocations: vec![Relocation {
                section: SectionId::Text,
                offset: 2,
                symbol: "table".into(),
                kind: RelocKind::Abs64,
                addend: -8,
            }],
            indirect_branch_table: vec!["handler_a".into(), "handler_b".into()],
        }
    }

    #[test]
    fn roundtrip() {
        let obj = sample();
        let bytes = obj.serialize();
        let parsed = ObjectFile::parse(&bytes).unwrap();
        assert_eq!(parsed, obj);
    }

    #[test]
    fn empty_object_roundtrip() {
        let obj = ObjectFile::new("start");
        assert_eq!(ObjectFile::parse(&obj.serialize()).unwrap(), obj);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] = b'X';
        assert_eq!(ObjectFile::parse(&bytes), Err(ObjError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().serialize();
        bytes[4] = 0xFF;
        assert!(matches!(ObjectFile::parse(&bytes), Err(ObjError::UnsupportedVersion(_))));
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let bytes = sample().serialize();
        for cut in 0..bytes.len() {
            let res = ObjectFile::parse(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().serialize();
        bytes.push(0);
        assert_eq!(ObjectFile::parse(&bytes), Err(ObjError::TrailingBytes));
    }

    #[test]
    fn invalid_section_byte_rejected() {
        let obj = sample();
        let bytes = obj.serialize();
        // Find the symbol section byte for "main" (after its name) and corrupt it.
        let needle = b"main";
        // Second occurrence (entry symbol comes first).
        let pos = bytes
            .windows(needle.len())
            .enumerate()
            .filter(|(_, w)| *w == needle)
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        let mut corrupted = bytes.clone();
        corrupted[pos + needle.len()] = 9; // section byte follows the name
        assert!(matches!(ObjectFile::parse(&corrupted), Err(ObjError::InvalidEnum(9))));
    }

    #[test]
    fn oversized_count_rejected_without_allocation() {
        // Craft a header with a symbol count of u32::MAX.
        let mut obj = ObjectFile::new("m");
        let mut bytes = obj.serialize();
        // entry "m": magic(4)+ver(4)+len(4)+1 + text(4)+rodata(4)+data(4)+bss(8) = 33
        let count_pos = 33;
        bytes[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(ObjectFile::parse(&bytes), Err(ObjError::LimitExceeded));
        obj.bss_size = 0; // silence unused-mut lint
    }
}
