//! The out-of-enclave static linker.
//!
//! Merges the compiled program with its intrinsic library objects into one
//! relocatable file, resolving PC-relative references and keeping absolute
//! ones for the in-enclave loader (paper Section IV-C, "Code loading
//! support").

use crate::{ObjError, ObjectFile, RelocKind, Relocation, SectionId, Symbol};
use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;

/// Linking failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkError {
    /// No input objects were provided.
    NoInputs,
    /// Two inputs defined the same symbol.
    DuplicateSymbol(String),
    /// A relocation referenced an undefined symbol.
    UndefinedSymbol(String),
    /// The entry symbol is not defined in any input.
    UndefinedEntry(String),
    /// An indirect-branch-table entry names an undefined symbol.
    UndefinedIndirectTarget(String),
    /// A PC-relative relocation crossed sections (only `.text` → `.text`
    /// distances are fixed at link time).
    CrossSectionRel32(String),
    /// A relocation site exceeded its section bounds.
    RelocOutOfBounds {
        /// The offending symbol name.
        symbol: String,
    },
    /// An input object was malformed.
    Malformed(ObjError),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NoInputs => write!(f, "no input objects"),
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            LinkError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::UndefinedEntry(s) => write!(f, "undefined entry symbol `{s}`"),
            LinkError::UndefinedIndirectTarget(s) => {
                write!(f, "indirect-branch table names undefined symbol `{s}`")
            }
            LinkError::CrossSectionRel32(s) => {
                write!(f, "pc-relative relocation to non-text symbol `{s}`")
            }
            LinkError::RelocOutOfBounds { symbol } => {
                write!(f, "relocation site for `{symbol}` out of section bounds")
            }
            LinkError::Malformed(e) => write!(f, "malformed input object: {e}"),
        }
    }
}

impl StdError for LinkError {}

impl From<ObjError> for LinkError {
    fn from(e: ObjError) -> Self {
        LinkError::Malformed(e)
    }
}

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Statically links `objects` into one relocatable program.
///
/// The first object's entry symbol becomes the program entry. Sections are
/// concatenated in input order (data sections 8-byte aligned per input),
/// symbols are merged, `Rel32` relocations inside `.text` are resolved, and
/// `Abs64` relocations are retained for the in-enclave loader. The
/// indirect-branch tables are unioned.
///
/// # Errors
///
/// See [`LinkError`]; notably duplicate or undefined symbols and
/// cross-section PC-relative references are rejected.
pub fn link(objects: &[ObjectFile]) -> Result<ObjectFile, LinkError> {
    if objects.is_empty() {
        return Err(LinkError::NoInputs);
    }
    let mut out = ObjectFile::new(objects[0].entry_symbol.clone());
    let mut sym_index: HashMap<String, usize> = HashMap::new();

    for obj in objects {
        let text_base = out.text.len() as u64;
        out.text.extend_from_slice(&obj.text);

        let ro_pad = align8(out.rodata.len());
        out.rodata.resize(ro_pad, 0);
        let rodata_base = out.rodata.len() as u64;
        out.rodata.extend_from_slice(&obj.rodata);

        let d_pad = align8(out.data.len());
        out.data.resize(d_pad, 0);
        let data_base = out.data.len() as u64;
        out.data.extend_from_slice(&obj.data);

        let bss_base = align8(out.bss_size as usize) as u64;
        out.bss_size = bss_base + obj.bss_size;

        let base_of = |sec: SectionId| -> u64 {
            match sec {
                SectionId::Text => text_base,
                SectionId::Rodata => rodata_base,
                SectionId::Data => data_base,
                SectionId::Bss => bss_base,
            }
        };

        for sym in &obj.symbols {
            if sym_index.contains_key(&sym.name) {
                return Err(LinkError::DuplicateSymbol(sym.name.clone()));
            }
            sym_index.insert(sym.name.clone(), out.symbols.len());
            out.symbols.push(Symbol {
                name: sym.name.clone(),
                section: sym.section,
                offset: sym.offset + base_of(sym.section),
                kind: sym.kind,
            });
        }

        for reloc in &obj.relocations {
            out.relocations.push(Relocation {
                section: reloc.section,
                offset: reloc.offset + base_of(reloc.section),
                symbol: reloc.symbol.clone(),
                kind: reloc.kind,
                addend: reloc.addend,
            });
        }

        for name in &obj.indirect_branch_table {
            if !out.indirect_branch_table.contains(name) {
                out.indirect_branch_table.push(name.clone());
            }
        }
    }

    // Everything referenced must now be defined.
    if !sym_index.contains_key(&out.entry_symbol) {
        return Err(LinkError::UndefinedEntry(out.entry_symbol.clone()));
    }
    for name in &out.indirect_branch_table {
        if !sym_index.contains_key(name) {
            return Err(LinkError::UndefinedIndirectTarget(name.clone()));
        }
    }

    // Resolve PC-relative relocations; keep absolute ones for the loader.
    let mut remaining = Vec::new();
    for reloc in std::mem::take(&mut out.relocations) {
        let &idx = sym_index
            .get(&reloc.symbol)
            .ok_or_else(|| LinkError::UndefinedSymbol(reloc.symbol.clone()))?;
        let sym = out.symbols[idx].clone();
        match reloc.kind {
            RelocKind::Abs64 => {
                let end = reloc
                    .offset
                    .checked_add(8)
                    .ok_or(LinkError::RelocOutOfBounds { symbol: reloc.symbol.clone() })?;
                if end > out.section_len(reloc.section) || reloc.section == SectionId::Bss {
                    return Err(LinkError::RelocOutOfBounds { symbol: reloc.symbol.clone() });
                }
                remaining.push(reloc);
            }
            RelocKind::Rel32 => {
                if reloc.section != SectionId::Text || sym.section != SectionId::Text {
                    return Err(LinkError::CrossSectionRel32(reloc.symbol.clone()));
                }
                let site = reloc.offset as usize;
                if site + 4 > out.text.len() {
                    return Err(LinkError::RelocOutOfBounds { symbol: reloc.symbol.clone() });
                }
                let value = (sym.offset as i64 + reloc.addend) - (site as i64 + 4);
                let value32 = i32::try_from(value)
                    .map_err(|_| LinkError::RelocOutOfBounds { symbol: reloc.symbol.clone() })?;
                out.text[site..site + 4].copy_from_slice(&value32.to_le_bytes());
            }
        }
    }
    out.relocations = remaining;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolKind;

    fn func_obj(entry: &str, name: &str, text: Vec<u8>) -> ObjectFile {
        let mut o = ObjectFile::new(entry);
        o.symbols.push(Symbol {
            name: name.into(),
            section: SectionId::Text,
            offset: 0,
            kind: SymbolKind::Func,
        });
        o.text = text;
        o
    }

    #[test]
    fn no_inputs_rejected() {
        assert_eq!(link(&[]), Err(LinkError::NoInputs));
    }

    #[test]
    fn merges_sections_and_shifts_symbols() {
        let a = func_obj("main", "main", vec![1, 2, 3]);
        let mut b = func_obj("main", "helper", vec![4, 5]);
        b.data = vec![7; 3];
        b.symbols.push(Symbol {
            name: "glob".into(),
            section: SectionId::Data,
            offset: 1,
            kind: SymbolKind::Object,
        });
        let linked = link(&[a, b]).unwrap();
        assert_eq!(linked.text, vec![1, 2, 3, 4, 5]);
        assert_eq!(linked.symbol("helper").unwrap().offset, 3);
        assert_eq!(linked.symbol("glob").unwrap().offset, 1);
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let a = func_obj("main", "main", vec![1]);
        let b = func_obj("main", "main", vec![2]);
        assert_eq!(link(&[a, b]), Err(LinkError::DuplicateSymbol("main".into())));
    }

    #[test]
    fn undefined_entry_rejected() {
        let a = func_obj("main", "not_main", vec![1]);
        assert_eq!(link(&[a]), Err(LinkError::UndefinedEntry("main".into())));
    }

    #[test]
    fn undefined_reloc_symbol_rejected() {
        let mut a = func_obj("main", "main", vec![0; 8]);
        a.relocations.push(Relocation {
            section: SectionId::Text,
            offset: 0,
            symbol: "ghost".into(),
            kind: RelocKind::Abs64,
            addend: 0,
        });
        assert_eq!(link(&[a]), Err(LinkError::UndefinedSymbol("ghost".into())));
    }

    #[test]
    fn rel32_resolved_at_link_time() {
        // a.text: 8 bytes, site at offset 2 referencing `callee` in b.
        let mut a = func_obj("main", "main", vec![0; 8]);
        a.relocations.push(Relocation {
            section: SectionId::Text,
            offset: 2,
            symbol: "callee".into(),
            kind: RelocKind::Rel32,
            addend: 0,
        });
        let b = func_obj("main", "callee", vec![0x5E]); // ret
        let linked = link(&[a, b]).unwrap();
        // callee is at 8; displacement = 8 - (2 + 4) = 2.
        assert_eq!(&linked.text[2..6], &2i32.to_le_bytes());
        assert!(linked.relocations.is_empty());
    }

    #[test]
    fn abs64_kept_for_loader() {
        let mut a = func_obj("main", "main", vec![0; 16]);
        a.data = vec![0; 8];
        a.symbols.push(Symbol {
            name: "buf".into(),
            section: SectionId::Data,
            offset: 0,
            kind: SymbolKind::Object,
        });
        a.relocations.push(Relocation {
            section: SectionId::Text,
            offset: 4,
            symbol: "buf".into(),
            kind: RelocKind::Abs64,
            addend: 16,
        });
        let linked = link(&[a]).unwrap();
        assert_eq!(linked.relocations.len(), 1);
        assert_eq!(linked.relocations[0].addend, 16);
    }

    #[test]
    fn cross_section_rel32_rejected() {
        let mut a = func_obj("main", "main", vec![0; 8]);
        a.data = vec![0; 8];
        a.symbols.push(Symbol {
            name: "buf".into(),
            section: SectionId::Data,
            offset: 0,
            kind: SymbolKind::Object,
        });
        a.relocations.push(Relocation {
            section: SectionId::Text,
            offset: 0,
            symbol: "buf".into(),
            kind: RelocKind::Rel32,
            addend: 0,
        });
        assert_eq!(link(&[a]), Err(LinkError::CrossSectionRel32("buf".into())));
    }

    #[test]
    fn reloc_site_out_of_bounds_rejected() {
        let mut a = func_obj("main", "main", vec![0; 4]);
        a.relocations.push(Relocation {
            section: SectionId::Text,
            offset: 2, // needs 8 bytes but only 2 remain
            symbol: "main".into(),
            kind: RelocKind::Abs64,
            addend: 0,
        });
        assert!(matches!(link(&[a]), Err(LinkError::RelocOutOfBounds { .. })));
    }

    #[test]
    fn indirect_branch_tables_unioned_and_checked() {
        let mut a = func_obj("main", "main", vec![1]);
        a.indirect_branch_table.push("h1".into());
        let mut b = func_obj("main", "h1", vec![2]);
        b.indirect_branch_table.push("h1".into()); // duplicate entry collapses
        let linked = link(&[a, b]).unwrap();
        assert_eq!(linked.indirect_branch_table, vec!["h1".to_string()]);

        let mut c = func_obj("main", "main", vec![1]);
        c.indirect_branch_table.push("ghost".into());
        assert_eq!(link(&[c]), Err(LinkError::UndefinedIndirectTarget("ghost".into())));
    }

    #[test]
    fn data_sections_aligned_per_input() {
        let mut a = func_obj("main", "main", vec![1]);
        a.data = vec![1, 2, 3]; // 3 bytes, next input must start at 8
        let mut b = func_obj("main", "f2", vec![2]);
        b.data = vec![9];
        b.symbols.push(Symbol {
            name: "d2".into(),
            section: SectionId::Data,
            offset: 0,
            kind: SymbolKind::Object,
        });
        let linked = link(&[a, b]).unwrap();
        assert_eq!(linked.symbol("d2").unwrap().offset, 8);
        assert_eq!(linked.data.len(), 9);
    }
}
