//! Property-based tests of the object format: serialization round-trips
//! for arbitrary well-formed objects, and the parser never panics on
//! arbitrary bytes (it is part of the in-enclave TCB).

use deflection_obj::{ObjectFile, RelocKind, Relocation, SectionId, Symbol, SymbolKind};
use proptest::prelude::*;

fn arb_section() -> impl Strategy<Value = SectionId> {
    prop_oneof![
        Just(SectionId::Text),
        Just(SectionId::Rodata),
        Just(SectionId::Data),
        Just(SectionId::Bss),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,24}"
}

fn arb_object() -> impl Strategy<Value = ObjectFile> {
    (
        arb_name(),
        proptest::collection::vec(any::<u8>(), 0..512),
        proptest::collection::vec(any::<u8>(), 0..128),
        proptest::collection::vec(any::<u8>(), 0..128),
        0u64..4096,
        proptest::collection::vec((arb_name(), arb_section(), any::<u64>(), any::<bool>()), 0..8),
        proptest::collection::vec(
            (arb_section(), any::<u64>(), arb_name(), any::<bool>(), any::<i64>()),
            0..8,
        ),
        proptest::collection::vec(arb_name(), 0..4),
    )
        .prop_map(|(entry, text, rodata, data, bss, syms, relocs, ibt)| ObjectFile {
            entry_symbol: entry,
            text,
            rodata,
            data,
            bss_size: bss,
            symbols: syms
                .into_iter()
                .map(|(name, section, offset, is_func)| Symbol {
                    name,
                    section,
                    offset,
                    kind: if is_func { SymbolKind::Func } else { SymbolKind::Object },
                })
                .collect(),
            relocations: relocs
                .into_iter()
                .map(|(section, offset, symbol, abs, addend)| Relocation {
                    section,
                    offset,
                    symbol,
                    kind: if abs { RelocKind::Abs64 } else { RelocKind::Rel32 },
                    addend,
                })
                .collect(),
            indirect_branch_table: ibt,
        })
}

proptest! {
    #[test]
    fn serialize_parse_roundtrip(obj in arb_object()) {
        let bytes = obj.serialize();
        let parsed = ObjectFile::parse(&bytes).expect("well-formed object parses");
        prop_assert_eq!(parsed, obj);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ObjectFile::parse(&bytes); // Err is fine; panic is not.
    }

    #[test]
    fn parser_never_panics_on_bitflips(
        obj in arb_object(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..=255), 1..5),
    ) {
        let mut bytes = obj.serialize();
        for (idx, xor) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= xor;
        }
        if let Ok(parsed) = ObjectFile::parse(&bytes) {
            // A surviving parse must re-serialize to something parseable
            // (structural integrity), even if contents differ.
            let re = parsed.serialize();
            prop_assert!(ObjectFile::parse(&re).is_ok());
        }
    }
}
