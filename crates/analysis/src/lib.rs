//! Abstract interpretation over `deflection_isa` machine code.
//!
//! This crate is the proof engine behind **guard elision**
//! (`PolicySet::elide_guards`): a forward value-range analysis precise
//! enough to show that some stores can never leave the enclave's data
//! window, so their P1 bounds-check annotations are dead weight. Both
//! pipeline sides run the *identical* analysis:
//!
//! * the untrusted producer runs it to decide which guards to drop, and
//! * the in-enclave verifier re-runs it from scratch and accepts an
//!   unguarded store **only** if its own run proves the store safe —
//!   no hints or proof witnesses cross the trust boundary, exactly in
//!   the spirit of the paper's "verification is cheaper than trust"
//!   argument (the proof is re-derived inside the TCB, never believed).
//!
//! The pipeline is classic and deliberately small, because this code is
//! in-enclave TCB:
//!
//! 1. [`cfg`](mod@cfg) — control-flow graph reconstruction over an existing
//!    recursive-descent [`deflection_isa::Disassembly`]: basic blocks,
//!    typed edges (branch/call/fall-through/indirect), predecessors,
//!    reverse postorder and an iterative dominator tree
//!    (Cooper–Harvey–Kennedy).
//! 2. [`interval`] — signed 64-bit intervals with join, meet and the
//!    widening operator that guarantees termination of the fixpoint.
//! 3. [`absint`] — the abstract interpreter: a value domain of
//!    intervals plus stack-pointer offsets ([`AVal`]), an abstract
//!    stack that tracks spilled values through `push`/`pop`/frame
//!    slots, branch-condition refinement (including conditions
//!    materialised through `setcc`, the shape the DCL compiler emits
//!    for loop bounds), and an effective-address range evaluator for
//!    base+index*scale operands.
//!
//! # Soundness preconditions
//!
//! The analysis models only the control flow visible in the CFG. That
//! is sound **only when policy P5 (CFI) is enforced on the same
//! binary**: the shadow stack pins every `ret` to its dynamic call
//! site and the branch-table check pins every indirect jump/call to
//! the declared target set, which are exactly the edges the CFG
//! contains. The core crate therefore only consults this analysis when
//! `cfi` is active; callers embedding the crate elsewhere must uphold
//! the same invariant. Within that assumption every transfer function
//! over-approximates the wrapping two's-complement semantics of
//! `deflection_sgx_sim::Cpu` — any operation whose concrete result
//! could wrap, fault or depend on untracked state goes to `Top`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod incremental;
pub mod interval;

pub use absint::{AVal, Analysis, AnalysisConfig};
pub use cfg::{Block, Cfg, Edge, EdgeKind};
pub use interval::Interval;
