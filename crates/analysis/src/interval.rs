//! Signed 64-bit value intervals.
//!
//! The abstract interpreter views every register value through its
//! two's-complement *signed* interpretation; an [`Interval`] is an
//! inclusive range `[lo, hi]` of `i64`. All arithmetic is checked in
//! `i128`: a result whose bounds leave the representable `i64` range
//! means the concrete computation may wrap modulo 2^64, and the caller
//! must fall back to `Top` (`None` here). This mirrors the wrapping
//! semantics of the VM exactly — an interval op only returns `Some`
//! when no concrete instance of the operation can wrap.

/// An inclusive range of signed 64-bit values with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Least value in the range.
    pub lo: i64,
    /// Greatest value in the range.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range — the least informative interval.
    pub const FULL: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// A single value.
    #[must_use]
    pub const fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from ordered bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Builds an interval from `i128` bounds, failing when either bound
    /// leaves the `i64` range (i.e. the concrete op may wrap).
    #[must_use]
    pub fn from_i128(lo: i128, hi: i128) -> Option<Interval> {
        let lo = i64::try_from(lo).ok()?;
        let hi = i64::try_from(hi).ok()?;
        Some(Interval { lo, hi })
    }

    /// The single value of this interval, if it is a point.
    #[must_use]
    pub fn as_exact(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is inside the interval.
    #[must_use]
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound (convex hull).
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound; `None` when the ranges are disjoint.
    #[must_use]
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The widening operator: any bound of `next` that grew past `self`
    /// jumps straight to the corresponding `i64` extreme. Each bound can
    /// widen at most once, so chains of widened joins terminate.
    #[must_use]
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// The narrowing operator, dual to [`Interval::widen`]: a bound
    /// sitting at an `i64` extreme (i.e. previously widened) is pulled
    /// back to the recomputed bound; finite bounds are kept. Falls back
    /// to `self` if the mix would be empty (possible only at
    /// unreachable points, where any value is sound).
    #[must_use]
    pub fn narrow(self, recomputed: Interval) -> Interval {
        let lo = if self.lo == i64::MIN { recomputed.lo } else { self.lo };
        let hi = if self.hi == i64::MAX { recomputed.hi } else { self.hi };
        if lo <= hi {
            Interval { lo, hi }
        } else {
            self
        }
    }

    /// Checked interval addition (`None` = possible wrap).
    ///
    /// Not `std::ops::Add`: all arithmetic here is checked and returns
    /// `Option`, which the operator traits cannot express.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interval) -> Option<Interval> {
        Interval::from_i128(self.lo as i128 + other.lo as i128, self.hi as i128 + other.hi as i128)
    }

    /// Checked interval subtraction.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, other: Interval) -> Option<Interval> {
        Interval::from_i128(self.lo as i128 - other.hi as i128, self.hi as i128 - other.lo as i128)
    }

    /// Checked negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn neg(self) -> Option<Interval> {
        Interval::from_i128(-(self.hi as i128), -(self.lo as i128))
    }

    /// Checked bitwise complement (`!x == -x - 1`).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Option<Interval> {
        Interval::from_i128(-(self.hi as i128) - 1, -(self.lo as i128) - 1)
    }

    /// Checked multiplication by a constant.
    #[must_use]
    pub fn mul_const(self, c: i64) -> Option<Interval> {
        let a = self.lo as i128 * c as i128;
        let b = self.hi as i128 * c as i128;
        Interval::from_i128(a.min(b), a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let a = Interval::new(0, 4);
        let b = Interval::new(10, 12);
        assert_eq!(a.join(b), Interval::new(0, 12));
        assert_eq!(b.join(a), Interval::new(0, 12));
        assert_eq!(a.join(a), a);
    }

    #[test]
    fn meet_intersects_or_fails() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.meet(b), Some(Interval::new(5, 10)));
        assert_eq!(a.meet(Interval::new(11, 12)), None);
        assert_eq!(a.meet(Interval::exact(10)), Some(Interval::exact(10)));
    }

    #[test]
    fn widen_jumps_to_extremes_once() {
        let old = Interval::new(0, 8);
        // Growth upward widens only the upper bound.
        assert_eq!(old.widen(Interval::new(0, 9)), Interval::new(0, i64::MAX));
        // Growth downward widens only the lower bound.
        assert_eq!(old.widen(Interval::new(-1, 8)), Interval::new(i64::MIN, 8));
        // No growth: unchanged.
        assert_eq!(old.widen(Interval::new(2, 6)), old);
        // Widening is idempotent at the extremes.
        let wide = old.widen(Interval::new(-1, 9));
        assert_eq!(wide.widen(Interval::new(i64::MIN, i64::MAX)), Interval::FULL);
    }

    #[test]
    fn checked_arithmetic_rejects_wraps() {
        let big = Interval::new(i64::MAX - 1, i64::MAX);
        assert_eq!(big.add(Interval::exact(1)), None);
        assert_eq!(big.add(Interval::exact(0)), Some(big));
        assert_eq!(Interval::exact(i64::MIN).neg(), None);
        assert_eq!(Interval::exact(i64::MIN).sub(Interval::exact(1)), None);
        assert_eq!(Interval::new(1 << 40, 1 << 41).mul_const(1 << 30), None);
    }

    #[test]
    fn scaled_index_ranges() {
        // The shape used for `arr[i]` addresses: i in [0, 31], scale 8.
        let idx = Interval::new(0, 31);
        assert_eq!(idx.mul_const(8), Some(Interval::new(0, 248)));
        assert_eq!(Interval::new(-3, 5).mul_const(-2), Some(Interval::new(-10, 6)));
    }
}
