//! Memoized re-runs of the abstract interpretation for incremental
//! re-verification of patched binaries.
//!
//! [`run_incremental`] produces an [`Analysis`] that is **bit-identical**
//! to [`Analysis::run`] over the same disassembly and configuration — the
//! memo is purely a work-avoidance device, never a source of truth the
//! result could diverge toward. The mechanism is *input-equality
//! memoization*: every per-function fixpoint in the modular analysis
//! ([`Analysis::run_threaded`]) is a pure function of a small, explicit
//! input capture (the group's blocks and internal edges, its dominator
//! chains, the projected pre-pass seeds flowing into it, the
//! stack-balance verdicts of its direct callees, and the analysis
//! configuration). A memoized result substitutes for a recomputation only
//! when a fresh capture of those inputs compares **equal** — so a hit is
//! correct by construction, with no reliance on hash collision resistance
//! against the adversarial producer, and no call-graph reasoning that
//! could under-approximate the invalidation set.
//!
//! The cheap serial phases — CFG reconstruction, dominators, the
//! stack-balance stratification driver and the projected whole-program
//! pre-pass — are recomputed from scratch on every run. That is what
//! makes the capture comparison sound: the seeds and callee verdicts fed
//! into each group are always this run's real values, so a caller whose
//! interprocedural facts shifted (different pre-pass seed, different
//! callee balance bit) fails its equality check and re-runs, while a
//! sibling function untouched by the patch compares equal and is reused
//! even when the call graph is star-shaped.

use crate::absint::{
    call_target, exec_block, group_fixpoint, is_cut_edge, projected_fixpoint, AbsState, Analysis,
    AnalysisConfig, GroupCtx,
};
use crate::cfg::{Cfg, EdgeKind};
use crate::interval::Interval;
use crate::AVal;
use deflection_isa::{Disassembly, Inst, Reg};
use deflection_telemetry::{Span, METRICS};
use std::collections::{BTreeSet, HashMap};

/// Cap on remembered (callee-bits, verdict) pairs per function in the
/// stack-balance memo. The stratified driver evaluates a function once
/// per round until it certifies, so a handful of distinct bit patterns
/// covers every converging run; the cap only bounds memory on
/// pathological churn.
const MAX_BALANCE_VERDICTS: usize = 8;

/// One basic block of a function group in canonical, index-free form.
///
/// `Edge::to` in the [`Cfg`] is a *global block index*, which shifts when
/// an unrelated function gains or loses a block; edges are therefore
/// captured as `(kind, target start offset, is-cut)` so the comparison is
/// stable under such shifts and two runs compare equal exactly when the
/// group's fixpoint would traverse the same shape. The dominator chain is
/// captured as start offsets for the same reason: the widening decision
/// consults `Cfg::dominates`, whose answer is a pure function of the
/// chain's offset sequence.
#[derive(Clone, PartialEq)]
struct CanonBlock {
    start: usize,
    end: usize,
    insts: Vec<(usize, Inst)>,
    edges: Vec<(EdgeKind, usize, bool)>,
    idom_chain: Vec<usize>,
}

/// Everything shape-like a group fixpoint reads: its blocks (with edges
/// and dominator chains) plus the analysis configuration.
#[derive(Clone, PartialEq)]
struct GroupShape {
    config: AnalysisConfig,
    blocks: Vec<CanonBlock>,
}

/// Memoized stack-balance verdicts for one function entry.
#[derive(Clone)]
struct BalanceEntry {
    shape: GroupShape,
    /// `(callee balance bits at evaluation time, verdict)` pairs.
    verdicts: Vec<(Vec<(usize, bool)>, bool)>,
}

/// Memoized full-precision fixpoint result for one function entry.
#[derive(Clone)]
struct GroupEntry {
    shape: GroupShape,
    /// Per member block: `None` = not seeded, `Some(state)` = the
    /// projected pre-pass seed (possibly `None` when unreachable).
    seeds: Vec<Option<Option<AbsState>>>,
    /// Direct-call targets inside the group and their balance verdicts.
    bits: Vec<(usize, bool)>,
    /// In-states keyed by block *start offset* (global block indices are
    /// not stable across runs).
    result: Vec<(usize, AbsState)>,
}

/// The persistent memo carried between [`run_incremental`] calls.
///
/// Keyed by function entry offset; stale entries (shape mismatch) are
/// replaced in place, so the memo never grows beyond one entry per
/// function of the most recent binary shape.
#[derive(Clone, Default)]
pub struct AnalysisMemo {
    balance: HashMap<usize, BalanceEntry>,
    groups: HashMap<usize, GroupEntry>,
}

impl AnalysisMemo {
    /// An empty memo: the first run computes everything and populates it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// What one [`run_incremental`] call reused versus recomputed — the
/// observable invalidation set, for telemetry and tests.
#[derive(Debug, Clone, Default)]
pub struct IncrementalReport {
    /// Per function (indexed like `Disassembly::function_entries`):
    /// whether its full-precision fixpoint was reused from the memo.
    pub reused: Vec<bool>,
    /// Functions whose fixpoint results were reused.
    pub groups_reused: usize,
    /// Functions whose fixpoints were recomputed (the invalidation set).
    pub groups_recomputed: usize,
    /// Stack-balance evaluations answered from the memo.
    pub balance_hits: usize,
    /// Stack-balance evaluations recomputed.
    pub balance_misses: usize,
}

/// The dominator chain of block `b`, as start offsets, mirroring the walk
/// in [`Cfg::dominates`] (the entry block's idom is itself).
fn idom_chain(cfg: &Cfg, idom: &[Option<usize>], b: usize) -> Vec<usize> {
    let mut chain = Vec::new();
    let mut cur = b;
    while let Some(parent) = idom[cur] {
        if parent == cur {
            break;
        }
        chain.push(cfg.blocks[parent].start);
        cur = parent;
    }
    chain
}

/// Captures the canonical shape of one group.
fn capture_shape(
    cfg: &Cfg,
    idom: &[Option<usize>],
    group_of: &[usize],
    members: &[usize],
    config: &AnalysisConfig,
) -> GroupShape {
    let blocks = members
        .iter()
        .map(|&b| {
            let blk = &cfg.blocks[b];
            let edges = blk
                .edges
                .iter()
                .map(|e| {
                    (
                        e.kind,
                        cfg.blocks[e.to].start,
                        is_cut_edge(e.kind, group_of[b], group_of[e.to]),
                    )
                })
                .collect();
            CanonBlock {
                start: blk.start,
                end: blk.end,
                insts: blk.insts.clone(),
                edges,
                idom_chain: idom_chain(cfg, idom, b),
            }
        })
        .collect();
    GroupShape { config: config.clone(), blocks }
}

/// The `(direct-call target, balanced?)` bits a group fixpoint would read
/// through its `CallFall` edges, captured against the current `balanced`
/// set. Part of every memo key: a callee whose balance verdict shifted
/// invalidates exactly its callers.
fn callee_bits(cfg: &Cfg, members: &[usize], balanced: &BTreeSet<usize>) -> Vec<(usize, bool)> {
    members
        .iter()
        .filter_map(|&b| call_target(cfg, b))
        .map(|t| (t, balanced.contains(&t)))
        .collect()
}

/// One stack-balance evaluation for a candidate group — byte-for-byte the
/// evaluation `balanced_entries` performs in [`Analysis::run_threaded`].
fn compute_balance(
    cfg: &Cfg,
    idom: &[Option<usize>],
    config: &AnalysisConfig,
    group_of: &[usize],
    members: &[usize],
    eb: usize,
    balanced: &BTreeSet<usize>,
) -> bool {
    let n = cfg.blocks.len();
    let mut prepass: Vec<Option<AbsState>> = vec![None; n];
    prepass[eb] = Some(AbsState::balance_entry());
    let mut bseed = vec![false; n];
    bseed[eb] = true;
    let ctx = GroupCtx { cfg, idom, config, group_of, seeded: &bseed, prepass: &prepass, balanced };
    for (b, state) in group_fixpoint(&ctx, members) {
        let Some(&(_, Inst::Ret)) = cfg.blocks[b].insts.last() else { continue };
        let (out, _) = exec_block(cfg, b, state, config);
        if out.reg(Reg::RSP).val != AVal::Stack(Interval::exact(0))
            || out.reg(Reg::RBP).val != AVal::EntryRbp
        {
            return false;
        }
    }
    true
}

/// Runs the analysis with per-function fixpoints answered from `memo`
/// where every captured input compares equal, recomputing (and
/// re-memoizing) the rest.
///
/// The returned [`Analysis`] is bit-identical — block in-state for block
/// in-state — to [`Analysis::run`] on the same inputs: reuse happens only
/// when the recomputation's full input set is equal, and each fixpoint is
/// a deterministic pure function of that set. The [`IncrementalReport`]
/// names the invalidation set actually paid for.
#[must_use]
pub fn run_incremental(
    d: &Disassembly,
    config: AnalysisConfig,
    memo: &mut AnalysisMemo,
) -> (Analysis, IncrementalReport) {
    let _span = Span::start(&METRICS.analysis_run_ns);
    let cfg = Cfg::build(d);
    let idom = cfg.dominators();
    let n = cfg.blocks.len();

    // Grouping, seeding: exactly as `Analysis::run_threaded`.
    let entries = d.function_entries();
    let group_of: Vec<usize> = cfg
        .blocks
        .iter()
        .map(|b| entries.partition_point(|&e| e <= b.start).saturating_sub(1))
        .collect();
    let n_groups = entries.len().max(1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (b, &g) in group_of.iter().enumerate() {
        members[g].push(b);
    }
    let mut seeded = vec![false; n];
    seeded[cfg.entry] = true;
    for (a, blk) in cfg.blocks.iter().enumerate() {
        for e in &blk.edges {
            if is_cut_edge(e.kind, group_of[a], group_of[e.to]) {
                seeded[e.to] = true;
            }
        }
    }

    let shapes: Vec<GroupShape> =
        members.iter().map(|mem| capture_shape(&cfg, &idom, &group_of, mem, &config)).collect();
    let mut report = IncrementalReport { reused: vec![false; n_groups], ..Default::default() };

    // Stack-balance stratification: the driver (rounds, iteration order,
    // give-up conditions) replays verbatim; only the per-group fixpoint +
    // ret-check evaluation is answered from the memo. Each evaluation is
    // a pure function of (shape, callee bits at evaluation time), so the
    // grown `balanced` set is identical to the from-scratch run's.
    let mut balanced: BTreeSet<usize> = BTreeSet::new();
    loop {
        let mut grew = false;
        for (g, mem) in members.iter().enumerate() {
            let Some(&entry_off) = entries.get(g) else { continue };
            if balanced.contains(&entry_off) {
                continue;
            }
            let Some(&eb) = mem.iter().find(|&&b| cfg.blocks[b].start == entry_off) else {
                continue;
            };
            if mem.iter().any(|&b| seeded[b] && b != eb) {
                continue;
            }
            let bits = callee_bits(&cfg, mem, &balanced);
            let entry = memo
                .balance
                .entry(entry_off)
                .or_insert_with(|| BalanceEntry { shape: shapes[g].clone(), verdicts: Vec::new() });
            if entry.shape != shapes[g] {
                entry.shape = shapes[g].clone();
                entry.verdicts.clear();
            }
            let verdict = match entry.verdicts.iter().find(|(k, _)| *k == bits) {
                Some(&(_, v)) => {
                    report.balance_hits += 1;
                    v
                }
                None => {
                    report.balance_misses += 1;
                    let v = compute_balance(&cfg, &idom, &config, &group_of, mem, eb, &balanced);
                    if entry.verdicts.len() >= MAX_BALANCE_VERDICTS {
                        entry.verdicts.clear();
                    }
                    entry.verdicts.push((bits, v));
                    v
                }
            };
            if verdict {
                balanced.insert(entry_off);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Whole-program projected pre-pass: cheap, always recomputed — its
    // per-block states are the seeds the group memo keys compare.
    let prepass = projected_fixpoint(&cfg, &idom, &config, &balanced);

    let start_to_block: HashMap<usize, usize> =
        cfg.blocks.iter().enumerate().map(|(i, b)| (b.start, i)).collect();
    let mut in_states: Vec<Option<AbsState>> = vec![None; n];
    for (g, mem) in members.iter().enumerate() {
        let key = entries.get(g).copied().unwrap_or(0);
        let seeds: Vec<Option<Option<AbsState>>> =
            mem.iter().map(|&b| if seeded[b] { Some(prepass[b].clone()) } else { None }).collect();
        let bits = callee_bits(&cfg, mem, &balanced);
        let hit = memo
            .groups
            .get(&key)
            .is_some_and(|e| e.shape == shapes[g] && e.seeds == seeds && e.bits == bits);
        if hit {
            let entry = memo.groups.get(&key).expect("checked above");
            for (off, s) in &entry.result {
                in_states[start_to_block[off]] = Some(s.clone());
            }
            report.reused[g] = true;
            report.groups_reused += 1;
        } else {
            let ctx = GroupCtx {
                cfg: &cfg,
                idom: &idom,
                config: &config,
                group_of: &group_of,
                seeded: &seeded,
                prepass: &prepass,
                balanced: &balanced,
            };
            let result = group_fixpoint(&ctx, mem);
            for &(b, ref s) in &result {
                in_states[b] = Some(s.clone());
            }
            let result = result.into_iter().map(|(b, s)| (cfg.blocks[b].start, s)).collect();
            memo.groups.insert(key, GroupEntry { shape: shapes[g].clone(), seeds, bits, result });
            report.groups_recomputed += 1;
        }
    }
    let rel_facts: u64 = in_states.iter().flatten().map(|s| s.rels.len() as u64).sum();
    METRICS.absint_relational_facts.observe(rel_facts);
    (Analysis { cfg, config, in_states }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflection_isa::{disassemble, encode, encoded_len, AluOp, CondCode, MemOperand};

    enum I {
        R(Inst),
        Call(usize),
        Jcc(CondCode, usize),
    }

    fn ilen(i: &I) -> usize {
        match i {
            I::R(inst) => encoded_len(inst),
            I::Call(_) => encoded_len(&Inst::Call { rel: 0 }),
            I::Jcc(cc, _) => encoded_len(&Inst::Jcc { cc: *cc, rel: 0 }),
        }
    }

    fn assemble(funcs: &[Vec<I>]) -> Vec<u8> {
        let mut offsets: Vec<Vec<usize>> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        for f in funcs {
            starts.push(cursor);
            let mut offs = Vec::new();
            for i in f {
                offs.push(cursor);
                cursor += ilen(i);
            }
            offsets.push(offs);
        }
        let mut code = Vec::with_capacity(cursor);
        for (fi, f) in funcs.iter().enumerate() {
            for (ii, i) in f.iter().enumerate() {
                let end = offsets[fi][ii] + ilen(i);
                match i {
                    I::R(inst) => encode(inst, &mut code),
                    I::Call(t) => {
                        encode(
                            &Inst::Call { rel: (starts[*t] as i64 - end as i64) as i32 },
                            &mut code,
                        );
                    }
                    I::Jcc(cc, t) => {
                        let rel = (offsets[fi][*t] as i64 - end as i64) as i32;
                        encode(&Inst::Jcc { cc: *cc, rel }, &mut code);
                    }
                }
            }
        }
        code
    }

    fn mem(base: Option<Reg>, disp: i32) -> MemOperand {
        MemOperand { base, index: None, disp }
    }

    /// A star-shaped program: start calls `k` loop-heavy leaves in turn.
    /// Each leaf stores into the data window with a distinct constant.
    fn star_program(consts: &[u64]) -> Vec<u8> {
        let mut start: Vec<I> = Vec::new();
        for f in 1..=consts.len() {
            start.push(I::Call(f));
        }
        start.push(I::R(Inst::Halt));
        let mut funcs = vec![start];
        for &c in consts {
            funcs.push(vec![
                I::R(Inst::MovRI { dst: Reg::RAX, imm: 0 }),
                I::R(Inst::MovRI { dst: Reg::RBX, imm: 0x1000 + c }),
                // loop head (instruction 2)
                I::R(Inst::Store { mem: mem(Some(Reg::RBX), 0), src: Reg::RAX }),
                I::R(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 }),
                I::R(Inst::CmpRI { lhs: Reg::RAX, imm: 10 }),
                I::Jcc(CondCode::L, 2),
                I::R(Inst::Ret),
            ]);
        }
        assemble(&funcs)
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            store_lo: 0x1000,
            store_hi: 0x2000,
            stack_hi: 0x8000,
            stack_lo: 0x7000,
            opaque_imms: vec![],
            nonstack_imms: vec![],
        }
    }

    #[test]
    fn cold_and_warm_runs_match_from_scratch_analysis() {
        let code = star_program(&[3, 5, 7, 9]);
        let d = disassemble(&code, 0, &[]).unwrap();
        let oracle = Analysis::run(&d, config());
        let mut memo = AnalysisMemo::new();
        let (cold, r_cold) = run_incremental(&d, config(), &mut memo);
        assert_eq!(oracle.in_states, cold.in_states);
        assert_eq!(r_cold.groups_reused, 0);
        assert_eq!(r_cold.groups_recomputed, 5, "start + 4 leaves");
        let (warm, r_warm) = run_incremental(&d, config(), &mut memo);
        assert_eq!(oracle.in_states, warm.in_states);
        assert_eq!(r_warm.groups_recomputed, 0);
        assert_eq!(r_warm.groups_reused, 5);
        assert_eq!(r_warm.balance_misses, 0, "balance verdicts all memoized");
    }

    #[test]
    fn one_leaf_patch_invalidates_only_that_leaf() {
        let base = star_program(&[3, 5, 7, 9]);
        let patched = star_program(&[3, 5, 7, 11]);
        assert_eq!(base.len(), patched.len(), "same-length patch keeps offsets stable");
        let mut memo = AnalysisMemo::new();
        let d = disassemble(&base, 0, &[]).unwrap();
        let _ = run_incremental(&d, config(), &mut memo);
        let dp = disassemble(&patched, 0, &[]).unwrap();
        let (a, r) = run_incremental(&dp, config(), &mut memo);
        assert_eq!(a.in_states, Analysis::run(&dp, config()).in_states);
        assert_eq!(r.groups_recomputed, 1, "only the patched leaf re-runs: {r:?}");
        assert_eq!(r.groups_reused, 4);
        let reused_idx: Vec<usize> = (0..r.reused.len()).filter(|&g| !r.reused[g]).collect();
        assert_eq!(reused_idx.len(), 1);
    }

    #[test]
    fn config_change_invalidates_everything() {
        let code = star_program(&[3, 5]);
        let d = disassemble(&code, 0, &[]).unwrap();
        let mut memo = AnalysisMemo::new();
        let _ = run_incremental(&d, config(), &mut memo);
        let wider = AnalysisConfig { store_hi: 0x3000, ..config() };
        let (a, r) = run_incremental(&d, wider.clone(), &mut memo);
        assert_eq!(a.in_states, Analysis::run(&d, wider).in_states);
        assert_eq!(r.groups_reused, 0);
    }
}
