//! The abstract interpreter: forward interval dataflow over the 16
//! GPRs plus an abstract stack.
//!
//! # Domain
//!
//! A register holds an [`AVal`]:
//!
//! * `Val(iv)` — the value, viewed as signed 64-bit, lies in `iv`;
//! * `Stack(iv)` — the value equals `stack_hi + d` for some `d ∈ iv`
//!   (a stack pointer, tracked symbolically so frame arithmetic stays
//!   exact without knowing absolute addresses early);
//! * `Top` — anything.
//!
//! The abstract stack maps frame slot deltas (relative to the initial
//! `rsp`, which the runtime pins to `stack_hi`) to tracked values, so
//! spills, `push`/`pop` pairs and DCL frame locals keep their ranges.
//! Every possibly-aliasing store invalidates overlapping slots; a
//! store through `Top` clears the whole abstract stack.
//!
//! # Branch refinement
//!
//! `cmp`-then-`jcc` refines the compared value on both outgoing
//! edges. Because the DCL compiler materialises conditions through
//! `setcc` (then tests the 0/1 result), the interpreter also tracks
//! one level of boolean provenance: `setcc cc` after a `cmp` tags the
//! destination with that comparison, and a later `cmp reg, 0; je/jne`
//! re-applies (or negates) the original condition. Combined with slot
//! provenance — a register remembers which frame slot it was loaded
//! from — this bounds compiled loop counters: widening at
//! dominator-identified loop heads forces termination, and the guard
//! refinement narrows the widened range back inside the loop body.
//!
//! All transfer functions over-approximate the wrapping semantics of
//! the VM: interval arithmetic is checked in `i128` and any possible
//! wrap, fault or untracked effect degrades to `Top`.

use crate::cfg::{Cfg, Edge, EdgeKind};
use crate::interval::Interval;
use deflection_isa::{AluOp, CondCode, Disassembly, Inst, MemOperand, Reg};
use deflection_telemetry::{Span, METRICS};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const RSP: usize = Reg::RSP as usize;
const RBP: usize = Reg::RBP as usize;
/// Joins at a loop head before the widening operator engages.
const WIDEN_AFTER: u32 = 3;
/// Joins at *any* block before forced widening (safety net for
/// irreducible flow, where back edges are not dominator-detectable).
const FORCE_WIDEN_AFTER: u32 = 64;
/// Upper bound on tracked frame slots per state (degrades to `Top`
/// beyond, keeping state sizes bounded on adversarial input).
const MAX_SLOTS: usize = 512;
/// Decreasing (narrowing) rounds run after each group fixpoint
/// converges; two rounds settle every widened counter the guard
/// refinement can bound (one to pull the head state down, one to
/// propagate it).
const NARROW_ROUNDS: u32 = 2;

/// Configuration shared verbatim by producer and verifier — both sides
/// must analyse under identical parameters to reach identical verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Inclusive lower bound of the P1 data window.
    pub store_lo: u64,
    /// Exclusive upper bound of the P1 data window.
    pub store_hi: u64,
    /// Initial `rsp` (one past the top of the stack region); the base
    /// all `AVal::Stack` deltas are relative to.
    pub stack_hi: u64,
    /// Inclusive lower bound of the stack region. A store through a
    /// *known absolute* address entirely below this line cannot alias
    /// any frame slot (frame slots live in the stack region; a store
    /// into the guard page faults, making its post-state unreachable).
    pub stack_lo: u64,
    /// Immediates the analysis must treat as unknown (`Top`): the
    /// annotation placeholder values the in-enclave rewriter patches
    /// after verification. Treating them as opaque makes one analysis
    /// sound for both the pre-rewrite and post-rewrite binary.
    pub opaque_imms: Vec<u64>,
    /// The subset of opaque immediates that are additionally known to
    /// be patched to addresses *outside the stack region* (runtime
    /// structures: AEX slot, SSA marker, shadow-stack slot, branch
    /// table). A store through such a pointer cannot alias any frame
    /// slot, so the abstract stack survives it — without this fact the
    /// per-block AEX probes would clear every loop counter's slot.
    pub nonstack_imms: Vec<u64>,
}

/// An abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AVal {
    /// Any value.
    #[default]
    Top,
    /// Signed-64 view of the value lies in the interval.
    Val(Interval),
    /// `stack_hi + d` for some `d` in the interval.
    Stack(Interval),
    /// Unknown value that, used as an address, lies entirely outside
    /// the stack region (a placeholder the rewriter patches to a
    /// runtime-structure address). Stores through it cannot alias
    /// frame slots; loads through it yield `Top`.
    NonStack,
    /// The value `rbp` held at the analysed function's entry. Used only
    /// by the stack-balance pre-analysis (`balanced_entries`): the
    /// token is *unforgeable* — no instruction produces it (every
    /// arithmetic transfer on it degrades to `Top`), it only moves
    /// through register copies and exact frame-slot round trips — so
    /// `rbp == EntryRbp` at a `ret` proves the callee restored the
    /// caller's frame pointer on every path.
    EntryRbp,
}

impl AVal {
    /// An exact known constant (signed-64 view).
    #[must_use]
    pub fn exact(v: i64) -> AVal {
        AVal::Val(Interval::exact(v))
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: AVal) -> AVal {
        match (self, other) {
            (AVal::Val(a), AVal::Val(b)) => AVal::Val(a.join(b)),
            (AVal::Stack(a), AVal::Stack(b)) => AVal::Stack(a.join(b)),
            (AVal::NonStack, AVal::NonStack) => AVal::NonStack,
            (AVal::EntryRbp, AVal::EntryRbp) => AVal::EntryRbp,
            _ => AVal::Top,
        }
    }

    /// Widened join: interval bounds that grew jump to the extremes.
    #[must_use]
    pub fn widen(self, next: AVal) -> AVal {
        match (self, next) {
            (AVal::Val(a), AVal::Val(b)) => AVal::Val(a.widen(b)),
            (AVal::Stack(a), AVal::Stack(b)) => AVal::Stack(a.widen(b)),
            (AVal::NonStack, AVal::NonStack) => AVal::NonStack,
            (AVal::EntryRbp, AVal::EntryRbp) => AVal::EntryRbp,
            _ => AVal::Top,
        }
    }

    /// Narrowing operator for the decreasing rounds that follow the
    /// widened fixpoint: endpoints the widening blew out to ±∞ are
    /// replaced by the recomputed (sound, post-fixpoint) bound, finite
    /// endpoints are kept. Mixing components of two sound
    /// over-approximations stays sound — every concrete state satisfies
    /// both conjuncts — and only infinite endpoints ever change, so the
    /// rounds terminate trivially.
    #[must_use]
    pub fn narrow(self, recomputed: AVal) -> AVal {
        match (self, recomputed) {
            (AVal::Top, r) => r,
            (AVal::Val(a), AVal::Val(b)) => AVal::Val(a.narrow(b)),
            (AVal::Stack(a), AVal::Stack(b)) => AVal::Stack(a.narrow(b)),
            (a, _) => a,
        }
    }

    /// The inclusive range of possible concrete `u64` values, when the
    /// abstraction pins one down. `Val` ranges must be non-negative
    /// (a negative signed bound means a huge unsigned value, useless
    /// for an in-window proof); `Stack` deltas are resolved against
    /// `stack_hi`.
    #[must_use]
    pub fn abs_range(self, stack_hi: u64) -> Option<(u64, u64)> {
        match self {
            AVal::Top | AVal::NonStack | AVal::EntryRbp => None,
            AVal::Val(iv) => (iv.lo >= 0).then_some((iv.lo as u64, iv.hi as u64)),
            AVal::Stack(iv) => {
                let lo = stack_hi as i128 + iv.lo as i128;
                let hi = stack_hi as i128 + iv.hi as i128;
                let lo = u64::try_from(lo).ok()?;
                let hi = u64::try_from(hi).ok()?;
                Some((lo, hi))
            }
        }
    }
}

/// A value plus its slot provenance: `origin == Some(d)` asserts the
/// value equals the *current* content of frame slot `d`. Maintained by
/// clearing the origin whenever slot `d` is (possibly) overwritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Tracked {
    pub(crate) val: AVal,
    origin: Option<i64>,
}

/// Upper bound on relational facts tracked per state.
const MAX_RELS: usize = 8;

/// A symbolic upper bound between two frame slots, learned at a
/// guarded branch: `slots[sub_slot] <= slots[bound_slot] + add`
/// (signed). The fact is dropped the moment either slot's content may
/// change; while it lives, a later refinement of the *bound* slot
/// transfers to the subject — the difference-bound step that proves
/// loop counters compared against a runtime-clamped limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct RelFact {
    sub_slot: i64,
    bound_slot: i64,
    add: i64,
}

/// The per-program-point abstract state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsState {
    regs: [Tracked; 16],
    /// Frame slot delta (relative to `stack_hi`) -> content.
    slots: BTreeMap<i64, Tracked>,
    /// Sorted, deduplicated difference bounds between frame slots.
    pub(crate) rels: Vec<RelFact>,
}

impl AbsState {
    /// State at the program entry point: the runtime zeroes registers
    /// and sets `rsp = stack_hi`; we only rely on the latter.
    fn entry() -> AbsState {
        let mut s = AbsState { regs: Default::default(), slots: BTreeMap::new(), rels: Vec::new() };
        s.regs[RSP] = Tracked { val: AVal::Stack(Interval::exact(0)), origin: None };
        s
    }

    /// Post-call state: the callee may clobber every register and every
    /// stack slot (`pop rbp` and `rsp` pivots included — the shadow
    /// stack pins the return *target*, not the returning frame layout).
    fn havoc() -> AbsState {
        AbsState { regs: Default::default(), slots: BTreeMap::new(), rels: Vec::new() }
    }

    /// Seed for the stack-balance pre-analysis of one function: `rsp`
    /// points at the freshly pushed return address (entry-relative
    /// offset 0), `rbp` holds the unforgeable caller token, and the
    /// caller's frame contents are unknown.
    pub(crate) fn balance_entry() -> AbsState {
        let mut s = AbsState::havoc();
        s.regs[RSP] = Tracked { val: AVal::Stack(Interval::exact(0)), origin: None };
        s.regs[RBP] = Tracked { val: AVal::EntryRbp, origin: None };
        s
    }

    /// Records `slots[sub] <= slots[bound] + add`, keeping the fact
    /// vector sorted, deduplicated and capped.
    fn add_rel(&mut self, sub: i64, bound: i64, add: i64) {
        if sub == bound {
            return;
        }
        let fact = RelFact { sub_slot: sub, bound_slot: bound, add };
        if let Err(at) = self.rels.binary_search(&fact) {
            if self.rels.len() < MAX_RELS {
                self.rels.insert(at, fact);
            }
        }
    }

    /// Drops every relational fact that mentions slot `d`.
    fn scrub_rels(&mut self, d: i64) {
        self.rels.retain(|f| f.sub_slot != d && f.bound_slot != d);
    }

    pub(crate) fn reg(&self, r: Reg) -> Tracked {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, flags: &mut LocalFlags, r: Reg, val: AVal, origin: Option<i64>) {
        self.regs[r.index() as usize] = Tracked { val, origin };
        flags.scrub_reg(r.index());
    }

    /// Drops `origin == Some(d)` everywhere (slot `d`'s content changed).
    fn clear_origin(&mut self, d: i64) {
        for t in &mut self.regs {
            if t.origin == Some(d) {
                t.origin = None;
            }
        }
        for t in self.slots.values_mut() {
            if t.origin == Some(d) {
                t.origin = None;
            }
        }
    }

    /// Models a store of `size` bytes through `addr`.
    fn write_mem(
        &mut self,
        flags: &mut LocalFlags,
        addr: AVal,
        size: i64,
        value: AVal,
        origin: Option<i64>,
        config: &AnalysisConfig,
    ) {
        // Exact 8-byte stack store: strong update.
        if size == 8 {
            if let AVal::Stack(iv) = addr {
                if let Some(d) = iv.as_exact() {
                    let removed: Vec<i64> =
                        self.slots.range(d - 7..=d + 7).map(|(&k, _)| k).collect();
                    for k in removed {
                        self.slots.remove(&k);
                        self.clear_origin(k);
                        self.scrub_rels(k);
                        flags.scrub_slot(k);
                    }
                    self.scrub_rels(d);
                    let origin = origin.filter(|&o| o != d);
                    if self.slots.len() < MAX_SLOTS {
                        self.slots.insert(d, Tracked { val: value, origin });
                    }
                    return;
                }
            }
        }
        // A store through a provably non-stack pointer cannot touch any
        // frame slot: nothing to invalidate.
        if addr == AVal::NonStack {
            return;
        }
        // A store through a known absolute address wholly below the
        // stack region cannot alias any frame slot either (and in the
        // frame-relative balance analysis, absolute addresses cannot be
        // compared against entry-relative slot keys at all, so anything
        // that may reach the stack must clear everything).
        if let AVal::Val(iv) = addr {
            if iv.lo >= 0 && (iv.hi as i128 + size as i128) <= config.stack_lo as i128 {
                return;
            }
        }
        // Weak update: invalidate every slot the store may touch.
        let delta_range: Option<(i128, i128)> = match addr {
            AVal::Top | AVal::NonStack | AVal::EntryRbp | AVal::Val(_) => None,
            AVal::Stack(iv) => Some((iv.lo as i128, iv.hi as i128)),
        };
        match delta_range {
            None => {
                let removed: Vec<i64> = self.slots.keys().copied().collect();
                self.slots.clear();
                self.rels.clear();
                for k in removed {
                    self.clear_origin(k);
                    flags.scrub_slot(k);
                }
            }
            Some((dlo, dhi)) => {
                let removed: Vec<i64> = self
                    .slots
                    .iter()
                    .filter(|&(&k, _)| {
                        let k = k as i128;
                        k + 8 > dlo && k < dhi + size as i128
                    })
                    .map(|(&k, _)| k)
                    .collect();
                for k in removed {
                    self.slots.remove(&k);
                    self.clear_origin(k);
                    self.scrub_rels(k);
                    flags.scrub_slot(k);
                }
            }
        }
    }

    /// Models an 8-byte load through `addr`.
    fn read_mem(&self, addr: AVal) -> Tracked {
        if let AVal::Stack(iv) = addr {
            if let Some(d) = iv.as_exact() {
                return match self.slots.get(&d) {
                    Some(t) => Tracked { val: t.val, origin: t.origin.or(Some(d)) },
                    None => Tracked { val: AVal::Top, origin: Some(d) },
                };
            }
        }
        Tracked::default()
    }

    /// The register's value, tightened by any relational fact about
    /// the frame slot it was loaded from: with `reg == slots[s]` and
    /// `slots[s] <= slots[b] + add`, a finite upper bound on slot `b`
    /// transfers to the register.
    fn tightened(&self, r: Reg) -> AVal {
        let t = self.reg(r);
        let Some(s) = t.origin else { return t.val };
        let mut val = t.val;
        for f in self.rels.iter().filter(|f| f.sub_slot == s) {
            let Some(AVal::Val(biv)) = self.slots.get(&f.bound_slot).map(|b| b.val) else {
                continue;
            };
            if biv.hi == i64::MAX {
                continue;
            }
            let Some(cons) = bounded_above(biv.hi as i128 + f.add as i128) else { continue };
            val = match val {
                AVal::Top => AVal::Val(cons),
                AVal::Val(civ) => civ.meet(cons).map_or(val, AVal::Val),
                other => other,
            };
        }
        val
    }

    /// Effective-address evaluation for `base + index*scale + disp`.
    fn eval_addr(&self, mem: &MemOperand) -> AVal {
        let mut acc = AVal::exact(i64::from(mem.disp));
        if let Some(b) = mem.base {
            acc = aval_add(acc, self.tightened(b));
        }
        if let Some((r, scale)) = mem.index {
            let idx = self.tightened(r);
            let scaled = match idx {
                AVal::Top | AVal::NonStack | AVal::EntryRbp => AVal::Top,
                AVal::Val(iv) => iv.mul_const(i64::from(scale)).map_or(AVal::Top, AVal::Val),
                AVal::Stack(iv) if scale == 1 => AVal::Stack(iv),
                AVal::Stack(_) => AVal::Top,
            };
            acc = aval_add(acc, scaled);
        }
        acc
    }

    /// Join (or widened join) with an incoming state.
    fn merge(&self, incoming: &AbsState, widen: bool) -> AbsState {
        let mut regs: [Tracked; 16] = Default::default();
        for (i, slot) in regs.iter_mut().enumerate() {
            let a = self.regs[i];
            let b = incoming.regs[i];
            let joined = a.val.join(b.val);
            let val = if widen { a.val.widen(joined) } else { joined };
            let origin = if a.origin == b.origin { a.origin } else { None };
            *slot = Tracked { val, origin };
        }
        let mut slots = BTreeMap::new();
        for (k, a) in &self.slots {
            if let Some(b) = incoming.slots.get(k) {
                let joined = a.val.join(b.val);
                let val = if widen { a.val.widen(joined) } else { joined };
                let origin = if a.origin == b.origin { a.origin } else { None };
                slots.insert(*k, Tracked { val, origin });
            }
        }
        // Facts are conjuncts: only those that hold on both paths
        // survive the join (both vectors are sorted, so this is a
        // linear intersection kept sorted for state equality).
        let rels =
            self.rels.iter().filter(|f| incoming.rels.binary_search(f).is_ok()).copied().collect();
        AbsState { regs, slots, rels }
    }

    /// One narrowing step: `self` is the widened fixpoint in-state,
    /// `recomputed` is the same in-state recomputed as a plain join of
    /// its (sound, post-fixpoint) edge contributions. Component-wise
    /// [`AVal::narrow`]; slots and facts absent from the recomputation
    /// keep their widened entry — both states over-approximate every
    /// concrete state reaching the block, so each kept conjunct stays
    /// sound.
    fn narrow(&self, recomputed: &AbsState) -> AbsState {
        let mut regs = self.regs;
        for (i, t) in regs.iter_mut().enumerate() {
            t.val = t.val.narrow(recomputed.regs[i].val);
        }
        let mut slots = self.slots.clone();
        for (k, t) in &mut slots {
            if let Some(r) = recomputed.slots.get(k) {
                t.val = t.val.narrow(r.val);
            }
        }
        AbsState { regs, slots, rels: self.rels.clone() }
    }
}

/// Which value a comparison constrained — the refinement target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subject {
    Reg(u8),
    Slot(i64),
}

impl Subject {
    fn as_slot(&self) -> Option<i64> {
        match self {
            Subject::Slot(d) => Some(*d),
            Subject::Reg(_) => None,
        }
    }
}

/// Snapshot of one `cmp`: the compared abstract values plus every
/// subject (register or provenance slot) each side constrains. A
/// subject is scrubbed as soon as the underlying location changes, so
/// a surviving subject is still equal to the compared value when the
/// branch finally tests the flags.
#[derive(Debug, Clone, Default, PartialEq)]
struct CmpSnap {
    lhs_subs: Vec<Subject>,
    rhs_subs: Vec<Subject>,
    lhs: AVal,
    rhs: AVal,
}

#[derive(Debug, Clone, Default, PartialEq)]
enum FlagState {
    #[default]
    Unknown,
    /// Flags hold `cmp lhs, rhs`.
    Cmp(CmpSnap),
    /// Flags hold `cmp b, 0` where `b` is the 0/1 result of `setcc cc`
    /// over `snap` — i.e. `jne` re-asserts `cc`, `je` asserts `!cc`.
    Bool { snap: CmpSnap, cc: CondCode },
}

/// Block-local flag tracking (flags never survive a block boundary;
/// the compiler always tests them adjacent to the `cmp`).
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalFlags {
    flag: FlagState,
    /// `setcc` results: register -> the comparison it reifies.
    bool_preds: Vec<(u8, CmpSnap, CondCode)>,
}

impl LocalFlags {
    fn scrub_reg(&mut self, r: u8) {
        self.bool_preds.retain(|(b, _, _)| *b != r);
        let drop = |s: &mut Vec<Subject>| s.retain(|x| *x != Subject::Reg(r));
        self.for_each_snap(drop);
    }

    fn scrub_slot(&mut self, d: i64) {
        let drop = |s: &mut Vec<Subject>| s.retain(|x| *x != Subject::Slot(d));
        self.for_each_snap(drop);
    }

    fn for_each_snap(&mut self, f: impl Fn(&mut Vec<Subject>)) {
        match &mut self.flag {
            FlagState::Unknown => {}
            FlagState::Cmp(snap) | FlagState::Bool { snap, .. } => {
                f(&mut snap.lhs_subs);
                f(&mut snap.rhs_subs);
            }
        }
        for (_, snap, _) in &mut self.bool_preds {
            f(&mut snap.lhs_subs);
            f(&mut snap.rhs_subs);
        }
    }

    fn bool_pred(&self, r: u8) -> Option<(&CmpSnap, CondCode)> {
        self.bool_preds.iter().find(|(b, _, _)| *b == r).map(|(_, s, c)| (s, *c))
    }
}

/// The analysis result: per-block fixpoint states over the CFG, plus
/// the queries the producer and verifier share.
#[derive(Debug)]
pub struct Analysis {
    pub(crate) cfg: Cfg,
    pub(crate) config: AnalysisConfig,
    pub(crate) in_states: Vec<Option<AbsState>>,
}

impl Analysis {
    /// Runs the fixpoint over a disassembly.
    ///
    /// Equivalent to [`Analysis::run_threaded`] with one thread; this is
    /// the TCB-counted default the verifier uses.
    #[must_use]
    pub fn run(d: &Disassembly, config: AnalysisConfig) -> Analysis {
        Self::run_threaded(d, config, 1)
    }

    /// Runs the analysis with the per-function fixpoints sharded across up
    /// to `threads` worker threads.
    ///
    /// The analysis is *function-modular*: a cheap serial pre-pass
    /// propagates only the projected `rsp`/`rbp` state across call and
    /// indirect edges, then each function's interval fixpoint runs
    /// independently, seeded from the pre-pass at every cut edge. The
    /// per-function problems share no mutable state, so the result is
    /// identical — block for block — for every thread count; `threads`
    /// only changes how the independent fixpoints are scheduled.
    #[must_use]
    pub fn run_threaded(d: &Disassembly, config: AnalysisConfig, threads: usize) -> Analysis {
        let _span = Span::start(&METRICS.analysis_run_ns);
        let cfg = Cfg::build(d);
        let idom = cfg.dominators();
        let n = cfg.blocks.len();

        // Group blocks by function: the closest function entry at or below
        // the block start (blocks below the first entry join group 0).
        let entries = d.function_entries();
        let group_of: Vec<usize> = cfg
            .blocks
            .iter()
            .map(|b| entries.partition_point(|&e| e <= b.start).saturating_sub(1))
            .collect();
        let n_groups = entries.len().max(1);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (b, &g) in group_of.iter().enumerate() {
            members[g].push(b);
        }

        // Seed set: the entry block plus every target of a cut edge. Each
        // seed is the pre-pass in-state, which over-approximates the
        // projection of every cross-group flow into that block.
        let mut seeded = vec![false; n];
        seeded[cfg.entry] = true;
        for (a, blk) in cfg.blocks.iter().enumerate() {
            for e in &blk.edges {
                if is_cut_edge(e.kind, group_of[a], group_of[e.to]) {
                    seeded[e.to] = true;
                }
            }
        }

        // Stack-balance pre-analysis: which callees provably restore
        // `rsp`/`rbp` on every return. Runs first (serially) so both the
        // projected pre-pass and the per-group fixpoints can keep the
        // caller's frame pointer alive across calls to proven callees.
        let balanced =
            balanced_entries(&cfg, &idom, entries, &group_of, &members, &seeded, &config);

        // Serial pre-pass: whole-program fixpoint over states projected to
        // rsp/rbp at block boundaries — cheap, and exactly what a callee
        // inherits across a call edge that the verifier can rely on (the
        // paper's P2 window argument needs the stack depth, nothing else).
        let prepass = projected_fixpoint(&cfg, &idom, &config, &balanced);

        // Independent per-group fixpoints, scheduled across threads.
        let ctx = GroupCtx {
            cfg: &cfg,
            idom: &idom,
            config: &config,
            group_of: &group_of,
            seeded: &seeded,
            prepass: &prepass,
            balanced: &balanced,
        };
        let results = run_group_fixpoints(&ctx, &members, threads);

        // Deterministic assembly: every block belongs to exactly one group.
        let mut in_states: Vec<Option<AbsState>> = vec![None; n];
        for group in results {
            for (b, s) in group {
                in_states[b] = Some(s);
            }
        }
        let rel_facts: u64 = in_states.iter().flatten().map(|s| s.rels.len() as u64).sum();
        METRICS.absint_relational_facts.observe(rel_facts);
        Analysis { cfg, config, in_states }
    }

    /// The reconstructed control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The abstract value of `reg` just before the instruction at
    /// `offset` executes; `None` when `offset` is unreachable or not an
    /// instruction start.
    #[must_use]
    pub fn value_before(&self, offset: usize, reg: Reg) -> Option<AVal> {
        let (state, _) = self.state_before(offset)?;
        Some(state.reg(reg).val)
    }

    /// The inclusive range of concrete addresses the store at `offset`
    /// can write to, when the analysis can bound it.
    #[must_use]
    pub fn store_addr_range(&self, offset: usize) -> Option<(u64, u64)> {
        let (state, _) = self.state_before(offset)?;
        let (_, inst) = self.inst_at(offset)?;
        let mem = *inst.stored_mem()?;
        state.eval_addr(&mem).abs_range(self.config.stack_hi)
    }

    /// Whether the store at `offset` provably stays inside the P1 data
    /// window `[store_lo, store_hi)` on every reachable execution.
    /// `false` for anything unprovable, unreachable, or not a store.
    #[must_use]
    pub fn store_safe(&self, offset: usize) -> bool {
        let Some((_, inst)) = self.inst_at(offset) else { return false };
        let size: u64 = match inst {
            Inst::Store { .. } | Inst::StoreImm { .. } => 8,
            Inst::Store8 { .. } => 1,
            _ => return false,
        };
        let Some(range) = self.store_addr_range(offset) else { return false };
        let (lo, hi) = range;
        lo >= self.config.store_lo && (hi as u128 + size as u128) <= self.config.store_hi as u128
    }

    /// The abstract value of `rsp` immediately *after* the instruction
    /// at `offset` executes (used to prove elided P2 guards: an
    /// explicit `rsp` write is safe if every possible result stays in
    /// the stack window). `None` when unreachable.
    #[must_use]
    pub fn rsp_after(&self, offset: usize) -> Option<AVal> {
        let (mut state, mut flags) = self.state_before(offset)?;
        let (_, inst) = self.inst_at(offset)?;
        step(&mut state, &mut flags, &inst, &self.config);
        Some(state.reg(Reg::RSP).val)
    }

    /// Resolves `stack_hi`-relative values for callers that need
    /// concrete ranges (e.g. the rsp-window check in the verifier).
    #[must_use]
    pub fn concrete_range(&self, v: AVal) -> Option<(u64, u64)> {
        v.abs_range(self.config.stack_hi)
    }

    fn inst_at(&self, offset: usize) -> Option<(usize, Inst)> {
        let b = self.cfg.block_containing(offset)?;
        self.cfg.blocks[b].insts.iter().find(|(o, _)| *o == offset).map(|&(o, i)| (o, i))
    }

    fn state_before(&self, offset: usize) -> Option<(AbsState, LocalFlags)> {
        let b = self.cfg.block_containing(offset)?;
        let mut state = self.in_states[b].clone()?;
        let mut flags = LocalFlags::default();
        for &(off, inst) in &self.cfg.blocks[b].insts {
            if off == offset {
                return Some((state, flags));
            }
            step(&mut state, &mut flags, &inst, &self.config);
        }
        None
    }
}

/// Executes a whole block from its in-state.
pub(crate) fn exec_block(
    cfg: &Cfg,
    b: usize,
    mut state: AbsState,
    config: &AnalysisConfig,
) -> (AbsState, LocalFlags) {
    let mut flags = LocalFlags::default();
    for &(_, inst) in &cfg.blocks[b].insts {
        step(&mut state, &mut flags, &inst, config);
    }
    (state, flags)
}

/// The direct-call target offset of `from`'s terminator, if any.
pub(crate) fn call_target(cfg: &Cfg, from: usize) -> Option<usize> {
    let &(_, Inst::Call { rel }) = cfg.blocks[from].insts.last()? else { return None };
    Some((cfg.blocks[from].end as i64 + i64::from(rel)) as usize)
}

/// Maps a block out-state across one outgoing edge. `balanced` holds
/// the entry offsets of functions proven stack-balanced (see
/// [`balanced_entries`]); a `CallFall` edge from a direct call to one
/// of them keeps the caller's `rsp`/`rbp`.
fn apply_edge(
    cfg: &Cfg,
    from: usize,
    out: &AbsState,
    flags: &LocalFlags,
    edge: &Edge,
    config: &AnalysisConfig,
    balanced: &BTreeSet<usize>,
) -> Option<AbsState> {
    match edge.kind {
        EdgeKind::Fall | EdgeKind::Jump | EdgeKind::Indirect => Some(out.clone()),
        EdgeKind::BranchTaken | EdgeKind::BranchFall => {
            let (_, last) = *cfg.blocks[from].insts.last()?;
            let Inst::Jcc { cc, .. } = last else { return Some(out.clone()) };
            let cond = if edge.kind == EdgeKind::BranchTaken { cc } else { cc.negate() };
            refine(out.clone(), flags, cond)
        }
        EdgeKind::CallTo => {
            // The call pushes a return address the analysis does not model.
            let mut s = out.clone();
            let mut scratch = LocalFlags::default();
            let rsp = s.reg(Reg::RSP).val;
            let new_rsp = aval_add(rsp, AVal::exact(-8));
            s.write_mem(&mut scratch, new_rsp, 8, AVal::Top, None, config);
            s.set_reg(&mut scratch, Reg::RSP, new_rsp, None);
            Some(s)
        }
        EdgeKind::CallFall => {
            // The callee may clobber every register and every stack
            // slot (its guarded stores may legally reach the whole P1
            // window, the caller's frame included) — but a callee
            // separately proven stack-balanced returns with the
            // caller's `rsp` and `rbp` values intact.
            let mut s = AbsState::havoc();
            if call_target(cfg, from).is_some_and(|t| balanced.contains(&t)) {
                s.regs[RSP] = Tracked { val: out.regs[RSP].val, origin: None };
                s.regs[RBP] = Tracked { val: out.regs[RBP].val, origin: None };
            }
            Some(s)
        }
    }
}

/// Projects a state down to the stack-shape facts (`rsp`/`rbp` values)
/// that are allowed to flow across function boundaries. Origins and
/// frame slots are dropped: a callee must not rely on the caller's
/// frame contents (the original analysis already havocs them on
/// return, so this loses nothing the queries could observe).
fn project(s: &AbsState) -> AbsState {
    let mut p = AbsState { regs: Default::default(), slots: BTreeMap::new(), rels: Vec::new() };
    p.regs[RSP] = Tracked { val: s.regs[RSP].val, origin: None };
    p.regs[RBP] = Tracked { val: s.regs[RBP].val, origin: None };
    p
}

/// Byte offsets of function entries whose bodies provably restore the
/// stack discipline on every return: at each reachable `ret`, `rsp`
/// equals its entry value (still pointing at the pushed return
/// address) and `rbp` carries the caller's [`AVal::EntryRbp`] token,
/// round-tripped through the frame save slot. The proof runs
/// *entry-relative* — `Stack(0)` is the callee's own entry `rsp` — so
/// it holds for every call site at once. It is sound only under CFI
/// (the P5 shadow stack pins each `ret` to its call site), which is
/// exactly when the verifier consults analysis verdicts.
///
/// Verdicts grow over stratified rounds: round `k` may assume round
/// `k-1`'s verdicts at internal `CallFall` edges, so a (mutually)
/// recursive function can never certify itself.
fn balanced_entries(
    cfg: &Cfg,
    idom: &[Option<usize>],
    entries: &[usize],
    group_of: &[usize],
    members: &[Vec<usize>],
    seeded: &[bool],
    config: &AnalysisConfig,
) -> BTreeSet<usize> {
    let n = cfg.blocks.len();
    let mut balanced = BTreeSet::new();
    loop {
        let mut grew = false;
        'groups: for (g, mem) in members.iter().enumerate() {
            let Some(&entry_off) = entries.get(g) else { continue };
            if balanced.contains(&entry_off) {
                continue;
            }
            let Some(&eb) = mem.iter().find(|&&b| cfg.blocks[b].start == entry_off) else {
                continue;
            };
            // A cut edge into any non-entry member carries flows this
            // relative fixpoint cannot see; give up on the group.
            if mem.iter().any(|&b| seeded[b] && b != eb) {
                continue;
            }
            let mut prepass: Vec<Option<AbsState>> = vec![None; n];
            prepass[eb] = Some(AbsState::balance_entry());
            let mut bseed = vec![false; n];
            bseed[eb] = true;
            let ctx = GroupCtx {
                cfg,
                idom,
                config,
                group_of,
                seeded: &bseed,
                prepass: &prepass,
                balanced: &balanced,
            };
            for (b, state) in group_fixpoint(&ctx, mem) {
                let Some(&(_, Inst::Ret)) = cfg.blocks[b].insts.last() else { continue };
                let (out, _) = exec_block(cfg, b, state, config);
                if out.reg(Reg::RSP).val != AVal::Stack(Interval::exact(0))
                    || out.reg(Reg::RBP).val != AVal::EntryRbp
                {
                    continue 'groups;
                }
            }
            balanced.insert(entry_off);
            grew = true;
        }
        if !grew {
            return balanced;
        }
    }
}

/// Whole-program fixpoint over *projected* states. Identical worklist,
/// widening and edge transforms to the full analysis, but every edge
/// output is projected before merging, so states stay tiny (two
/// registers, no slots) and the pass is cheap even on large programs.
/// Its in-state at block `b` over-approximates the projection of every
/// full-analysis flow into `b`, which is what makes it a sound seed
/// for the per-function fixpoints.
pub(crate) fn projected_fixpoint(
    cfg: &Cfg,
    idom: &[Option<usize>],
    config: &AnalysisConfig,
    balanced: &BTreeSet<usize>,
) -> Vec<Option<AbsState>> {
    let n = cfg.blocks.len();
    let mut in_states: Vec<Option<AbsState>> = vec![None; n];
    let mut visits: Vec<u32> = vec![0; n];
    in_states[cfg.entry] = Some(AbsState::entry());

    let mut work: Vec<usize> = vec![cfg.entry];
    let mut queued = vec![false; n];
    queued[cfg.entry] = true;
    let (mut iters, mut widens) = (0u64, 0u64);
    while let Some(b) = work.pop() {
        queued[b] = false;
        iters += 1;
        let Some(state) = in_states[b].clone() else { continue };
        let (out, flags) = exec_block(cfg, b, state, config);
        for edge in cfg.blocks[b].edges.clone() {
            let Some(next) = apply_edge(cfg, b, &out, &flags, &edge, config, balanced) else {
                continue;
            };
            let next = project(&next);
            let to = edge.to;
            let merged = match &in_states[to] {
                None => next,
                Some(old) => {
                    let back = Cfg::dominates(idom, to, b);
                    let widen =
                        (back && visits[to] >= WIDEN_AFTER) || visits[to] >= FORCE_WIDEN_AFTER;
                    widens += u64::from(widen);
                    old.merge(&next, widen)
                }
            };
            if in_states[to].as_ref() != Some(&merged) {
                in_states[to] = Some(merged);
                visits[to] += 1;
                if !queued[to] {
                    queued[to] = true;
                    work.push(to);
                }
            }
        }
    }
    METRICS.analysis_fixpoint_iters.observe(iters);
    METRICS.analysis_widenings.observe(widens);
    in_states
}

/// Whether an edge crosses a group boundary and must therefore be
/// replaced by the pre-pass seed at its target. `CallTo`/`Indirect`
/// edges are always cut (they are the inter-procedural edges even when
/// both ends land in the same group, e.g. recursion); everything else
/// is cut exactly when it leaves the group. `CallFall` stays internal:
/// its transform (`AbsState::havoc`) ignores the input state entirely.
pub(crate) fn is_cut_edge(kind: EdgeKind, from_group: usize, to_group: usize) -> bool {
    matches!(kind, EdgeKind::CallTo | EdgeKind::Indirect) || from_group != to_group
}

/// Shared read-only inputs for the per-group fixpoints.
pub(crate) struct GroupCtx<'a> {
    pub(crate) cfg: &'a Cfg,
    pub(crate) idom: &'a [Option<usize>],
    pub(crate) config: &'a AnalysisConfig,
    pub(crate) group_of: &'a [usize],
    pub(crate) seeded: &'a [bool],
    pub(crate) prepass: &'a [Option<AbsState>],
    pub(crate) balanced: &'a BTreeSet<usize>,
}

/// Runs the full-precision fixpoint restricted to one group's blocks.
///
/// Cut edges are skipped; their effect is folded into the fixed seeds,
/// so the iteration never reads state produced by another group — the
/// per-group problems are independent and the result cannot depend on
/// scheduling. Termination is the standard widening argument: the
/// seeds never change during the loop, and the global dominator tree
/// still identifies this group's back edges (dominance restricted to a
/// subgraph that contains the dominator paths is unchanged).
pub(crate) fn group_fixpoint(ctx: &GroupCtx<'_>, members: &[usize]) -> Vec<(usize, AbsState)> {
    let local = |b: usize| members.binary_search(&b).expect("edge target in group");
    let m = members.len();
    let mut in_states: Vec<Option<AbsState>> = vec![None; m];
    let mut visits: Vec<u32> = vec![0; m];
    let mut work: Vec<usize> = Vec::new();
    let mut queued = vec![false; m];
    // Seed in ascending block order so the LIFO pop order — and with it
    // the widening history — is a pure function of the group's shape.
    for (lb, &b) in members.iter().enumerate() {
        if ctx.seeded[b] {
            if let Some(seed) = &ctx.prepass[b] {
                in_states[lb] = Some(seed.clone());
                work.push(lb);
                queued[lb] = true;
            }
        }
    }
    let (mut iters, mut widens) = (0u64, 0u64);
    while let Some(lb) = work.pop() {
        queued[lb] = false;
        iters += 1;
        let b = members[lb];
        let Some(state) = in_states[lb].clone() else { continue };
        let (out, flags) = exec_block(ctx.cfg, b, state, ctx.config);
        for edge in ctx.cfg.blocks[b].edges.clone() {
            if is_cut_edge(edge.kind, ctx.group_of[b], ctx.group_of[edge.to]) {
                continue;
            }
            let Some(next) = apply_edge(ctx.cfg, b, &out, &flags, &edge, ctx.config, ctx.balanced)
            else {
                continue;
            };
            let lt = local(edge.to);
            let merged = match &in_states[lt] {
                None => next,
                Some(old) => {
                    let back = Cfg::dominates(ctx.idom, edge.to, b);
                    let widen =
                        (back && visits[lt] >= WIDEN_AFTER) || visits[lt] >= FORCE_WIDEN_AFTER;
                    widens += u64::from(widen);
                    old.merge(&next, widen)
                }
            };
            if in_states[lt].as_ref() != Some(&merged) {
                in_states[lt] = Some(merged);
                visits[lt] += 1;
                if !queued[lt] {
                    queued[lt] = true;
                    work.push(lt);
                }
            }
        }
    }
    // Bounded narrowing: a fixed number of decreasing rounds recompute
    // every in-state as the plain (unwidened) join of its intra-group
    // edge contributions — computed Jacobi-style from the converged
    // states, so the result is schedule-independent — and replace only
    // the endpoints widening blew out (see [`AVal::narrow`]). This
    // pulls loop-head counters back from `[0, MAX]` to the guarded
    // range without re-running the ascending iteration.
    let mut narrows = 0u64;
    for _ in 0..NARROW_ROUNDS {
        let mut recomputed: Vec<Option<AbsState>> = members
            .iter()
            .map(|&b| if ctx.seeded[b] { ctx.prepass[b].clone() } else { None })
            .collect();
        for (la, &a) in members.iter().enumerate() {
            let Some(state) = in_states[la].clone() else { continue };
            let (out, flags) = exec_block(ctx.cfg, a, state, ctx.config);
            for edge in ctx.cfg.blocks[a].edges.clone() {
                if is_cut_edge(edge.kind, ctx.group_of[a], ctx.group_of[edge.to]) {
                    continue;
                }
                let Some(next) =
                    apply_edge(ctx.cfg, a, &out, &flags, &edge, ctx.config, ctx.balanced)
                else {
                    continue;
                };
                let lt = local(edge.to);
                recomputed[lt] = Some(match recomputed[lt].take() {
                    None => next,
                    Some(acc) => acc.merge(&next, false),
                });
            }
        }
        for (lt, rec) in recomputed.iter().enumerate() {
            if let (Some(cur), Some(rec)) = (&in_states[lt], rec) {
                let narrowed = cur.narrow(rec);
                if &narrowed != cur {
                    narrows += 1;
                    in_states[lt] = Some(narrowed);
                }
            }
        }
    }
    METRICS.analysis_fixpoint_iters.observe(iters);
    METRICS.analysis_widenings.observe(widens);
    METRICS.absint_narrowings.observe(narrows);
    members.iter().zip(in_states).filter_map(|(&b, s)| s.map(|s| (b, s))).collect()
}

/// Schedules the independent group fixpoints over `threads` workers.
/// Work-claiming order (largest group first) affects only wall-clock;
/// each group's result is computed in isolation, so the collected set
/// is identical for every schedule.
fn run_group_fixpoints(
    ctx: &GroupCtx<'_>,
    members: &[Vec<usize>],
    threads: usize,
) -> Vec<Vec<(usize, AbsState)>> {
    let workers = threads.min(members.len());
    if workers <= 1 {
        return members.iter().map(|m| group_fixpoint(ctx, m)).collect();
    }
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(members[g].len()));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Vec<(usize, AbsState)>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&g) = order.get(i) else { break };
                let r = group_fixpoint(ctx, &members[g]);
                results.lock().expect("group results lock").push(r);
            });
        }
    });
    results.into_inner().expect("group results lock")
}

/// Applies the branch condition `cond` to the out-state.
/// `None` means the edge is infeasible.
fn refine(state: AbsState, flags: &LocalFlags, cond: CondCode) -> Option<AbsState> {
    match &flags.flag {
        FlagState::Unknown => Some(state),
        FlagState::Cmp(snap) => refine_with_snap(state, snap, cond),
        FlagState::Bool { snap, cc } => match cond {
            CondCode::E => refine_with_snap(state, snap, cc.negate()),
            CondCode::Ne => refine_with_snap(state, snap, *cc),
            _ => Some(state),
        },
    }
}

fn refine_with_snap(mut state: AbsState, snap: &CmpSnap, cond: CondCode) -> Option<AbsState> {
    for &sub in &snap.lhs_subs {
        if !apply_constraint(&mut state, sub, cond, snap.rhs) {
            return None;
        }
    }
    let swapped = swap_cond(cond);
    for &sub in &snap.rhs_subs {
        if !apply_constraint(&mut state, sub, swapped, snap.lhs) {
            return None;
        }
    }
    // A strict/affine order between two slot-backed values also yields
    // a symbolic bound that outlives the compared intervals: refining
    // the bound slot later (e.g. an in-loop clamp test) transfers to
    // the subject through [`AbsState::tightened`].
    let rel = match cond {
        CondCode::L => Some((&snap.lhs_subs, &snap.rhs_subs, -1)),
        CondCode::Le => Some((&snap.lhs_subs, &snap.rhs_subs, 0)),
        CondCode::G => Some((&snap.rhs_subs, &snap.lhs_subs, -1)),
        CondCode::Ge => Some((&snap.rhs_subs, &snap.lhs_subs, 0)),
        _ => None,
    };
    if let Some((subs, bounds, add)) = rel {
        for sub in subs.iter().filter_map(Subject::as_slot) {
            for bound in bounds.iter().filter_map(Subject::as_slot) {
                state.add_rel(sub, bound, add);
            }
        }
    }
    Some(state)
}

/// Narrows `subject` under `subject cond bound`; `false` = infeasible.
fn apply_constraint(state: &mut AbsState, subject: Subject, cond: CondCode, bound: AVal) -> bool {
    let cur = match subject {
        Subject::Reg(r) => state.regs[r as usize].val,
        Subject::Slot(d) => state.slots.get(&d).map_or(AVal::Top, |t| t.val),
    };
    let refined = match refine_aval(cur, cond, bound) {
        Refined::Infeasible => return false,
        Refined::Unchanged => return true,
        Refined::To(v) => v,
    };
    match subject {
        Subject::Reg(r) => state.regs[r as usize].val = refined,
        Subject::Slot(d) => {
            let entry = state.slots.entry(d).or_default();
            entry.val = refined;
        }
    }
    true
}

enum Refined {
    Infeasible,
    Unchanged,
    To(AVal),
}

fn refine_aval(cur: AVal, cond: CondCode, bound: AVal) -> Refined {
    // Equality against a stack pointer transfers the representation.
    if cond == CondCode::E {
        if let AVal::Stack(biv) = bound {
            return match cur {
                AVal::Top => Refined::To(AVal::Stack(biv)),
                AVal::Stack(civ) => match civ.meet(biv) {
                    Some(m) => Refined::To(AVal::Stack(m)),
                    None => Refined::Infeasible,
                },
                AVal::Val(_) | AVal::NonStack | AVal::EntryRbp => Refined::Unchanged,
            };
        }
    }
    let AVal::Val(biv) = bound else { return Refined::Unchanged };
    let cur_iv = match cur {
        AVal::Val(iv) => Some(iv),
        AVal::Top => None,
        AVal::Stack(_) | AVal::NonStack | AVal::EntryRbp => return Refined::Unchanged,
    };
    // The constraint interval the subject must meet (signed view), or a
    // direct verdict for the cases that need extra care.
    let constraint: Option<Interval> = match cond {
        CondCode::E => Some(biv),
        CondCode::Ne => {
            // Only useful for shaving an exact endpoint.
            if let (Some(civ), Some(b)) = (cur_iv, biv.as_exact()) {
                if civ.as_exact() == Some(b) {
                    return Refined::Infeasible;
                }
                if civ.lo == b {
                    return Refined::To(AVal::Val(Interval::new(b + 1, civ.hi)));
                }
                if civ.hi == b {
                    return Refined::To(AVal::Val(Interval::new(civ.lo, b - 1)));
                }
            }
            return Refined::Unchanged;
        }
        CondCode::L => bounded_above(biv.hi as i128 - 1),
        CondCode::Le => bounded_above(biv.hi as i128),
        CondCode::G => bounded_below(biv.lo as i128 + 1),
        CondCode::Ge => bounded_below(biv.lo as i128),
        // Unsigned comparisons: sound only when the bound is known
        // non-negative (unsigned order then coincides with signed on
        // the constrained range). `x <u b` additionally proves `x >= 0`.
        CondCode::B if biv.lo >= 0 => {
            if biv.hi == 0 {
                return Refined::Infeasible; // x <u 0 is impossible
            }
            Some(Interval::new(0, biv.hi - 1))
        }
        CondCode::Be if biv.lo >= 0 => Some(Interval::new(0, biv.hi)),
        // `x >u b` only narrows an already-non-negative subject (a
        // negative signed x is a huge unsigned value satisfying it).
        CondCode::A if biv.lo >= 0 && cur_iv.is_some_and(|c| c.lo >= 0) => {
            bounded_below(biv.lo as i128 + 1)
        }
        CondCode::Ae if biv.lo >= 0 && cur_iv.is_some_and(|c| c.lo >= 0) => {
            bounded_below(biv.lo as i128)
        }
        _ => return Refined::Unchanged,
    };
    let Some(constraint) = constraint else { return Refined::Infeasible };
    match cur_iv {
        None => Refined::To(AVal::Val(constraint)),
        Some(civ) => match civ.meet(constraint) {
            Some(m) if m == civ => Refined::Unchanged,
            Some(m) => Refined::To(AVal::Val(m)),
            None => Refined::Infeasible,
        },
    }
}

/// `[MIN, hi]` clamped into `i64`, `None` when empty.
fn bounded_above(hi: i128) -> Option<Interval> {
    if hi < i64::MIN as i128 {
        return None;
    }
    Some(Interval::new(i64::MIN, hi.min(i64::MAX as i128) as i64))
}

/// `[lo, MAX]` clamped into `i64`, `None` when empty.
fn bounded_below(lo: i128) -> Option<Interval> {
    if lo > i64::MAX as i128 {
        return None;
    }
    Some(Interval::new(lo.max(i64::MIN as i128) as i64, i64::MAX))
}

/// `a cond b  <=>  b swap_cond(cond) a`.
fn swap_cond(cc: CondCode) -> CondCode {
    match cc {
        CondCode::E => CondCode::E,
        CondCode::Ne => CondCode::Ne,
        CondCode::L => CondCode::G,
        CondCode::G => CondCode::L,
        CondCode::Le => CondCode::Ge,
        CondCode::Ge => CondCode::Le,
        CondCode::B => CondCode::A,
        CondCode::A => CondCode::B,
        CondCode::Be => CondCode::Ae,
        CondCode::Ae => CondCode::Be,
    }
}

fn aval_add(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Val(x), AVal::Val(y)) => x.add(y).map_or(AVal::Top, AVal::Val),
        (AVal::Stack(x), AVal::Val(y)) | (AVal::Val(y), AVal::Stack(x)) => {
            x.add(y).map_or(AVal::Top, AVal::Stack)
        }
        // Displacement 0 off a non-stack pointer is still non-stack;
        // any other offset could land anywhere.
        (AVal::NonStack, AVal::Val(y)) | (AVal::Val(y), AVal::NonStack)
            if y.as_exact() == Some(0) =>
        {
            AVal::NonStack
        }
        _ => AVal::Top,
    }
}

fn aval_sub(a: AVal, b: AVal) -> AVal {
    match (a, b) {
        (AVal::Val(x), AVal::Val(y)) => x.sub(y).map_or(AVal::Top, AVal::Val),
        (AVal::Stack(x), AVal::Val(y)) => x.sub(y).map_or(AVal::Top, AVal::Stack),
        (AVal::Stack(x), AVal::Stack(y)) => x.sub(y).map_or(AVal::Top, AVal::Val),
        _ => AVal::Top,
    }
}

/// Mirrors `Cpu`'s exact ALU semantics on known constants; `None` for
/// the faulting cases (divide by zero, `MIN / -1`) — the post-state of
/// a faulting instruction is unreachable, so `Top` is sound there.
fn alu_exact(op: AluOp, x: u64, y: u64) -> Option<u64> {
    Some(match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl((y & 63) as u32),
        AluOp::Shr => x.wrapping_shr((y & 63) as u32),
        AluOp::Sar => ((x as i64) >> (y & 63)) as u64,
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::UDiv => {
            if y == 0 {
                return None;
            }
            x / y
        }
        AluOp::SDiv => {
            let (a, b) = (x as i64, y as i64);
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            (a / b) as u64
        }
        AluOp::URem => {
            if y == 0 {
                return None;
            }
            x % y
        }
        AluOp::SRem => {
            let (a, b) = (x as i64, y as i64);
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            (a % b) as u64
        }
    })
}

fn alu_transfer(op: AluOp, a: AVal, b: AVal) -> AVal {
    // Exact-exact: mirror the machine bit-for-bit.
    if let (AVal::Val(x), AVal::Val(y)) = (a, b) {
        if let (Some(xv), Some(yv)) = (x.as_exact(), y.as_exact()) {
            return match alu_exact(op, xv as u64, yv as u64) {
                Some(r) => AVal::exact(r as i64),
                None => AVal::Top,
            };
        }
    }
    match op {
        AluOp::Add => aval_add(a, b),
        AluOp::Sub => aval_sub(a, b),
        AluOp::And => {
            // `x & m` with a non-negative mask is in [0, m] regardless
            // of x — the workhorse for index clamping.
            let mask = match (a, b) {
                (_, AVal::Val(m)) if m.lo >= 0 => Some(m.hi),
                (AVal::Val(m), _) if m.lo >= 0 => Some(m.hi),
                _ => None,
            };
            mask.map_or(AVal::Top, |m| AVal::Val(Interval::new(0, m)))
        }
        AluOp::Mul => match (a, b) {
            (AVal::Val(x), AVal::Val(y)) => {
                let c = y.as_exact().map(|c| (x, c)).or_else(|| x.as_exact().map(|c| (y, c)));
                match c {
                    Some((iv, c)) => iv.mul_const(c).map_or(AVal::Top, AVal::Val),
                    None => AVal::Top,
                }
            }
            _ => AVal::Top,
        },
        AluOp::Shr => match (a, b) {
            // Logical shift of a non-negative value is monotone.
            (AVal::Val(x), AVal::Val(y)) if x.lo >= 0 => match y.as_exact() {
                Some(k) => {
                    let k = (k as u64 & 63) as u32;
                    AVal::Val(Interval::new(x.lo >> k, x.hi >> k))
                }
                None => AVal::Top,
            },
            _ => AVal::Top,
        },
        AluOp::Sar => match (a, b) {
            (AVal::Val(x), AVal::Val(y)) => match y.as_exact() {
                Some(k) => {
                    let k = (k as u64 & 63) as u32;
                    AVal::Val(Interval::new(x.lo >> k, x.hi >> k))
                }
                None => AVal::Top,
            },
            _ => AVal::Top,
        },
        AluOp::Shl => match (a, b) {
            (AVal::Val(x), AVal::Val(y)) if x.lo >= 0 => match y.as_exact() {
                Some(k) => {
                    let k = (k as u64 & 63) as u32;
                    let lo = (x.lo as i128) << k;
                    let hi = (x.hi as i128) << k;
                    Interval::from_i128(lo, hi).map_or(AVal::Top, AVal::Val)
                }
                None => AVal::Top,
            },
            _ => AVal::Top,
        },
        AluOp::UDiv => match (a, b) {
            (AVal::Val(x), AVal::Val(y)) if x.lo >= 0 => match y.as_exact() {
                Some(c) if c > 0 => AVal::Val(Interval::new(x.lo / c, x.hi / c)),
                _ => AVal::Top,
            },
            _ => AVal::Top,
        },
        _ => AVal::Top,
    }
}

/// One instruction's abstract transfer function.
fn step(state: &mut AbsState, flags: &mut LocalFlags, inst: &Inst, config: &AnalysisConfig) {
    match *inst {
        Inst::Nop | Inst::Halt | Inst::Abort { .. } => {}
        // Control transfers are modelled on edges, not in the step.
        Inst::Jmp { .. }
        | Inst::Jcc { .. }
        | Inst::JmpInd { .. }
        | Inst::Call { .. }
        | Inst::CallInd { .. }
        | Inst::Ret => {}
        Inst::Ocall { .. } | Inst::AexProbe => {
            // The wrapper returns a result in rax; nothing else in the
            // tracked state changes (host writes land outside the stack).
            state.set_reg(flags, Reg::RAX, AVal::Top, None);
        }
        Inst::MovRR { dst, src } => {
            let t = state.reg(src);
            state.set_reg(flags, dst, t.val, t.origin);
        }
        Inst::MovRI { dst, imm } => {
            let val = if config.nonstack_imms.contains(&imm) {
                AVal::NonStack
            } else if config.opaque_imms.contains(&imm) {
                AVal::Top
            } else {
                AVal::exact(imm as i64)
            };
            state.set_reg(flags, dst, val, None);
        }
        Inst::Lea { dst, mem } => {
            let v = state.eval_addr(&mem);
            state.set_reg(flags, dst, v, None);
        }
        Inst::Load { dst, mem } => {
            let addr = state.eval_addr(&mem);
            let t = state.read_mem(addr);
            state.set_reg(flags, dst, t.val, t.origin);
        }
        Inst::Load8 { dst, .. } => {
            state.set_reg(flags, dst, AVal::Val(Interval::new(0, 255)), None);
        }
        Inst::Store { mem, src } => {
            let addr = state.eval_addr(&mem);
            let t = state.reg(src);
            state.write_mem(flags, addr, 8, t.val, t.origin, config);
            // After an exact stack store the source register equals the
            // freshly written slot.
            if let AVal::Stack(iv) = addr {
                if let Some(d) = iv.as_exact() {
                    state.regs[src.index() as usize].origin = Some(d);
                }
            }
        }
        Inst::Store8 { mem, .. } => {
            let addr = state.eval_addr(&mem);
            state.write_mem(flags, addr, 1, AVal::Top, None, config);
        }
        Inst::StoreImm { mem, imm } => {
            let addr = state.eval_addr(&mem);
            state.write_mem(flags, addr, 8, AVal::exact(i64::from(imm)), None, config);
        }
        Inst::Push { reg } => {
            let t = state.reg(reg);
            let new_rsp = aval_add(state.reg(Reg::RSP).val, AVal::exact(-8));
            state.write_mem(flags, new_rsp, 8, t.val, t.origin, config);
            state.set_reg(flags, Reg::RSP, new_rsp, None);
        }
        Inst::Pop { reg } => {
            let rsp = state.reg(Reg::RSP).val;
            let t = state.read_mem(rsp);
            if reg == Reg::RSP {
                // The increment is overwritten by the popped value.
                state.set_reg(flags, Reg::RSP, t.val, t.origin);
            } else {
                let new_rsp = aval_add(rsp, AVal::exact(8));
                state.set_reg(flags, Reg::RSP, new_rsp, None);
                state.set_reg(flags, reg, t.val, t.origin);
            }
        }
        Inst::AluRR { op, dst, src } => {
            let v = alu_transfer(op, state.reg(dst).val, state.reg(src).val);
            state.set_reg(flags, dst, v, None);
            flags.flag = FlagState::Unknown;
        }
        Inst::AluRI { op, dst, imm } => {
            let v = alu_transfer(op, state.reg(dst).val, AVal::exact(imm));
            state.set_reg(flags, dst, v, None);
            flags.flag = FlagState::Unknown;
        }
        Inst::Neg { reg } => {
            let v = match state.reg(reg).val {
                AVal::Val(iv) => iv.neg().map_or(AVal::Top, AVal::Val),
                _ => AVal::Top,
            };
            state.set_reg(flags, reg, v, None);
            flags.flag = FlagState::Unknown;
        }
        Inst::Not { reg } => {
            let v = match state.reg(reg).val {
                AVal::Val(iv) => iv.not().map_or(AVal::Top, AVal::Val),
                _ => AVal::Top,
            };
            state.set_reg(flags, reg, v, None);
            flags.flag = FlagState::Unknown;
        }
        Inst::CmpRR { lhs, rhs } => {
            flags.flag = FlagState::Cmp(snap_of(state, lhs, Some(rhs), None));
        }
        Inst::CmpRI { lhs, imm } => {
            // `cmp b, 0` on a setcc result re-tests the original
            // comparison (the shape the compiler emits for `while`).
            if imm == 0 {
                if let Some((snap, cc)) = flags.bool_pred(lhs.index()) {
                    flags.flag = FlagState::Bool { snap: snap.clone(), cc };
                    return;
                }
            }
            flags.flag = FlagState::Cmp(snap_of(state, lhs, None, Some(imm)));
        }
        Inst::TestRR { lhs, rhs } => {
            // `test r, r` sets flags identically to `cmp r, 0`.
            if lhs == rhs {
                if let Some((snap, cc)) = flags.bool_pred(lhs.index()) {
                    flags.flag = FlagState::Bool { snap: snap.clone(), cc };
                } else {
                    flags.flag = FlagState::Cmp(snap_of(state, lhs, None, Some(0)));
                }
            } else {
                flags.flag = FlagState::Unknown;
            }
        }
        Inst::SetCc { cc, dst } => {
            let pred = match &flags.flag {
                FlagState::Cmp(snap) => Some((snap.clone(), cc)),
                _ => None,
            };
            state.set_reg(flags, dst, AVal::Val(Interval::new(0, 1)), None);
            if let Some((mut snap, cc)) = pred {
                // `dst` now holds the boolean, not the compared value.
                snap.lhs_subs.retain(|s| *s != Subject::Reg(dst.index()));
                snap.rhs_subs.retain(|s| *s != Subject::Reg(dst.index()));
                flags.bool_preds.push((dst.index(), snap, cc));
            }
        }
        Inst::CmpMem { .. } | Inst::FCmp { .. } => {
            flags.flag = FlagState::Unknown;
        }
        Inst::FpuRR { dst, .. }
        | Inst::CvtIF { dst, .. }
        | Inst::CvtFI { dst, .. }
        | Inst::FSqrt { dst, .. }
        | Inst::FNeg { dst, .. } => {
            state.set_reg(flags, dst, AVal::Top, None);
        }
    }
}

/// Builds the comparison snapshot for `cmp lhs, rhs/imm`.
fn snap_of(state: &AbsState, lhs: Reg, rhs: Option<Reg>, imm: Option<i64>) -> CmpSnap {
    let subs = |r: Reg| -> Vec<Subject> {
        let t = state.reg(r);
        let mut v = vec![Subject::Reg(r.index())];
        if let Some(d) = t.origin {
            v.push(Subject::Slot(d));
        }
        v
    };
    let lhs_t = state.reg(lhs);
    let (rhs_subs, rhs_val) = match (rhs, imm) {
        (Some(r), _) => (subs(r), state.reg(r).val),
        (None, Some(i)) => (Vec::new(), AVal::exact(i)),
        (None, None) => (Vec::new(), AVal::Top),
    };
    CmpSnap { lhs_subs: subs(lhs), rhs_subs, lhs: lhs_t.val, rhs: rhs_val }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflection_isa::{disassemble, encode, encoded_len, CondCode, MemOperand};

    /// Test-local pseudo-instructions: direct calls by function index
    /// and conditional branches by instruction index within a function.
    enum I {
        R(Inst),
        Call(usize),
        Jcc(CondCode, usize),
    }

    fn ilen(i: &I) -> usize {
        match i {
            I::R(inst) => encoded_len(inst),
            I::Call(_) => encoded_len(&Inst::Call { rel: 0 }),
            I::Jcc(cc, _) => encoded_len(&Inst::Jcc { cc: *cc, rel: 0 }),
        }
    }

    fn assemble(funcs: &[Vec<I>]) -> Vec<u8> {
        let mut offsets: Vec<Vec<usize>> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        for f in funcs {
            starts.push(cursor);
            let mut offs = Vec::new();
            for i in f {
                offs.push(cursor);
                cursor += ilen(i);
            }
            offsets.push(offs);
        }
        let mut code = Vec::with_capacity(cursor);
        for (fi, f) in funcs.iter().enumerate() {
            for (ii, i) in f.iter().enumerate() {
                let here = offsets[fi][ii];
                let end = here + ilen(i);
                match i {
                    I::R(inst) => encode(inst, &mut code),
                    I::Call(t) => {
                        encode(
                            &Inst::Call { rel: (starts[*t] as i64 - end as i64) as i32 },
                            &mut code,
                        );
                    }
                    I::Jcc(cc, t) => {
                        let rel = (offsets[fi][*t] as i64 - end as i64) as i32;
                        encode(&Inst::Jcc { cc: *cc, rel }, &mut code);
                    }
                }
            }
        }
        code
    }

    fn mem(base: Option<Reg>, disp: i32) -> MemOperand {
        MemOperand { base, index: None, disp }
    }

    /// A three-function program with a widening-exercising loop and two
    /// stores provable in the `[0x1000, 0x2000)` window.
    fn sample_program() -> Vec<u8> {
        let start = vec![I::R(Inst::MovRI { dst: Reg::RCX, imm: 3 }), I::Call(1), I::R(Inst::Halt)];
        let main = vec![
            I::R(Inst::Push { reg: Reg::RBP }),
            I::R(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP }),
            I::R(Inst::MovRI { dst: Reg::RAX, imm: 0 }),
            I::R(Inst::MovRI { dst: Reg::RBX, imm: 0x1000 }),
            // loop head (instruction 4)
            I::R(Inst::Store { mem: mem(Some(Reg::RBX), 0), src: Reg::RAX }),
            I::R(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 }),
            I::R(Inst::CmpRI { lhs: Reg::RAX, imm: 10 }),
            I::Jcc(CondCode::L, 4),
            I::Call(2),
            I::R(Inst::Pop { reg: Reg::RBP }),
            I::R(Inst::Ret),
        ];
        let helper = vec![
            I::R(Inst::MovRI { dst: Reg::RDX, imm: 0x1100 }),
            I::R(Inst::StoreImm { mem: mem(Some(Reg::RDX), 0), imm: 7 }),
            I::R(Inst::Ret),
        ];
        assemble(&[start, main, helper])
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            store_lo: 0x1000,
            store_hi: 0x2000,
            stack_hi: 0x8000,
            stack_lo: 0x7000,
            opaque_imms: vec![],
            nonstack_imms: vec![],
        }
    }

    #[test]
    fn threaded_analysis_is_identical_to_serial() {
        let code = sample_program();
        let d = disassemble(&code, 0, &[]).unwrap();
        let base = Analysis::run_threaded(&d, config(), 1);
        for threads in [2, 4, 8] {
            let a = Analysis::run_threaded(&d, config(), threads);
            assert_eq!(base.in_states, a.in_states, "in-states diverged at threads={threads}");
        }
    }

    #[test]
    fn modular_analysis_keeps_elision_relevant_precision() {
        let code = sample_program();
        let d = disassemble(&code, 0, &[]).unwrap();
        let a = Analysis::run(&d, config());
        // Both stores sit at constant addresses inside the window; the
        // guard-elision pass depends on exactly this class of proof
        // surviving the function-modular split.
        let stores: Vec<usize> = d
            .insts()
            .iter()
            .filter(|(_, i, _)| matches!(i, Inst::Store { .. } | Inst::StoreImm { .. }))
            .map(|&(off, _, _)| off)
            .collect();
        assert_eq!(stores.len(), 2);
        for off in stores {
            assert!(a.store_safe(off), "store at {off:#x} must prove in-window");
        }
        // The callee still sees an exact stack depth through the cut
        // call edge (the P2 main-frame fact): rsp at main's entry is
        // exactly `stack_hi - 8` (one pushed return address).
        let main_entry = d.function_entries()[1];
        let rsp = a.value_before(main_entry, Reg::RSP).expect("main reachable");
        assert_eq!(a.concrete_range(rsp), Some((0x8000 - 8, 0x8000 - 8)));
    }

    /// Regression test for the stale-`SetCc`-subject bug: in the codegen
    /// bool-chain shape `cmp i, N; setcc l, rax; cmp rax, 0; jcc ne head`
    /// the `setcc` destination *is* the compared register, so the snapshot
    /// pushed into `bool_preds` must drop `Reg(rax)` as a subject (the
    /// register now holds the boolean, not `i`). With the stale subject the
    /// loop-exit refinement intersected `[0,1]` with `[8,+inf)`, proved the
    /// exit edge infeasible, and everything after the first counted loop
    /// of every function was analyzed as unreachable.
    #[test]
    fn bool_chain_loop_exit_is_reachable_and_narrowed() {
        let start = vec![I::Call(1), I::R(Inst::Halt)];
        let f = vec![
            I::R(Inst::Push { reg: Reg::RBP }),
            I::R(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP }),
            I::R(Inst::AluRI { op: AluOp::Sub, dst: Reg::RSP, imm: 16 }),
            I::R(Inst::MovRI { dst: Reg::RAX, imm: 0 }),
            I::R(Inst::Store { mem: mem(Some(Reg::RBP), -8), src: Reg::RAX }),
            // loop head (instruction 5): i += 1; rax = (i < 8); loop while rax != 0
            I::R(Inst::Load { dst: Reg::RAX, mem: mem(Some(Reg::RBP), -8) }),
            I::R(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 }),
            I::R(Inst::Store { mem: mem(Some(Reg::RBP), -8), src: Reg::RAX }),
            I::R(Inst::CmpRI { lhs: Reg::RAX, imm: 8 }),
            I::R(Inst::SetCc { cc: CondCode::L, dst: Reg::RAX }),
            I::R(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            I::Jcc(CondCode::Ne, 5),
            // post-loop (instruction 12): must be reachable with i == 8
            I::R(Inst::Load { dst: Reg::RAX, mem: mem(Some(Reg::RBP), -8) }),
            I::R(Inst::MovRI { dst: Reg::RBX, imm: 0x1000 }),
            I::R(Inst::Store { mem: mem(Some(Reg::RBX), 0), src: Reg::RAX }),
            I::R(Inst::AluRI { op: AluOp::Add, dst: Reg::RSP, imm: 16 }),
            I::R(Inst::Pop { reg: Reg::RBP }),
            I::R(Inst::Ret),
        ];
        let code = assemble(&[start, f]);
        let d = disassemble(&code, 0, &[]).unwrap();
        let a = Analysis::run(&d, config());
        let insts = d.insts();
        let f_first = 2; // start has two instructions
        let post_loop = insts[f_first + 12].0;
        let rax = a
            .value_before(post_loop + encoded_len(&insts[f_first + 12].1), Reg::RAX)
            .expect("the loop exit edge must be feasible");
        // Widening overshoots to [0, +inf); bounded narrowing plus the
        // boolean-predicate exit refinement must recover the exact bound.
        assert_eq!(a.concrete_range(rax), Some((8, 8)));
        let store_off = insts[f_first + 14].0;
        assert!(a.store_safe(store_off), "post-loop store must prove in-window");
        // The fix must hold identically under the threaded fixpoint.
        let serial = Analysis::run_threaded(&d, config(), 1);
        let threaded = Analysis::run_threaded(&d, config(), 4);
        assert_eq!(serial.in_states, threaded.in_states);
    }

    /// Difference-bound transfer: `i < n` recorded as a relational fact
    /// between two stack slots lets a later refinement of `n` tighten `i`
    /// — the interval domain alone cannot prove the store below, because
    /// at the compare both operands are unbounded.
    #[test]
    fn relational_fact_transfers_bound_refinement_between_slots() {
        let start = vec![I::Call(1), I::R(Inst::Halt)];
        let f = vec![
            I::R(Inst::Push { reg: Reg::RBP }),
            I::R(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP }),
            I::R(Inst::AluRI { op: AluOp::Sub, dst: Reg::RSP, imm: 32 }),
            // i and n arrive opaque (loads from untracked memory).
            I::R(Inst::MovRI { dst: Reg::RDX, imm: 0x3000 }),
            I::R(Inst::Load { dst: Reg::RAX, mem: mem(Some(Reg::RDX), 0) }),
            I::R(Inst::Store { mem: mem(Some(Reg::RBP), -8), src: Reg::RAX }),
            I::R(Inst::Load { dst: Reg::RCX, mem: mem(Some(Reg::RDX), 8) }),
            I::R(Inst::Store { mem: mem(Some(Reg::RBP), -16), src: Reg::RCX }),
            I::R(Inst::Load { dst: Reg::RAX, mem: mem(Some(Reg::RBP), -8) }),
            I::R(Inst::Load { dst: Reg::RCX, mem: mem(Some(Reg::RBP), -16) }),
            // i < n: records slot(-8) <= slot(-16) - 1, no interval change.
            I::R(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RCX }),
            I::Jcc(CondCode::Ge, 18),
            // n <= 63: refines slot(-16); the relational fact must carry
            // the new bound over to slot(-8) and its register copy.
            I::R(Inst::CmpRI { lhs: Reg::RCX, imm: 63 }),
            I::Jcc(CondCode::G, 18),
            // i >= 0 closes the range: i in [0, 62].
            I::R(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            I::Jcc(CondCode::L, 18),
            I::R(Inst::MovRI { dst: Reg::RBX, imm: 0x1000 }),
            I::R(Inst::Store {
                mem: MemOperand { base: Some(Reg::RBX), index: Some((Reg::RAX, 8)), disp: 0 },
                src: Reg::RCX,
            }),
            // bail target (instruction 18)
            I::R(Inst::AluRI { op: AluOp::Add, dst: Reg::RSP, imm: 32 }),
            I::R(Inst::Pop { reg: Reg::RBP }),
            I::R(Inst::Ret),
        ];
        let code = assemble(&[start, f]);
        let d = disassemble(&code, 0, &[]).unwrap();
        let a = Analysis::run(&d, config());
        let insts = d.insts();
        let store_off = insts[2 + 17].0;
        assert!(
            a.store_safe(store_off),
            "i in [0,62] via the relational fact puts base+8*i inside the window"
        );
        let serial = Analysis::run_threaded(&d, config(), 1);
        let threaded = Analysis::run_threaded(&d, config(), 4);
        assert_eq!(serial.in_states, threaded.in_states);
    }

    /// A callee that leaks stack depth (push without pop before `Ret`)
    /// must fail the balance pre-analysis, so the caller loses its exact
    /// `rsp` across the call — the soundness half of the leaf-call
    /// preservation rule.
    #[test]
    fn unbalanced_callee_havocs_caller_rsp() {
        let start = vec![I::Call(1), I::R(Inst::Halt)];
        let leaky = vec![I::R(Inst::Push { reg: Reg::RBP }), I::R(Inst::Ret)];
        let code = assemble(&[start, leaky]);
        let d = disassemble(&code, 0, &[]).unwrap();
        let a = Analysis::run(&d, config());
        let halt_off = d.insts()[1].0;
        match a.value_before(halt_off, Reg::RSP) {
            None => {}
            Some(rsp) => assert_eq!(
                a.concrete_range(rsp),
                None,
                "rsp must not survive a call to an unbalanced callee"
            ),
        }
    }
}
