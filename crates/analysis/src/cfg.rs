//! Control-flow graph reconstruction and dominators.
//!
//! [`Cfg::build`] re-derives basic blocks from a recursive-descent
//! [`Disassembly`], but — unlike [`Disassembly::blocks`], which is a
//! display aid — it materialises *every* edge the dataflow analysis
//! must traverse, each tagged with an [`EdgeKind`]:
//!
//! * `Call` instructions get an edge **into** the callee (the abstract
//!   state flows into the function body, preserving argument
//!   registers) *and* a fall-through edge to the return site, which
//!   the interpreter treats as a havoc point (the callee may clobber
//!   everything).
//! * Indirect jumps and calls get edges to every declared
//!   branch-table target — with CFI enforced those are the only
//!   possible destinations.
//!
//! Dominators are computed with the iterative Cooper–Harvey–Kennedy
//! algorithm over reverse postorder; the interpreter uses them to
//! recognise loop heads (back edges target a dominator) and apply
//! widening there.

use deflection_isa::{Disassembly, Inst};
use std::collections::{BTreeMap, BTreeSet};

/// Why an edge exists between two blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Straight-line flow into the next block (no terminator).
    Fall,
    /// Unconditional direct jump.
    Jump,
    /// Conditional branch, condition true.
    BranchTaken,
    /// Conditional branch, condition false (fall-through).
    BranchFall,
    /// Direct or indirect call: flow into the callee entry.
    CallTo,
    /// Return site of a call: flow resumes here after the callee.
    CallFall,
    /// Indirect jump to a declared branch-table target.
    Indirect,
}

/// A directed edge to another block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor block.
    pub to: usize,
    /// Edge classification.
    pub kind: EdgeKind,
}

/// A basic block: a maximal straight-line instruction run.
#[derive(Debug, Clone)]
pub struct Block {
    /// Byte offset of the first instruction.
    pub start: usize,
    /// Byte offset one past the last instruction.
    pub end: usize,
    /// Instructions with their byte offsets, in address order.
    pub insts: Vec<(usize, Inst)>,
    /// Outgoing edges.
    pub edges: Vec<Edge>,
}

/// A control-flow graph over basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
    /// Index of the block containing the program entry point.
    pub entry: usize,
    starts: BTreeMap<usize, usize>,
}

impl Cfg {
    /// Builds the graph from a disassembly.
    ///
    /// # Panics
    ///
    /// Panics if the disassembly is internally inconsistent (a branch
    /// target that is not an instruction start); `disassemble` never
    /// produces such a value.
    #[must_use]
    pub fn build(d: &Disassembly) -> Cfg {
        // Leaders: block boundaries. The disassembler's own leader set is
        // about decode roots; we additionally split after calls and
        // conditional branches so that every edge lands on a block start.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(d.entry);
        leaders.extend(d.indirect_targets.iter().copied());
        for &(off, inst, len) in d.insts() {
            let next = off + len;
            match inst {
                Inst::Jmp { rel } => {
                    leaders.insert(rel_target(next, rel));
                    leaders.insert(next);
                }
                Inst::Jcc { rel, .. } => {
                    leaders.insert(rel_target(next, rel));
                    leaders.insert(next);
                }
                Inst::Call { rel } => {
                    leaders.insert(rel_target(next, rel));
                    leaders.insert(next);
                }
                Inst::CallInd { .. } => {
                    leaders.insert(next);
                }
                Inst::JmpInd { .. } | Inst::Ret | Inst::Halt | Inst::Abort { .. } => {
                    leaders.insert(next);
                }
                _ => {}
            }
        }

        // Carve blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut starts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut current: Option<Block> = None;
        let mut prev_end = None;
        for &(off, inst, len) in d.insts() {
            // A gap in decoded offsets (between functions the descent
            // reached via different roots) also breaks a block.
            let contiguous = prev_end == Some(off);
            if leaders.contains(&off) || !contiguous {
                if let Some(b) = current.take() {
                    starts.insert(b.start, blocks.len());
                    blocks.push(b);
                }
                current =
                    Some(Block { start: off, end: off, insts: Vec::new(), edges: Vec::new() });
            }
            let b = current.as_mut().expect("block opened at first instruction");
            b.insts.push((off, inst));
            b.end = off + len;
            prev_end = Some(off + len);
        }
        if let Some(b) = current.take() {
            starts.insert(b.start, blocks.len());
            blocks.push(b);
        }

        // Wire edges.
        let indirect: Vec<usize> = d.indirect_targets.clone();
        let block_of =
            |off: usize| -> usize { *starts.get(&off).expect("edge target must be a block start") };
        for b in &mut blocks {
            let (end, last) = (b.end, b.insts.last().expect("blocks are non-empty").1);
            let mut edges = Vec::new();
            match last {
                Inst::Jmp { rel } => {
                    edges.push(Edge { to: block_of(rel_target(end, rel)), kind: EdgeKind::Jump });
                }
                Inst::Jcc { rel, .. } => {
                    edges.push(Edge {
                        to: block_of(rel_target(end, rel)),
                        kind: EdgeKind::BranchTaken,
                    });
                    edges.push(Edge { to: block_of(end), kind: EdgeKind::BranchFall });
                }
                Inst::Call { rel } => {
                    edges.push(Edge { to: block_of(rel_target(end, rel)), kind: EdgeKind::CallTo });
                    edges.push(Edge { to: block_of(end), kind: EdgeKind::CallFall });
                }
                Inst::CallInd { .. } => {
                    for &t in &indirect {
                        edges.push(Edge { to: block_of(t), kind: EdgeKind::CallTo });
                    }
                    edges.push(Edge { to: block_of(end), kind: EdgeKind::CallFall });
                }
                Inst::JmpInd { .. } => {
                    for &t in &indirect {
                        edges.push(Edge { to: block_of(t), kind: EdgeKind::Indirect });
                    }
                }
                Inst::Ret | Inst::Halt | Inst::Abort { .. } => {}
                _ => {
                    // Block ended because the next offset is a leader.
                    if starts.contains_key(&end) {
                        edges.push(Edge { to: block_of(end), kind: EdgeKind::Fall });
                    }
                }
            }
            b.edges = edges;
        }

        let entry = block_of(d.entry);
        Cfg { blocks, entry, starts }
    }

    /// Builds a graph directly from hand-assembled blocks (test support;
    /// block `start`/`end`/`insts` need only be consistent with the
    /// edges the caller wires).
    ///
    /// # Panics
    ///
    /// Panics if two blocks share a start offset or `entry` is out of
    /// range.
    #[must_use]
    pub fn from_blocks(blocks: Vec<Block>, entry: usize) -> Cfg {
        assert!(entry < blocks.len(), "entry block out of range");
        let mut starts = BTreeMap::new();
        for (i, b) in blocks.iter().enumerate() {
            let clash = starts.insert(b.start, i);
            assert!(clash.is_none(), "duplicate block start {:#x}", b.start);
        }
        Cfg { blocks, entry, starts }
    }

    /// Index of the block whose byte range contains `offset`.
    #[must_use]
    pub fn block_containing(&self, offset: usize) -> Option<usize> {
        let (_, &idx) = self.starts.range(..=offset).next_back()?;
        let b = &self.blocks[idx];
        (offset >= b.start && offset < b.end).then_some(idx)
    }

    /// Predecessor lists, indexed like `blocks`.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for e in &b.edges {
                preds[e.to].push(i);
            }
        }
        preds
    }

    /// Reverse postorder over blocks reachable from the entry.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let n = self.blocks.len();
        let mut seen = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS carrying an edge cursor per open node.
        let mut stack: Vec<(usize, usize)> = vec![(self.entry, 0)];
        seen[self.entry] = true;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            if let Some(e) = self.blocks[node].edges.get(*cursor) {
                *cursor += 1;
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push((e.to, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators (Cooper–Harvey–Kennedy). `idom[entry] ==
    /// Some(entry)`; blocks unreachable from the entry get `None`.
    #[must_use]
    pub fn dominators(&self) -> Vec<Option<usize>> {
        let n = self.blocks.len();
        let rpo = self.reverse_postorder();
        let mut order = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order[b] = i;
        }
        let preds = self.predecessors();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[self.entry] = Some(self.entry);

        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while order[a] > order[b] {
                    a = idom[a].expect("processed block has an idom");
                }
                while order[b] > order[a] {
                    b = idom[b].expect("processed block has an idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for &p in &preds[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b` under the given idom tree.
    #[must_use]
    pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

fn rel_target(next: usize, rel: i32) -> usize {
    (next as i64 + i64::from(rel)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond with a loop on one arm:
    ///
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///      |\  |
    ///      | 3 |      (3 -> 1 back edge)
    ///       \|/
    ///        4
    /// ```
    fn diamond_with_loop() -> Cfg {
        let edge = |to, kind| Edge { to, kind };
        let mk = |start: usize, edges: Vec<Edge>| Block {
            start,
            end: start + 1,
            insts: vec![(start, Inst::Nop)],
            edges,
        };
        Cfg::from_blocks(
            vec![
                mk(0, vec![edge(1, EdgeKind::BranchTaken), edge(2, EdgeKind::BranchFall)]),
                mk(1, vec![edge(3, EdgeKind::BranchTaken), edge(4, EdgeKind::BranchFall)]),
                mk(2, vec![edge(4, EdgeKind::Jump)]),
                mk(3, vec![edge(1, EdgeKind::Jump)]),
                mk(4, vec![]),
            ],
            0,
        )
    }

    #[test]
    fn dominators_of_diamond_with_loop() {
        let cfg = diamond_with_loop();
        let idom = cfg.dominators();
        assert_eq!(idom[0], Some(0));
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(0));
        assert_eq!(idom[3], Some(1), "loop body is dominated by the loop head");
        assert_eq!(idom[4], Some(0), "join point joins both arms, so idom is the fork");
        assert!(Cfg::dominates(&idom, 0, 4));
        assert!(Cfg::dominates(&idom, 1, 3));
        assert!(!Cfg::dominates(&idom, 1, 4));
        assert!(!Cfg::dominates(&idom, 2, 4));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let edge = |to, kind| Edge { to, kind };
        let mk = |start: usize, edges: Vec<Edge>| Block {
            start,
            end: start + 1,
            insts: vec![(start, Inst::Nop)],
            edges,
        };
        let cfg = Cfg::from_blocks(
            vec![mk(0, vec![edge(1, EdgeKind::Jump)]), mk(1, vec![]), mk(2, vec![])],
            0,
        );
        let idom = cfg.dominators();
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], None);
        assert!(!Cfg::dominates(&idom, 0, 2));
    }

    #[test]
    fn back_edge_detection_via_dominance() {
        let cfg = diamond_with_loop();
        let idom = cfg.dominators();
        // 3 -> 1 is a back edge (1 dominates 3); 1 -> 4 is not.
        assert!(Cfg::dominates(&idom, 1, 3));
        assert!(!Cfg::dominates(&idom, 4, 1));
    }

    #[test]
    fn nested_loop_dominators() {
        // 0 -> 1 -> 2 -> 1 (inner), 2 -> 3 -> 1? no: classic nest:
        // 0 -> 1; 1 -> 2; 2 -> 2 (self loop); 2 -> 3; 3 -> 1 (outer); 3 -> 4.
        let edge = |to, kind| Edge { to, kind };
        let mk = |start: usize, edges: Vec<Edge>| Block {
            start,
            end: start + 1,
            insts: vec![(start, Inst::Nop)],
            edges,
        };
        let cfg = Cfg::from_blocks(
            vec![
                mk(0, vec![edge(1, EdgeKind::Fall)]),
                mk(1, vec![edge(2, EdgeKind::Fall)]),
                mk(2, vec![edge(2, EdgeKind::BranchTaken), edge(3, EdgeKind::BranchFall)]),
                mk(3, vec![edge(1, EdgeKind::BranchTaken), edge(4, EdgeKind::BranchFall)]),
                mk(4, vec![]),
            ],
            0,
        );
        let idom = cfg.dominators();
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(1));
        assert_eq!(idom[3], Some(2));
        assert_eq!(idom[4], Some(3));
        // Both loop heads are recognised as dominating their back-edge sources.
        assert!(Cfg::dominates(&idom, 2, 2));
        assert!(Cfg::dominates(&idom, 1, 3));
    }
}
