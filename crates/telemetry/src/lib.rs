//! # deflection-telemetry
//!
//! A dependency-free (std-only) tracing and metrics substrate for the
//! DEFLECTION pipeline: counters, gauges, fixed-bucket log-2 histograms
//! and RAII span timers behind a process-global [`Collector`].
//!
//! # Trust model
//!
//! This crate is **untrusted-side observability** and is deliberately kept
//! out of the in-enclave TCB count. Everything it aggregates — phase
//! durations, cache hit rates, scheduler decisions — is information the
//! untrusted host can already observe by timing ECalls and watching its own
//! scheduler; recording it adds no new covert channel. Policy-relevant
//! events that the host *cannot* see (guard trips, AEX injections, budget
//! exhaustions inside a run) are recorded exclusively by the in-enclave
//! audit ring (`deflection-core::audit`), which exports only sealed,
//! fixed-size, budget-charged records. See `DESIGN.md` §5e.
//!
//! # Cost model
//!
//! The collector is **off by default**. Every recording operation first
//! loads one relaxed atomic flag and returns immediately when disabled —
//! an `#[inline]` empty path whose cost is a load and a predictable
//! branch. `tests/telemetry_soundness.rs` proves verdicts are bit-identical
//! enabled/disabled/snapshotted, and the `ablation_telemetry` bench bounds
//! the disabled-path overhead at ≤1% of verify+serve.
//!
//! # Example
//!
//! ```
//! use deflection_telemetry::{Collector, METRICS};
//!
//! Collector::enable();
//! METRICS.pool_work_queue_claims.add(1);
//! METRICS.run_sent_bytes.observe(128);
//! let snap = Collector::snapshot();
//! assert!(snap.to_prometheus().contains("deflection_pool_events_total"));
//! Collector::disable();
//! # Collector::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flightrec;

pub use flightrec::{
    chrome_trace, EventKind, FlightEvent, FlightLog, FlightRecorder, Timeline, TimelineLane,
    TraceId,
};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Escapes a string for inclusion in a JSON string literal: quotes,
/// backslashes, and control characters (the latter as `\u00XX`). Every
/// exporter in this crate routes label values and free-form names through
/// this, so a hostile binary name can never corrupt an exported document.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal recursive-descent JSON well-formedness check (structure only,
/// no value model): used by the exporter unit tests and by `ci.sh --smoke`
/// to validate `TRACE_smoke.json` before publishing it as an artifact.
#[must_use]
pub fn json_well_formed(s: &str) -> bool {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
        depth: u32,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> bool {
            if self.peek() == Some(c) {
                self.i += 1;
                true
            } else {
                false
            }
        }
        fn string(&mut self) -> bool {
            if !self.eat(b'"') {
                return false;
            }
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return true,
                    b'\\' => {
                        let Some(e) = self.peek() else { return false };
                        self.i += 1;
                        match e {
                            b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                            b'u' => {
                                for _ in 0..4 {
                                    let Some(h) = self.peek() else { return false };
                                    if !h.is_ascii_hexdigit() {
                                        return false;
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return false,
                        }
                    }
                    c if c < 0x20 => return false,
                    _ => {}
                }
            }
            false
        }
        fn number(&mut self) -> bool {
            let start = self.i;
            let _ = self.eat(b'-');
            let digits = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == digits {
                return false;
            }
            if self.eat(b'.') {
                let frac = self.i;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
                if self.i == frac {
                    return false;
                }
            }
            if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
                self.i += 1;
                if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                    self.i += 1;
                }
                let exp = self.i;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
                if self.i == exp {
                    return false;
                }
            }
            self.i > start
        }
        fn lit(&mut self, word: &[u8]) -> bool {
            if self.b[self.i..].starts_with(word) {
                self.i += word.len();
                true
            } else {
                false
            }
        }
        fn value(&mut self) -> bool {
            if self.depth > 128 {
                return false;
            }
            self.ws();
            match self.peek() {
                Some(b'"') => self.string(),
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b't') => self.lit(b"true"),
                Some(b'f') => self.lit(b"false"),
                Some(b'n') => self.lit(b"null"),
                Some(_) => self.number(),
                None => false,
            }
        }
        fn object(&mut self) -> bool {
            self.depth += 1;
            if !self.eat(b'{') {
                return false;
            }
            self.ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return true;
            }
            loop {
                self.ws();
                if !self.string() {
                    return false;
                }
                self.ws();
                if !self.eat(b':') || !self.value() {
                    return false;
                }
                self.ws();
                if self.eat(b',') {
                    continue;
                }
                let ok = self.eat(b'}');
                self.depth -= 1;
                return ok;
            }
        }
        fn array(&mut self) -> bool {
            self.depth += 1;
            if !self.eat(b'[') {
                return false;
            }
            self.ws();
            if self.eat(b']') {
                self.depth -= 1;
                return true;
            }
            loop {
                if !self.value() {
                    return false;
                }
                self.ws();
                if self.eat(b',') {
                    continue;
                }
                let ok = self.eat(b']');
                self.depth -= 1;
                return ok;
            }
        }
    }
    let mut p = P { b: s.as_bytes(), i: 0, depth: 0 };
    if !p.value() {
        return false;
    }
    p.ws();
    p.i == p.b.len()
}

/// Number of log-2 histogram buckets: bucket 0 holds exact zeros, bucket
/// `k >= 1` holds values in `[2^(k-1), 2^k)`, and the last bucket absorbs
/// everything larger.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Process-global enable flag. All metric operations are no-ops while this
/// is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Count of metric *operations* executed while enabled (one `add`, one
/// `observe`, one `merge` — regardless of how many events the operation
/// carries). This is what the telemetry-overhead budget multiplies by the
/// disabled per-op cost: a counter flushed as `add(delta)` crosses the
/// collector once, not `delta` times.
static OPS: AtomicU64 = AtomicU64::new(0);

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    labels: &'static str,
    hits: AtomicU64,
}

impl Counter {
    /// Declares a counter. `labels` is a raw Prometheus label body such as
    /// `event="work_queue_claim"` (empty for none).
    #[must_use]
    pub const fn new(name: &'static str, labels: &'static str) -> Self {
        Counter { name, labels, hits: AtomicU64::new(0) }
    }

    /// Adds `n` to the counter; no-op while the collector is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        OPS.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    labels: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Declares a gauge.
    #[must_use]
    pub const fn new(name: &'static str, labels: &'static str) -> Self {
        Gauge { name, labels, value: AtomicI64::new(0) }
    }

    /// Sets the gauge; no-op while the collector is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        OPS.fetch_add(1, Ordering::Relaxed);
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log-2 histogram: 64 buckets cover the full `u64` range,
/// so recording never allocates and bucket boundaries are stable across
/// runs (a requirement for the trend reporter's deltas).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    labels: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Declares a histogram.
    #[must_use]
    pub const fn new(name: &'static str, labels: &'static str) -> Self {
        Histogram {
            name,
            labels,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a value: 0 for 0, otherwise `floor(log2 v) + 1`,
    /// clamped into the last bucket.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation; no-op while the collector is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        OPS.fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a [`LocalHistogram`] accumulator in — one collector crossing
    /// for an entire hot loop's worth of observations. No-op while the
    /// collector is disabled or when the accumulator is empty.
    pub fn merge(&self, local: &LocalHistogram) {
        if local.count == 0 || !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        OPS.fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        for (bucket, &n) in self.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain, non-atomic histogram accumulator for hot loops that must not
/// cross the collector per observation (e.g. the VM's per-block dispatch
/// length): observe locally — three integer adds, no atomics, no enable
/// check — then fold the whole loop into a [`Histogram`] with one
/// [`Histogram::merge`] at a boundary the host already witnesses.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl LocalHistogram {
    /// An empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        LocalHistogram { count: 0, sum: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }

    /// Records one observation locally.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.buckets[Histogram::bucket_index(v)] += 1;
    }

    /// Number of locally recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Drops all local observations.
    pub fn clear(&mut self) {
        *self = LocalHistogram::new();
    }
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

/// An RAII span: starts a wall-clock timer on construction (only when the
/// collector is enabled — the disabled path never reads the clock) and
/// records the elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    hist: &'static Histogram,
}

impl Span {
    /// Opens a span feeding `hist`.
    #[inline]
    #[must_use]
    pub fn start(hist: &'static Histogram) -> Span {
        let start = if ENABLED.load(Ordering::Relaxed) { Some(Instant::now()) } else { None };
        // The flight recorder derives verifier phase events from span
        // identity (one relaxed load when it is disabled).
        flightrec::span_phase_marker(hist);
        Span { start, hist }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.observe(ns);
        }
    }
}

/// Every metric the DEFLECTION pipeline records, declared centrally so the
/// exposition order is stable and the whole set is enumerable without a
/// runtime registry (no allocation on any hot path).
#[derive(Debug)]
#[allow(missing_docs)] // field names are the documentation; see DESIGN.md §5e
pub struct Metrics {
    // -- untrusted producer (produce_for_layout two-pass pipeline) --------
    pub produce_ns: Histogram,
    pub produce_analysis_ns: Histogram,
    pub produce_self_verify_ns: Histogram,
    pub produce_elision_fallbacks: Counter,
    pub produce_guards_elided: Counter,
    // -- producer MIR optimizer (per-pass rewrite counts) ------------------
    pub producer_opt_peephole: Counter,
    pub producer_opt_const_fold: Counter,
    pub producer_opt_loop_bound: Counter,
    pub producer_opt_addr_canon: Counter,
    pub producer_opt_dce: Counter,
    // -- in-enclave verifier phases (host-observable timings) -------------
    pub verify_ns: Histogram,
    pub verify_disasm_ns: Histogram,
    pub verify_discovery_ns: Histogram,
    pub verify_checks_ns: Histogram,
    pub verify_accepts: Counter,
    pub verify_rejects: Counter,
    /// Incremental re-verification memo outcomes, bumped once per
    /// `verify_incremental` call on the host-side install path (never from
    /// inside a check phase), so the counter plane leaks no more than the
    /// install timing the host already observes.
    pub verify_memo_hits: Counter,
    pub verify_memo_misses: Counter,
    pub verify_memo_invalidated: Counter,
    // -- abstract interpreter (guard elision) ------------------------------
    pub analysis_run_ns: Histogram,
    pub analysis_fixpoint_iters: Histogram,
    pub analysis_widenings: Histogram,
    /// Widened in-states improved by the bounded narrowing rounds that
    /// follow each per-function fixpoint.
    pub absint_narrowings: Histogram,
    /// Relational (difference-bound) facts live in the final fixpoint
    /// states of one analysis run.
    pub absint_relational_facts: Histogram,
    // -- enclave pool ------------------------------------------------------
    pub pool_install_cache_hits: Counter,
    pub pool_install_cache_misses: Counter,
    pub pool_sealed_exports: Counter,
    pub pool_sealed_imports: Counter,
    /// Claims taken from the shared work queue in the work-stealing serve
    /// loop. Every served request is one claim — including a worker's own
    /// first claims — so this is a throughput count, not a count of
    /// requests stolen from another worker's share.
    pub pool_work_queue_claims: Counter,
    pub pool_round_robin_assignments: Counter,
    pub pool_contained_faults: Counter,
    pub pool_lost_instances: Counter,
    pub pool_respawns: Counter,
    pub pool_quarantines: Counter,
    pub pool_stranded_retries: Counter,
    /// Prepared-image LRU evictions from the pool's bounded install cache.
    pub pool_prepared_evictions: Counter,
    pub pool_serve_batch_ns: Histogram,
    // -- admission frontend (untrusted host-side serving layer) -----------
    // Queue depth, shed decisions and batch shapes are host scheduling
    // state the untrusted dispatcher computes itself; exposing them leaks
    // nothing an enclave ever witnessed (DESIGN.md §5k).
    pub admission_enqueued: Counter,
    pub admission_admitted: Counter,
    pub admission_shed_queue_full: Counter,
    pub admission_shed_tenant_in_flight: Counter,
    pub admission_shed_lifetime_budget: Counter,
    pub admission_queue_depth: Gauge,
    pub admission_batch_size: Histogram,
    pub admission_wait_ns: Histogram,
    // -- bootstrap-enclave runtime (per-run P0 accounting) -----------------
    pub run_reports: Counter,
    pub run_sent_bytes: Histogram,
    pub run_budget_headroom: Gauge,
    pub run_budget_exhaustions: Counter,
    /// Audit events *decoded by the owner* from an authenticated export —
    /// never bumped on the in-enclave record path, which must not feed the
    /// host-visible metrics plane (see the trust model above).
    pub audit_events: Counter,
    pub audit_exports: Counter,
    // -- simulated hardware (icache / dispatch) ----------------------------
    // Hardware-model counters: the events they count (decode-cache
    // behaviour, interrupt-to-interrupt run lengths) are exactly what real
    // silicon exposes to the host through performance counters and AEX
    // itself, so surfacing them adds no covert channel (DESIGN.md §5f).
    pub vm_icache_hits: Counter,
    pub vm_icache_fills: Counter,
    pub vm_icache_invalidations: Counter,
    pub vm_icache_prewarms: Counter,
    pub vm_dispatch_block_len: Histogram,
    // Superblock trace cache: formation/chaining/side-exit/kill events and
    // the length distribution of formed traces (same hardware-observable
    // argument as the icache counters above — trace formation is decode
    // activity the host can already time).
    pub vm_trace_formed: Counter,
    pub vm_trace_chained: Counter,
    pub vm_trace_side_exits: Counter,
    pub vm_trace_invalidated: Counter,
    pub vm_trace_len: Histogram,
}

impl Metrics {
    const fn new() -> Metrics {
        Metrics {
            produce_ns: Histogram::new("deflection_produce_ns", r#"phase="total""#),
            produce_analysis_ns: Histogram::new("deflection_produce_ns", r#"phase="analysis""#),
            produce_self_verify_ns: Histogram::new(
                "deflection_produce_ns",
                r#"phase="self_verify""#,
            ),
            produce_elision_fallbacks: Counter::new(
                "deflection_produce_events_total",
                r#"event="elision_fallback""#,
            ),
            produce_guards_elided: Counter::new(
                "deflection_produce_events_total",
                r#"event="guard_elided""#,
            ),
            producer_opt_peephole: Counter::new(
                "deflection_producer_opt_rewrites_total",
                r#"pass="peephole""#,
            ),
            producer_opt_const_fold: Counter::new(
                "deflection_producer_opt_rewrites_total",
                r#"pass="const_fold""#,
            ),
            producer_opt_loop_bound: Counter::new(
                "deflection_producer_opt_rewrites_total",
                r#"pass="loop_bound""#,
            ),
            producer_opt_addr_canon: Counter::new(
                "deflection_producer_opt_rewrites_total",
                r#"pass="addr_canon""#,
            ),
            producer_opt_dce: Counter::new(
                "deflection_producer_opt_rewrites_total",
                r#"pass="dce""#,
            ),
            verify_ns: Histogram::new("deflection_verify_ns", r#"phase="total""#),
            verify_disasm_ns: Histogram::new("deflection_verify_ns", r#"phase="disasm""#),
            verify_discovery_ns: Histogram::new("deflection_verify_ns", r#"phase="discovery""#),
            verify_checks_ns: Histogram::new("deflection_verify_ns", r#"phase="checks""#),
            verify_accepts: Counter::new("deflection_verify_total", r#"verdict="accept""#),
            verify_rejects: Counter::new("deflection_verify_total", r#"verdict="reject""#),
            verify_memo_hits: Counter::new("deflection_verify_memo_total", r#"result="hit""#),
            verify_memo_misses: Counter::new("deflection_verify_memo_total", r#"result="miss""#),
            verify_memo_invalidated: Counter::new(
                "deflection_verify_memo_total",
                r#"result="invalidated""#,
            ),
            analysis_run_ns: Histogram::new("deflection_analysis_run_ns", ""),
            analysis_fixpoint_iters: Histogram::new("deflection_analysis_fixpoint_iters", ""),
            analysis_widenings: Histogram::new("deflection_analysis_widenings", ""),
            absint_narrowings: Histogram::new("deflection_absint_narrowings", ""),
            absint_relational_facts: Histogram::new("deflection_absint_relational_facts", ""),
            pool_install_cache_hits: Counter::new(
                "deflection_pool_events_total",
                r#"event="install_cache_hit""#,
            ),
            pool_install_cache_misses: Counter::new(
                "deflection_pool_events_total",
                r#"event="install_cache_miss""#,
            ),
            pool_sealed_exports: Counter::new(
                "deflection_pool_events_total",
                r#"event="sealed_export""#,
            ),
            pool_sealed_imports: Counter::new(
                "deflection_pool_events_total",
                r#"event="sealed_import""#,
            ),
            pool_work_queue_claims: Counter::new(
                "deflection_pool_events_total",
                r#"event="work_queue_claim""#,
            ),
            pool_round_robin_assignments: Counter::new(
                "deflection_pool_events_total",
                r#"event="round_robin_assignment""#,
            ),
            pool_contained_faults: Counter::new(
                "deflection_pool_events_total",
                r#"event="contained_fault""#,
            ),
            pool_lost_instances: Counter::new(
                "deflection_pool_events_total",
                r#"event="lost_instance""#,
            ),
            pool_respawns: Counter::new("deflection_pool_events_total", r#"event="respawn""#),
            pool_quarantines: Counter::new("deflection_pool_events_total", r#"event="quarantine""#),
            pool_stranded_retries: Counter::new(
                "deflection_pool_events_total",
                r#"event="stranded_retry""#,
            ),
            pool_prepared_evictions: Counter::new(
                "deflection_pool_events_total",
                r#"event="prepared_eviction""#,
            ),
            pool_serve_batch_ns: Histogram::new("deflection_pool_serve_batch_ns", ""),
            admission_enqueued: Counter::new(
                "deflection_admission_events_total",
                r#"event="enqueue""#,
            ),
            admission_admitted: Counter::new(
                "deflection_admission_events_total",
                r#"event="admit""#,
            ),
            admission_shed_queue_full: Counter::new(
                "deflection_admission_events_total",
                r#"event="shed_queue_full""#,
            ),
            admission_shed_tenant_in_flight: Counter::new(
                "deflection_admission_events_total",
                r#"event="shed_tenant_in_flight""#,
            ),
            admission_shed_lifetime_budget: Counter::new(
                "deflection_admission_events_total",
                r#"event="shed_lifetime_budget""#,
            ),
            admission_queue_depth: Gauge::new("deflection_admission_queue_depth", ""),
            admission_batch_size: Histogram::new("deflection_admission_batch_size", ""),
            admission_wait_ns: Histogram::new("deflection_admission_wait_ns", ""),
            run_reports: Counter::new("deflection_run_total", ""),
            run_sent_bytes: Histogram::new("deflection_run_sent_bytes", ""),
            run_budget_headroom: Gauge::new("deflection_run_budget_headroom_bytes", ""),
            run_budget_exhaustions: Counter::new(
                "deflection_run_events_total",
                r#"event="budget_exhausted""#,
            ),
            audit_events: Counter::new("deflection_audit_total", r#"event="decoded""#),
            audit_exports: Counter::new("deflection_audit_total", r#"event="exported""#),
            vm_icache_hits: Counter::new("deflection_vm_icache_events_total", r#"event="hit""#),
            vm_icache_fills: Counter::new("deflection_vm_icache_events_total", r#"event="fill""#),
            vm_icache_invalidations: Counter::new(
                "deflection_vm_icache_events_total",
                r#"event="invalidation""#,
            ),
            vm_icache_prewarms: Counter::new(
                "deflection_vm_icache_events_total",
                r#"event="prewarm""#,
            ),
            vm_dispatch_block_len: Histogram::new("deflection_vm_dispatch_block_len", ""),
            vm_trace_formed: Counter::new("deflection_vm_trace_events_total", r#"event="formed""#),
            vm_trace_chained: Counter::new(
                "deflection_vm_trace_events_total",
                r#"event="chained""#,
            ),
            vm_trace_side_exits: Counter::new(
                "deflection_vm_trace_events_total",
                r#"event="side_exit""#,
            ),
            vm_trace_invalidated: Counter::new(
                "deflection_vm_trace_events_total",
                r#"event="invalidated""#,
            ),
            vm_trace_len: Histogram::new("deflection_vm_trace_len", ""),
        }
    }

    fn counters(&self) -> [&Counter; 16] {
        [
            &self.produce_elision_fallbacks,
            &self.produce_guards_elided,
            &self.verify_accepts,
            &self.verify_rejects,
            &self.pool_install_cache_hits,
            &self.pool_install_cache_misses,
            &self.pool_sealed_exports,
            &self.pool_sealed_imports,
            &self.pool_work_queue_claims,
            &self.pool_round_robin_assignments,
            &self.pool_contained_faults,
            &self.pool_lost_instances,
            &self.pool_respawns,
            &self.pool_quarantines,
            &self.pool_stranded_retries,
            &self.run_reports,
        ]
    }

    fn more_counters(&self) -> [&Counter; 25] {
        [
            &self.admission_enqueued,
            &self.admission_admitted,
            &self.admission_shed_queue_full,
            &self.admission_shed_tenant_in_flight,
            &self.admission_shed_lifetime_budget,
            &self.run_budget_exhaustions,
            &self.audit_events,
            &self.audit_exports,
            &self.vm_icache_hits,
            &self.vm_icache_fills,
            &self.vm_icache_invalidations,
            &self.vm_icache_prewarms,
            &self.vm_trace_formed,
            &self.vm_trace_chained,
            &self.vm_trace_side_exits,
            &self.vm_trace_invalidated,
            &self.producer_opt_peephole,
            &self.producer_opt_const_fold,
            &self.producer_opt_loop_bound,
            &self.producer_opt_addr_canon,
            &self.producer_opt_dce,
            &self.verify_memo_hits,
            &self.verify_memo_misses,
            &self.verify_memo_invalidated,
            &self.pool_prepared_evictions,
        ]
    }

    fn gauges(&self) -> [&Gauge; 2] {
        [&self.run_budget_headroom, &self.admission_queue_depth]
    }

    fn histograms(&self) -> [&Histogram; 14] {
        [
            &self.admission_wait_ns,
            &self.produce_ns,
            &self.produce_analysis_ns,
            &self.produce_self_verify_ns,
            &self.verify_ns,
            &self.verify_disasm_ns,
            &self.verify_discovery_ns,
            &self.verify_checks_ns,
            &self.analysis_run_ns,
            &self.analysis_fixpoint_iters,
            &self.analysis_widenings,
            &self.absint_narrowings,
            &self.absint_relational_facts,
            &self.pool_serve_batch_ns,
        ]
    }

    fn all_histograms(&self) -> Vec<&Histogram> {
        let mut v: Vec<&Histogram> = self.histograms().to_vec();
        v.push(&self.run_sent_bytes);
        v.push(&self.vm_dispatch_block_len);
        v.push(&self.vm_trace_len);
        // Batch sizes are workload-shaped, not timings: excluded from the
        // `_ns` tail gating like the other value histograms here.
        v.push(&self.admission_batch_size);
        v
    }

    fn all_counters(&self) -> Vec<&Counter> {
        let mut v: Vec<&Counter> = self.counters().to_vec();
        v.extend(self.more_counters());
        v
    }
}

/// The global metric set every instrumentation site records into.
pub static METRICS: Metrics = Metrics::new();

/// One counter or gauge sample in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (Prometheus conventions).
    pub name: &'static str,
    /// Raw label body (`key="value"`), possibly empty.
    pub labels: &'static str,
    /// Sampled value.
    pub value: i64,
}

/// One histogram sample in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Raw label body, possibly empty.
    pub labels: &'static str,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Non-cumulative per-bucket counts (log-2 boundaries, see
    /// [`Histogram::bucket_index`]); trailing empty buckets are trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the log-2 buckets by
    /// linear interpolation inside the target bucket: bucket 0 is exactly
    /// 0, bucket `k` spans `[2^(k-1), 2^k)`, and the saturated last bucket
    /// reports its lower bound (no finite upper bound is truthful for it —
    /// the same honesty rule as the `+Inf`-only exposition). Returns 0 for
    /// an empty histogram.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= rank {
                if i == 0 {
                    return 0.0;
                }
                if i == HISTOGRAM_BUCKETS - 1 {
                    return (1u64 << (i - 1)) as f64;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let hi = (1u64 << i) as f64;
                let frac = (rank - cum as f64) / n as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cum = next;
        }
        // Unreachable when buckets sum to count; be conservative if not.
        self.buckets.len().checked_sub(1).map_or(0.0, |i| (1u64 << i.min(63)) as f64)
    }

    /// Median estimate (see [`HistogramSample::percentile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Tail estimate (see [`HistogramSample::percentile`]).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// A point-in-time copy of every metric, decoupled from the live atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counters and gauges.
    pub samples: Vec<Sample>,
    /// Histograms.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Total recorded events: counter hits plus histogram observations.
    /// This is the operation count the `ablation_telemetry` bench uses to
    /// bound the disabled-path overhead.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        let c: u64 = self
            .samples
            .iter()
            .filter(|s| s.name.ends_with("_total"))
            .map(|s| s.value.max(0) as u64)
            .sum();
        let h: u64 = self.histograms.iter().map(|h| h.count).sum();
        c + h
    }

    /// Renders the stable Prometheus-style text exposition:
    /// `name{label="v"} value` lines, histograms as `_count`/`_sum` plus
    /// cumulative `_bucket{le="..."}` lines.
    ///
    /// The final histogram bucket saturates: it holds everything from
    /// `2^62` up, including values past `2^63`, so it gets no numeric `le`
    /// line (which would claim a bound some of its values exceed) — only
    /// the `+Inf` line covers it.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let fmt_labels = |labels: &str, extra: Option<&str>| -> String {
            match (labels.is_empty(), extra) {
                (true, None) => String::new(),
                (true, Some(e)) => format!("{{{e}}}"),
                (false, None) => format!("{{{labels}}}"),
                (false, Some(e)) => format!("{{{labels},{e}}}"),
            }
        };
        for s in &self.samples {
            out.push_str(&format!("{}{} {}\n", s.name, fmt_labels(s.labels, None), s.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("{}_count{} {}\n", h.name, fmt_labels(h.labels, None), h.count));
            out.push_str(&format!("{}_sum{} {}\n", h.name, fmt_labels(h.labels, None), h.sum));
            if h.count > 0 {
                out.push_str(&format!(
                    "{}_p50{} {:.1}\n",
                    h.name,
                    fmt_labels(h.labels, None),
                    h.p50()
                ));
                out.push_str(&format!(
                    "{}_p99{} {:.1}\n",
                    h.name,
                    fmt_labels(h.labels, None),
                    h.p99()
                ));
            }
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cum += b;
                // The last bucket absorbs all values >= 2^62 (bucket_index
                // clamps), so no finite le bound is truthful for it; the
                // +Inf line below is its only exposition.
                if b == 0 || i == HISTOGRAM_BUCKETS - 1 {
                    continue;
                }
                let le = if i == 0 { "0".to_string() } else { format!("{}", 1u128 << i) };
                let extra = format!("le=\"{le}\"");
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    fmt_labels(h.labels, Some(&extra)),
                    cum
                ));
            }
            let extra = "le=\"+Inf\"".to_string();
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                h.name,
                fmt_labels(h.labels, Some(&extra)),
                h.count
            ));
        }
        out
    }

    /// Renders the snapshot as a self-describing JSON document (schema
    /// `deflection-metrics-v1`), the format `METRICS_*.json` files use and
    /// the trend reporter ingests. Label bodies are properly escaped (they
    /// contain quotes by construction — `event="claim"` — and may embed
    /// arbitrary caller strings), so the output is always well-formed.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_stamped(None)
    }

    /// [`Snapshot::to_json`] with an optional host stamp
    /// (`available_parallelism`), which the trend reporter requires before
    /// it will *enforce* p50/p99 tail regressions — numbers measured on
    /// different host shapes are reported but never gate.
    #[must_use]
    pub fn to_json_stamped(&self, available_parallelism: Option<u64>) -> String {
        let mut out = String::from("{\n  \"schema\": \"deflection-metrics-v1\",\n");
        if let Some(cores) = available_parallelism {
            out.push_str(&format!("  \"host\": {{\"available_parallelism\": {cores}}},\n"));
        }
        out.push_str("  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"labels\": \"{}\", \"value\": {}}}",
                escape_json(s.name),
                escape_json(s.labels),
                s.value
            ));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"labels\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"p50\": {:.1}, \"p99\": {:.1}, \"buckets\": [{}]}}",
                escape_json(h.name),
                escape_json(h.labels),
                h.count,
                h.sum,
                h.p50(),
                h.p99(),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// The process-global collector: enable/disable switch, snapshotting and
/// reset over [`METRICS`].
#[derive(Debug)]
pub struct Collector;

impl Collector {
    /// Turns recording on.
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns recording off (the default). Already-recorded values are kept
    /// until [`Collector::reset`].
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Copies every metric out of the live atomics. Safe to call while
    /// instrumented code runs concurrently (each value is read atomically;
    /// the snapshot is not a cross-metric transaction).
    #[must_use]
    pub fn snapshot() -> Snapshot {
        let m = &METRICS;
        let mut samples: Vec<Sample> = m
            .all_counters()
            .iter()
            .map(|c| Sample {
                name: c.name,
                labels: c.labels,
                value: i64::try_from(c.get()).unwrap_or(i64::MAX),
            })
            .collect();
        samples.extend(m.gauges().iter().map(|g| Sample {
            name: g.name,
            labels: g.labels,
            value: g.get(),
        }));
        let histograms = m
            .all_histograms()
            .iter()
            .map(|h| {
                let mut buckets: Vec<u64> =
                    h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                HistogramSample {
                    name: h.name,
                    labels: h.labels,
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                }
            })
            .collect();
        Snapshot { samples, histograms }
    }

    /// Number of metric operations executed while enabled since the last
    /// [`Collector::reset`] — `add(delta)` and `merge(local)` each count
    /// once, however many events they carry. This is the multiplicand for
    /// the disabled-cost budget (`ablation_telemetry`): every one of these
    /// operations is exactly one relaxed-load-and-return when disabled.
    #[must_use]
    pub fn op_count() -> u64 {
        OPS.load(Ordering::Relaxed)
    }

    /// Zeroes every metric (test/bench isolation). Does not change the
    /// enabled flag.
    pub fn reset() {
        OPS.store(0, Ordering::SeqCst);
        let m = &METRICS;
        for c in m.all_counters() {
            c.reset();
        }
        for g in m.gauges() {
            g.reset();
        }
        for h in m.all_histograms() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global collector is shared by every test in this binary; the
    /// lock keeps enable/reset windows from interleaving.
    fn with_collector<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::{Mutex, OnceLock};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let _guard = LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
        Collector::reset();
        Collector::enable();
        let r = f();
        Collector::disable();
        Collector::reset();
        r
    }

    #[test]
    fn local_histogram_merge_matches_direct_observation() {
        with_collector(|| {
            static DIRECT: Histogram = Histogram::new("test_merge_direct", "");
            static MERGED: Histogram = Histogram::new("test_merge_folded", "");
            let values = [0u64, 1, 7, 1024, u64::MAX];
            let mut local = LocalHistogram::new();
            for &v in &values {
                DIRECT.observe(v);
                local.observe(v);
            }
            assert_eq!(local.count(), values.len() as u64);
            MERGED.merge(&local);
            assert_eq!(MERGED.count(), DIRECT.count());
            assert_eq!(MERGED.sum(), DIRECT.sum());
            for (a, b) in MERGED.buckets.iter().zip(&DIRECT.buckets) {
                assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
            }
            local.clear();
            assert_eq!(local.count(), 0);
            MERGED.merge(&local); // empty merge is a no-op
            assert_eq!(MERGED.count(), values.len() as u64);
        });
    }

    #[test]
    fn merge_is_a_no_op_while_disabled() {
        static H: Histogram = Histogram::new("test_merge_disabled", "");
        let mut local = LocalHistogram::new();
        local.observe(42);
        Collector::disable();
        H.merge(&local);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn op_count_tracks_operations_not_events() {
        with_collector(|| {
            static C: Counter = Counter::new("test_ops_counter", "");
            static H: Histogram = Histogram::new("test_ops_hist", "");
            let base = Collector::op_count();
            // One add carrying many events is ONE op — the property the
            // telemetry-overhead budget depends on.
            C.add(100_000);
            let mut local = LocalHistogram::new();
            for v in 0..1_000 {
                local.observe(v); // local: crosses no collector
            }
            H.merge(&local);
            assert_eq!(Collector::op_count() - base, 2);
        });
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Counter::new("t", "");
        let h = Histogram::new("t", "");
        let g = Gauge::new("t", "");
        assert!(!Collector::is_enabled());
        c.add(5);
        h.observe(7);
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn enabled_collector_records_and_snapshots() {
        with_collector(|| {
            METRICS.pool_work_queue_claims.add(3);
            METRICS.run_sent_bytes.observe(100);
            METRICS.run_budget_headroom.set(-4);
            let snap = Collector::snapshot();
            let claims = snap
                .samples
                .iter()
                .find(|s| s.labels.contains("work_queue_claim"))
                .expect("work-queue claim counter present");
            assert_eq!(claims.value, 3);
            let sent = snap
                .histograms
                .iter()
                .find(|h| h.name == "deflection_run_sent_bytes")
                .expect("sent-bytes histogram present");
            assert_eq!(sent.count, 1);
            assert_eq!(sent.sum, 100);
            assert!(snap.total_events() >= 4);
            let text = snap.to_prometheus();
            assert!(text.contains("deflection_pool_events_total{event=\"work_queue_claim\"} 3"));
            assert!(text.contains("deflection_run_budget_headroom_bytes -4"));
            assert!(text.contains("deflection_run_sent_bytes_bucket{le=\"128\"} 1"));
            let json = snap.to_json();
            assert!(json.contains("\"schema\": \"deflection-metrics-v1\""));
            assert!(json.contains("\"sum\": 100"));
        });
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn saturated_last_bucket_renders_only_as_inf() {
        with_collector(|| {
            // u64::MAX lands in the clamped final bucket, which conflates
            // [2^62, 2^63) with everything larger — no finite le bound is
            // truthful for it, so only the +Inf line may expose it.
            METRICS.run_sent_bytes.observe(u64::MAX);
            let text = Collector::snapshot().to_prometheus();
            assert!(!text.contains(&format!("le=\"{}\"", 1u128 << 63)));
            assert!(text.contains("deflection_run_sent_bytes_bucket{le=\"+Inf\"} 1"));
        });
    }

    #[test]
    fn span_times_only_when_enabled() {
        with_collector(|| {
            {
                let _s = Span::start(&METRICS.verify_ns);
            }
            assert_eq!(METRICS.verify_ns.count(), 1);
        });
        // Disabled: no observation, and the clock is never read.
        {
            let s = Span::start(&METRICS.verify_ns);
            assert!(s.start.is_none());
        }
        assert_eq!(METRICS.verify_ns.count(), 0);
    }

    #[test]
    fn json_export_escapes_hostile_strings_and_stays_well_formed() {
        with_collector(|| {
            METRICS.verify_accepts.add(1);
            METRICS.verify_ns.observe(1000);
            let json = Collector::snapshot().to_json();
            assert!(json_well_formed(&json), "snapshot JSON must be well-formed:\n{json}");
            // Label bodies contain quotes by construction; they must arrive
            // escaped, not smuggled or mangled into single quotes.
            assert!(json.contains(r#""labels": "verdict=\"accept\"""#));
            let stamped = Collector::snapshot().to_json_stamped(Some(8));
            assert!(json_well_formed(&stamped));
            assert!(stamped.contains("\"available_parallelism\": 8"));
        });
        // A hostile name (quotes, backslashes, control chars) cannot break
        // the document.
        let snap = Snapshot {
            samples: vec![],
            histograms: vec![HistogramSample {
                name: "deflection_test_ns",
                labels: "bin=\"a\\b\"c\n\u{1}\"",
                count: 1,
                sum: 7,
                buckets: vec![0, 0, 0, 1],
            }],
        };
        assert!(json_well_formed(&snap.to_json()), "hostile label leaked:\n{}", snap.to_json());
    }

    #[test]
    fn escape_json_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_well_formed_accepts_valid_and_rejects_broken_documents() {
        assert!(json_well_formed("{}"));
        assert!(json_well_formed("[1, 2.5, -3e2, \"x\\n\", true, false, null, {\"a\": []}]"));
        assert!(json_well_formed("  {\"k\": \"v\"}  "));
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"a\": \"raw\nnewline\"}",
            "01e",
            "nulle",
        ] {
            assert!(!json_well_formed(bad), "accepted broken JSON: {bad:?}");
        }
    }

    #[test]
    fn percentiles_interpolate_log2_buckets() {
        let h = |count: u64, buckets: Vec<u64>| HistogramSample {
            name: "t",
            labels: "",
            count,
            sum: 0,
            buckets,
        };
        // Empty histogram: both quantiles are 0.
        assert_eq!(h(0, vec![]).p50(), 0.0);
        // All zeros: bucket 0 is exactly 0.
        assert_eq!(h(4, vec![4]).p50(), 0.0);
        // 100 observations spread evenly in [8, 16) (bucket 4): p50 lands
        // mid-bucket, p99 near the top.
        let mid = h(100, vec![0, 0, 0, 0, 100]);
        assert!((mid.p50() - 12.0).abs() < 0.5, "p50={}", mid.p50());
        assert!(mid.p99() > 15.0 && mid.p99() <= 16.0, "p99={}", mid.p99());
        // Skewed tail: 99 fast (bucket 1 = [1,2)) + 1 slow (bucket 11 =
        // [1024, 2048)); p50 stays fast, p99 crosses into... the 99th of
        // 100 is still the last fast observation, p99.5 would be slow.
        let skew = h(100, vec![0, 99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert!(skew.p50() < 2.0);
        assert!(skew.percentile(0.995) >= 1024.0);
        // The saturated last bucket reports its lower bound.
        let mut sat_buckets = vec![0u64; HISTOGRAM_BUCKETS];
        sat_buckets[HISTOGRAM_BUCKETS - 1] = 10;
        let sat = h(10, sat_buckets);
        assert_eq!(sat.p99(), (1u64 << 62) as f64);
        // Monotone in q.
        let m = h(10, vec![1, 2, 3, 4]);
        assert!(m.percentile(0.1) <= m.percentile(0.5));
        assert!(m.percentile(0.5) <= m.percentile(0.9));
    }

    #[test]
    fn prometheus_exposition_includes_percentile_lines() {
        with_collector(|| {
            for v in [10u64, 12, 14, 1000] {
                METRICS.verify_ns.observe(v);
            }
            let text = Collector::snapshot().to_prometheus();
            assert!(text.contains("deflection_verify_ns_p50{phase=\"total\"}"));
            assert!(text.contains("deflection_verify_ns_p99{phase=\"total\"}"));
            // Histograms with no observations emit no percentile lines.
            assert!(!text.contains("deflection_produce_ns_p50"));
        });
    }

    #[test]
    fn reset_zeroes_everything() {
        with_collector(|| {
            METRICS.verify_accepts.add(2);
            METRICS.verify_ns.observe(10);
            Collector::reset();
            assert_eq!(METRICS.verify_accepts.get(), 0);
            assert_eq!(METRICS.verify_ns.count(), 0);
        });
    }
}
