//! The flight recorder: a bounded, lock-cheap structured event ring with a
//! logical monotonic clock and causal request IDs.
//!
//! Where the metric plane (`crates/telemetry` counters/histograms) answers
//! *how many* and *how long on average*, the flight recorder answers *what
//! happened to this request*: every lifecycle stage — enqueue, work-queue
//! claim, install replay, verifier phase, run, seal, fault, respawn — emits
//! one fixed-size record stamped with a process-global logical clock and the
//! request's [`TraceId`], so a drained ring reconstructs into per-request
//! causal timelines ([`Timeline`]) and exports as chrome://tracing JSON
//! ([`chrome_trace`], schema `deflection-trace-v1`).
//!
//! # Trust model
//!
//! Same rule as the metric plane (DESIGN.md §5e/§5j): every recording site
//! sits at a host-witnessed boundary — pool scheduling decisions, ECall
//! entry/exit, install replay — never inside a run. The in-enclave paths
//! (`HostState`, the VM dispatch loops) do not touch the ring, so recording
//! adds no covert channel beyond the ECall timing the host already sees,
//! and the exporters never enter the TCB.
//!
//! # Cost model
//!
//! Disabled (the default), [`record`] is one relaxed atomic load and a
//! return — the same budget as a disabled [`crate::Counter::add`], bounded
//! to ≤1% of verify+serve by the `ablation_flightrec` bench. Enabled, a
//! record is one clock `fetch_add` plus five relaxed stores into a fixed
//! ring slot: no locks, no allocation, no syscalls.
//!
//! # Ring semantics
//!
//! The ring holds the newest [`RING_SLOTS`] records; older ones are
//! overwritten in place and counted exactly: `drain().dropped` is the
//! logical-clock total minus the retained records (exact whenever no writer
//! races the drain). Slots are stamped seqlock-style — a drain racing a
//! writer skips the torn slot instead of reading a half-written record.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Ring capacity in records. 8192 slots × 5 words ≈ 320 KiB of static
/// storage — enough for several pooled serve batches of full lifecycles.
pub const RING_SLOTS: usize = 8192;

/// Process-global recorder switch; all recording is a no-op while false.
static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);

/// Count of record/mint operations executed while enabled — the
/// multiplicand for the `ablation_flightrec` disabled-cost budget (each of
/// these is exactly one relaxed load-and-return when disabled).
static FLIGHT_OPS: AtomicU64 = AtomicU64::new(0);

/// The logical monotonic clock: one tick per recorded event. Event
/// sequence numbers ARE clock readings, so "totally ordered by logical
/// clock" and "totally ordered by seq" are the same statement.
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Next causal ID to mint. Starts at 1; 0 is reserved for
/// [`TraceId::NONE`] (events not attributed to any request).
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The ambient causal ID for this thread: pool workers set it around a
    /// claimed request so boundary events recorded further down the stack
    /// (runtime, verifier) inherit the request's identity without
    /// signature changes.
    static AMBIENT: Cell<u64> = const { Cell::new(0) };
}

/// A causal identifier minted once per request or install and threaded
/// through the whole lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// "No attribution": events recorded outside any request context.
    pub const NONE: TraceId = TraceId(0);

    /// Mints a fresh nonzero ID. Returns [`TraceId::NONE`] while the
    /// recorder is disabled so the disabled path stays one atomic load.
    #[inline]
    #[must_use]
    pub fn mint() -> TraceId {
        if !FLIGHT_ENABLED.load(Ordering::Relaxed) {
            return TraceId::NONE;
        }
        FLIGHT_OPS.fetch_add(1, Ordering::Relaxed);
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether this is the unattributed ID.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What happened. The `a`/`b` payload words are kind-specific; see
/// [`FlightEvent::describe`] for the field names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// A request entered a serve batch (`a` = request index, `b` = batch
    /// size).
    Enqueue = 1,
    /// A worker claimed a request from the work queue (`a` = request
    /// index, `b` = worker slot).
    Claim = 2,
    /// A prepared install was replayed into a worker (`a` = worker slot).
    InstallReplay = 3,
    /// A verifier phase completed (`a` = phase: 0 disasm, 1 discovery,
    /// 2 checks).
    VerifyPhase = 4,
    /// An ECall run returned (`a` = instructions executed, `b` = exit tag:
    /// 0 halt, 1 policy abort, 2 fault, 3 out of fuel).
    Run = 5,
    /// Sealed records were produced by a run (`a` = record count, `b` =
    /// plaintext bytes sent).
    Seal = 6,
    /// A worker fault during a run (`a` = worker slot, `b` = reason:
    /// 0 contained fault, 1 lost instance).
    Fault = 7,
    /// A quarantined worker was respawned (`a` = worker slot).
    Respawn = 8,
    /// A worker entered quarantine (`a` = worker slot).
    Quarantine = 9,
    /// A stranded request was retried after respawn (`a` = request index).
    StrandedRetry = 10,
    /// The untrusted producer emitted an instrumented binary (`a` = binary
    /// bytes).
    Produce = 11,
    /// A verified image was installed across the pool (`a` = worker count,
    /// `b` = 1 when served from the prepared-install cache).
    Install = 12,
    /// The admission dispatcher drained a queued request into a batch
    /// (`a` = global request id, `b` = batch size).
    Admit = 13,
    /// The admission frontend rejected a request under backpressure
    /// (`a` = queue depth at the decision, `b` = reason: 0 queue past the
    /// high-water mark, 1 tenant in-flight cap, 2 tenant lifetime budget).
    Shed = 14,
}

impl EventKind {
    /// Stable lowercase name (used by exporters and the timeline demo).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Claim => "claim",
            EventKind::InstallReplay => "install_replay",
            EventKind::VerifyPhase => "verify_phase",
            EventKind::Run => "run",
            EventKind::Seal => "seal",
            EventKind::Fault => "fault",
            EventKind::Respawn => "respawn",
            EventKind::Quarantine => "quarantine",
            EventKind::StrandedRetry => "stranded_retry",
            EventKind::Produce => "produce",
            EventKind::Install => "install",
            EventKind::Admit => "admit",
            EventKind::Shed => "shed",
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Enqueue,
            2 => EventKind::Claim,
            3 => EventKind::InstallReplay,
            4 => EventKind::VerifyPhase,
            5 => EventKind::Run,
            6 => EventKind::Seal,
            7 => EventKind::Fault,
            8 => EventKind::Respawn,
            9 => EventKind::Quarantine,
            10 => EventKind::StrandedRetry,
            11 => EventKind::Produce,
            12 => EventKind::Install,
            13 => EventKind::Admit,
            14 => EventKind::Shed,
            _ => return None,
        })
    }
}

/// One drained flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Logical-clock reading (globally unique, totally ordered).
    pub seq: u64,
    /// Causal ID ([`TraceId::NONE`] when unattributed).
    pub trace: TraceId,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

impl FlightEvent {
    /// Renders the event with kind-specific field names, e.g.
    /// `claim(request=3, worker=1)`.
    #[must_use]
    pub fn describe(&self) -> String {
        let k = self.kind;
        match k {
            EventKind::Enqueue => format!("{}(request={}, batch={})", k.name(), self.a, self.b),
            EventKind::Claim => format!("{}(request={}, worker={})", k.name(), self.a, self.b),
            EventKind::InstallReplay | EventKind::Quarantine | EventKind::Respawn => {
                format!("{}(worker={})", k.name(), self.a)
            }
            EventKind::VerifyPhase => {
                let phase = match self.a {
                    0 => "disasm",
                    1 => "discovery",
                    2 => "checks",
                    _ => "?",
                };
                format!("{}(phase={phase})", k.name())
            }
            EventKind::Run => {
                let exit = match self.b {
                    0 => "halt",
                    1 => "policy_abort",
                    2 => "fault",
                    _ => "out_of_fuel",
                };
                format!("{}(instructions={}, exit={exit})", k.name(), self.a)
            }
            EventKind::Seal => format!("{}(records={}, bytes={})", k.name(), self.a, self.b),
            EventKind::Fault => {
                let reason = if self.b == 0 { "contained" } else { "lost" };
                format!("{}(worker={}, reason={reason})", k.name(), self.a)
            }
            EventKind::StrandedRetry => format!("{}(request={})", k.name(), self.a),
            EventKind::Produce => format!("{}(bytes={})", k.name(), self.a),
            EventKind::Install => {
                format!("{}(workers={}, cached={})", k.name(), self.a, self.b)
            }
            EventKind::Admit => format!("{}(request={}, batch={})", k.name(), self.a, self.b),
            EventKind::Shed => {
                let reason = match self.b {
                    0 => "queue_full",
                    1 => "tenant_in_flight",
                    _ => "lifetime_budget",
                };
                format!("{}(depth={}, reason={reason})", k.name(), self.a)
            }
        }
    }
}

/// One ring slot: a seqlock-style stamp plus the record words. `stamp` is
/// 0 while empty or mid-write, `seq + 1` once the record is published.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    trace: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

static RING: [Slot; RING_SLOTS] = [const { Slot::new() }; RING_SLOTS];

/// Records one event. Disabled path: one relaxed load, one branch, return.
/// Enabled path: one clock tick plus five relaxed stores into a fixed slot
/// (the publish stamp is a release store so a racing drain never observes
/// a half-written record as valid).
#[inline]
pub fn record(kind: EventKind, trace: TraceId, a: u64, b: u64) {
    if !FLIGHT_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    FLIGHT_OPS.fetch_add(1, Ordering::Relaxed);
    let seq = CLOCK.fetch_add(1, Ordering::Relaxed);
    let slot = &RING[(seq as usize) % RING_SLOTS];
    // Invalidate first so a drain racing this overwrite skips the slot
    // rather than pairing the old stamp with new payload words.
    slot.stamp.store(0, Ordering::Release);
    slot.trace.store(trace.0, Ordering::Relaxed);
    slot.kind.store(kind as u64, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.stamp.store(seq + 1, Ordering::Release);
}

/// Records one event attributed to the thread's ambient [`TraceId`].
#[inline]
pub fn record_ambient(kind: EventKind, a: u64, b: u64) {
    if !FLIGHT_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let trace = AMBIENT.with(Cell::get);
    record(kind, TraceId(trace), a, b);
}

/// The thread's ambient causal ID ([`TraceId::NONE`] when unset).
#[must_use]
pub fn ambient() -> TraceId {
    TraceId(AMBIENT.with(Cell::get))
}

/// Derives a [`EventKind::VerifyPhase`] event from a span opening on one
/// of the verifier's phase histograms. The phase histograms are process
/// statics, so identity comparison maps the span to its phase — this is
/// how verify-phase events reach the flight ring without adding a single
/// recording site to the TCB-counted verifier sources (DESIGN.md §5j):
/// [`crate::Span::start`] calls this for every span, and non-phase
/// histograms fall through after one pointer compare miss.
#[inline]
pub(crate) fn span_phase_marker(hist: &'static crate::Histogram) {
    if !FLIGHT_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let phase = if std::ptr::eq(hist, &crate::METRICS.verify_disasm_ns) {
        0
    } else if std::ptr::eq(hist, &crate::METRICS.verify_discovery_ns) {
        1
    } else if std::ptr::eq(hist, &crate::METRICS.verify_checks_ns) {
        2
    } else {
        return;
    };
    record_ambient(EventKind::VerifyPhase, phase, 0);
}

/// Runs `f` with `trace` as the thread's ambient causal ID, restoring the
/// previous ambient on exit (panics included — the restore is RAII).
pub fn with_trace<R>(trace: TraceId, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT.with(|c| c.replace(trace.0)));
    f()
}

/// A drained copy of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightLog {
    /// Retained records, sorted by logical clock.
    pub events: Vec<FlightEvent>,
    /// Records overwritten before this drain (exact when no writer raced
    /// the drain; racing writers can only make this an undercount of at
    /// most the in-flight writes).
    pub dropped: u64,
    /// Total events ever recorded (the logical-clock reading).
    pub total: u64,
}

impl FlightLog {
    /// Events attributed to `trace`, in clock order.
    #[must_use]
    pub fn of_trace(&self, trace: TraceId) -> Vec<FlightEvent> {
        self.events.iter().filter(|e| e.trace == trace).copied().collect()
    }
}

/// The process-global flight recorder switchboard (enable/disable, drain,
/// reset), mirroring [`crate::Collector`].
#[derive(Debug)]
pub struct FlightRecorder;

impl FlightRecorder {
    /// Turns recording on.
    pub fn enable() {
        FLIGHT_ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns recording off (the default). The ring keeps its contents
    /// until [`FlightRecorder::reset`].
    pub fn disable() {
        FLIGHT_ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled() -> bool {
        FLIGHT_ENABLED.load(Ordering::Relaxed)
    }

    /// Record/mint operations executed while enabled since the last reset
    /// (the `ablation_flightrec` budget multiplicand).
    #[must_use]
    pub fn op_count() -> u64 {
        FLIGHT_OPS.load(Ordering::Relaxed)
    }

    /// Copies every live record out of the ring, sorted by logical clock.
    /// Non-destructive: records stay in the ring (drain twice, get the
    /// same log). Safe against concurrent writers — torn slots are
    /// skipped, never misread.
    #[must_use]
    pub fn drain() -> FlightLog {
        let total = CLOCK.load(Ordering::SeqCst);
        let mut events = Vec::with_capacity(RING_SLOTS.min(total as usize));
        for slot in &RING {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Seqlock re-check: a writer that raced us invalidated or
            // restamped the slot; either way the words above may be torn.
            if slot.stamp.load(Ordering::Acquire) != stamp {
                continue;
            }
            let Some(kind) = EventKind::from_u64(kind) else { continue };
            events.push(FlightEvent { seq: stamp - 1, trace: TraceId(trace), kind, a, b });
        }
        events.sort_unstable_by_key(|e| e.seq);
        let dropped = total.saturating_sub(events.len() as u64);
        FlightLog { events, dropped, total }
    }

    /// Clears the ring, the logical clock, the op counter and the ID
    /// minter (test/bench isolation). Does not change the enabled flag.
    pub fn reset() {
        CLOCK.store(0, Ordering::SeqCst);
        FLIGHT_OPS.store(0, Ordering::SeqCst);
        NEXT_TRACE.store(1, Ordering::SeqCst);
        for slot in &RING {
            slot.stamp.store(0, Ordering::SeqCst);
        }
    }
}

/// Per-request causal timelines reconstructed from a [`FlightLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// One lane per causal ID, ordered by each lane's first event; the
    /// unattributed lane ([`TraceId::NONE`]) sorts with the rest.
    pub lanes: Vec<TimelineLane>,
}

/// All events of one causal ID, in clock order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineLane {
    /// The causal ID.
    pub trace: TraceId,
    /// The lane's events, sorted by logical clock.
    pub events: Vec<FlightEvent>,
}

impl Timeline {
    /// Groups a drained log into per-trace lanes.
    #[must_use]
    pub fn build(log: &FlightLog) -> Timeline {
        let mut lanes: Vec<TimelineLane> = Vec::new();
        for &e in &log.events {
            match lanes.iter_mut().find(|l| l.trace == e.trace) {
                Some(lane) => lane.events.push(e),
                None => lanes.push(TimelineLane { trace: e.trace, events: vec![e] }),
            }
        }
        // log.events is clock-sorted, so each lane is too; order lanes by
        // first appearance.
        lanes.sort_by_key(|l| l.events[0].seq);
        Timeline { lanes }
    }

    /// The lane for `trace`, if any of its events survived the ring.
    #[must_use]
    pub fn lane(&self, trace: TraceId) -> Option<&TimelineLane> {
        self.lanes.iter().find(|l| l.trace == trace)
    }

    /// Renders the timelines as indented text (the `metrics_snapshot`
    /// demo format).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for lane in &self.lanes {
            let head = if lane.trace.is_none() {
                "trace -".to_string()
            } else {
                format!("trace {}", lane.trace.0)
            };
            out.push_str(&head);
            out.push('\n');
            for e in &lane.events {
                out.push_str(&format!("  @{:<6} {}\n", e.seq, e.describe()));
            }
        }
        out
    }
}

/// Exports a drained log as chrome://tracing "Trace Event Format" JSON
/// (schema `deflection-trace-v1`): one complete event per record, `ts` in
/// logical-clock ticks, one row (`tid`) per causal ID. Load via
/// `chrome://tracing` or <https://ui.perfetto.dev>.
#[must_use]
pub fn chrome_trace(log: &FlightLog) -> String {
    let mut out = String::from("{\n\"schema\": \"deflection-trace-v1\",\n");
    out.push_str(&format!("\"dropped\": {},\n\"total\": {},\n", log.dropped, log.total));
    out.push_str("\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [");
    for (i, e) in log.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\": \"{}\", \"cat\": \"flight\", \"ph\": \"X\", \"ts\": {}, \"dur\": 1, \
             \"pid\": 1, \"tid\": {}, \"args\": {{\"a\": {}, \"b\": {}, \"detail\": \"{}\"}}}}",
            crate::escape_json(e.kind.name()),
            e.seq,
            e.trace.0,
            e.a,
            e.b,
            crate::escape_json(&e.describe()),
        ));
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The recorder is process-global; tests serialize on this lock.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_recorder<R>(f: impl FnOnce() -> R) -> R {
        let _guard = lock();
        FlightRecorder::reset();
        FlightRecorder::enable();
        let r = f();
        FlightRecorder::disable();
        FlightRecorder::reset();
        r
    }

    #[test]
    fn disabled_recorder_records_and_mints_nothing() {
        let _guard = lock();
        FlightRecorder::disable();
        FlightRecorder::reset();
        record(EventKind::Run, TraceId(7), 1, 2);
        record_ambient(EventKind::Seal, 3, 4);
        assert_eq!(TraceId::mint(), TraceId::NONE);
        let log = FlightRecorder::drain();
        assert!(log.events.is_empty());
        assert_eq!(log.total, 0);
        assert_eq!(log.dropped, 0);
        assert_eq!(FlightRecorder::op_count(), 0);
    }

    #[test]
    fn events_are_totally_ordered_by_the_logical_clock() {
        with_recorder(|| {
            let t1 = TraceId::mint();
            let t2 = TraceId::mint();
            assert_ne!(t1, t2);
            record(EventKind::Enqueue, t1, 0, 2);
            record(EventKind::Enqueue, t2, 1, 2);
            record(EventKind::Claim, t1, 0, 0);
            let log = FlightRecorder::drain();
            assert_eq!(log.events.len(), 3);
            assert_eq!(log.total, 3);
            assert_eq!(log.dropped, 0);
            let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2]);
            assert_eq!(log.of_trace(t1).len(), 2);
            assert_eq!(log.of_trace(t2).len(), 1);
        });
    }

    #[test]
    fn wraparound_keeps_newest_ring_slots_with_exact_dropped_count() {
        with_recorder(|| {
            let extra = 100u64;
            let total = RING_SLOTS as u64 + extra;
            for i in 0..total {
                record(EventKind::Run, TraceId::NONE, i, 0);
            }
            let log = FlightRecorder::drain();
            assert_eq!(log.total, total);
            assert_eq!(log.events.len(), RING_SLOTS);
            assert_eq!(log.dropped, extra);
            // Exactly the newest RING_SLOTS survive, still clock-ordered.
            assert_eq!(log.events.first().unwrap().seq, extra);
            assert_eq!(log.events.last().unwrap().seq, total - 1);
            assert!(log.events.windows(2).all(|w| w[0].seq < w[1].seq));
        });
    }

    #[test]
    fn ambient_trace_nests_and_restores() {
        with_recorder(|| {
            assert!(ambient().is_none());
            let outer = TraceId::mint();
            let inner = TraceId::mint();
            with_trace(outer, || {
                record_ambient(EventKind::Run, 1, 0);
                with_trace(inner, || record_ambient(EventKind::Seal, 2, 0));
                record_ambient(EventKind::Fault, 3, 0);
            });
            assert!(ambient().is_none());
            let log = FlightRecorder::drain();
            assert_eq!(log.of_trace(outer).len(), 2);
            assert_eq!(log.of_trace(inner).len(), 1);
        });
    }

    #[test]
    fn drain_is_non_destructive_and_concurrent_safe() {
        with_recorder(|| {
            record(EventKind::Produce, TraceId::NONE, 10, 0);
            let first = FlightRecorder::drain();
            let second = FlightRecorder::drain();
            assert_eq!(first, second);
            // A writer racing the drain only ever adds whole records.
            let writer = std::thread::spawn(|| {
                for i in 0..50_000u64 {
                    record(EventKind::Run, TraceId(1), i, 0);
                }
            });
            for _ in 0..50 {
                let log = FlightRecorder::drain();
                for e in &log.events {
                    assert!(EventKind::from_u64(e.kind as u64).is_some());
                }
                assert!(log.events.windows(2).all(|w| w[0].seq < w[1].seq));
            }
            writer.join().unwrap();
        });
    }

    #[test]
    fn timeline_groups_lanes_in_first_seen_order() {
        with_recorder(|| {
            let t1 = TraceId::mint();
            let t2 = TraceId::mint();
            record(EventKind::Enqueue, t2, 0, 2);
            record(EventKind::Enqueue, t1, 1, 2);
            record(EventKind::Run, t2, 5, 0);
            let timeline = Timeline::build(&FlightRecorder::drain());
            assert_eq!(timeline.lanes.len(), 2);
            assert_eq!(timeline.lanes[0].trace, t2);
            assert_eq!(timeline.lanes[1].trace, t1);
            assert_eq!(timeline.lane(t2).unwrap().events.len(), 2);
            let text = timeline.render();
            assert!(text.contains("enqueue(request=0, batch=2)"));
            assert!(text.contains("run(instructions=5, exit=halt)"));
        });
    }

    #[test]
    fn chrome_trace_is_well_formed_json_with_schema() {
        with_recorder(|| {
            let t = TraceId::mint();
            record(EventKind::Enqueue, t, 0, 1);
            record(EventKind::Claim, t, 0, 3);
            let json = chrome_trace(&FlightRecorder::drain());
            assert!(crate::json_well_formed(&json), "not well-formed: {json}");
            assert!(json.contains("\"schema\": \"deflection-trace-v1\""));
            assert!(json.contains("\"name\": \"claim\""));
            assert!(json.contains(&format!("\"tid\": {}", t.0)));
        });
    }

    #[test]
    fn describe_names_every_kind() {
        for k in 1..=14 {
            let kind = EventKind::from_u64(k).unwrap();
            let e = FlightEvent { seq: 0, trace: TraceId::NONE, kind, a: 1, b: 2 };
            assert!(e.describe().starts_with(kind.name()), "{kind:?}");
        }
        assert!(EventKind::from_u64(0).is_none());
        assert!(EventKind::from_u64(15).is_none());
    }
}
