//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Authenticates every encrypted record in the P0 channel so the untrusted
//! host cannot tamper with code or data in transit to the bootstrap enclave.

/// Tag size in bytes.
pub const TAG_LEN: usize = 16;
/// Key size in bytes (`r || s`).
pub const KEY_LEN: usize = 32;

/// Incremental Poly1305 MAC using 26-bit limb arithmetic.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a MAC instance from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // r is clamped per the RFC.
        let r0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let r1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let r2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let r3 = u32::from_le_bytes(key[12..16].try_into().unwrap());
        let r = [
            r0 & 0x03ff_ffff,
            ((r0 >> 26) | (r1 << 6)) & 0x03ff_ff03,
            ((r1 >> 20) | (r2 << 12)) & 0x03ff_c0ff,
            ((r2 >> 14) | (r3 << 18)) & 0x03f0_3fff,
            (r3 >> 8) & 0x000f_ffff,
        ];
        let pad = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];
        Poly1305 { r, h: [0; 5], pad, buf: [0; 16], buf_len: 0 }
    }

    fn block(&mut self, block: &[u8; 16], partial: bool) {
        let hibit: u32 = if partial { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap());

        let h0 = (self.h[0] + (t0 & 0x03ff_ffff)) as u64;
        let h1 = (self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff)) as u64;
        let h2 = (self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff)) as u64;
        let h3 = (self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff)) as u64;
        let h4 = (self.h[4] + ((t3 >> 8) | hibit)) as u64;

        let r0 = self.r[0] as u64;
        let r1 = self.r[1] as u64;
        let r2 = self.r[2] as u64;
        let r3 = self.r[3] as u64;
        let r4 = self.r[4] as u64;
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c: u64;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d1 += c;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        c = d1 >> 26;
        d2 += c;
        let h1 = (d1 & 0x03ff_ffff) as u32;
        c = d2 >> 26;
        d3 += c;
        let h2 = (d2 & 0x03ff_ffff) as u32;
        c = d3 >> 26;
        d4 += c;
        let h3 = (d3 & 0x03ff_ffff) as u32;
        c = d4 >> 26;
        let h4 = (d4 & 0x03ff_ffff) as u32;
        let h0 = h0 + (c as u32) * 5;
        let c2 = h0 >> 26;
        let h0 = h0 & 0x03ff_ffff;
        let h1 = h1 + c2;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 16 {
                let b = self.buf;
                self.block(&b, false);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 16 {
            let (block, tail) = rest.split_at(16);
            let mut b = [0u8; 16];
            b.copy_from_slice(block);
            self.block(&b, false);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the MAC and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut b = [0u8; 16];
            b[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            b[self.buf_len] = 1;
            self.block(&b, true);
        }
        // Full carry propagation.
        let mut h0 = self.h[0];
        let mut h1 = self.h[1];
        let mut h2 = self.h[2];
        let mut h3 = self.h[3];
        let mut h4 = self.h[4];
        let mut c: u32;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + (-p) and select based on overflow.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        let mask = (g4 >> 31).wrapping_sub(1); // all-ones if g4 >= 0 (h >= p)
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & 0x03ff_ffff & mask);

        // Serialize to 128 bits.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // Add s with carry.
        let mut f: u64;
        let mut out = [0u8; TAG_LEN];
        f = w0 as u64 + self.pad[0] as u64;
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = w1 as u64 + self.pad[1] as u64 + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = w2 as u64 + self.pad[2] as u64 + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = w3 as u64 + self.pad[3] as u64 + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }
}

/// One-shot Poly1305 MAC.
#[must_use]
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 section 2.5.2
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_zero_tag_on_empty() {
        let key = [0u8; 32];
        // r = 0 so the polynomial evaluates to 0; tag = s = 0.
        assert_eq!(poly1305(&key, b"anything"), [0u8; 16]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 3 + 1) as u8);
        let msg: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 100, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn tag_depends_on_message() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 + 1);
        assert_ne!(poly1305(&key, b"message one"), poly1305(&key, b"message two"));
    }
}
