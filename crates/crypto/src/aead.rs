//! ChaCha20-Poly1305 AEAD construction (RFC 8439).
//!
//! This is the record protection used on every DEFLECTION channel: code
//! delivery (`ecall_receive_binary`), data delivery (`ecall_receive_userdata`)
//! and the P0 `send`/`recv` OCall wrappers, where the plaintext is
//! additionally padded to a fixed record length before sealing (entropy
//! control; see `deflection_core::runtime`).

use crate::chacha20::{chacha20_apply, chacha20_block, KEY_LEN, NONCE_LEN};
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::{ct_eq, CryptoError};

/// An authenticated encryption context bound to one 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD context for `key`.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    fn mac(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let block0 = chacha20_block(&self.key, 0, nonce);
        let otk: [u8; 32] = block0[..32].try_into().unwrap();
        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = chacha20_apply(&self.key, nonce, 1, plaintext);
        let tag = self.mac(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts and authenticates `sealed` (`ciphertext || tag`).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TruncatedCiphertext`] if `sealed` is shorter
    /// than a tag, and [`CryptoError::TagMismatch`] if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.mac(nonce, aad, ct);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::TagMismatch);
        }
        Ok(chacha20_apply(&self.key, nonce, 1, ct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 section 2.8.2
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20Poly1305::new(&key);
        let sealed = cipher.seal(&nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let opened = cipher.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        let nonce = [3u8; 12];
        let mut sealed = cipher.seal(&nonce, b"", b"secret payload");
        sealed[0] ^= 1;
        assert_eq!(cipher.open(&nonce, b"", &sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn tamper_tag_detected() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        let nonce = [3u8; 12];
        let mut sealed = cipher.seal(&nonce, b"", b"secret payload");
        let n = sealed.len();
        sealed[n - 1] ^= 0x80;
        assert_eq!(cipher.open(&nonce, b"", &sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn wrong_aad_detected() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        let nonce = [3u8; 12];
        let sealed = cipher.seal(&nonce, b"role=owner", b"data");
        assert_eq!(cipher.open(&nonce, b"role=provider", &sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn truncated_rejected() {
        let cipher = ChaCha20Poly1305::new(&[9u8; 32]);
        assert_eq!(cipher.open(&[0u8; 12], b"", &[0u8; 15]), Err(CryptoError::TruncatedCiphertext));
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let cipher = ChaCha20Poly1305::new(&[1u8; 32]);
        let nonce = [0u8; 12];
        let sealed = cipher.seal(&nonce, b"hdr", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(cipher.open(&nonce, b"hdr", &sealed).unwrap(), b"");
    }
}
