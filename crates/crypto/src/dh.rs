//! Finite-field Diffie–Hellman key agreement.
//!
//! After both parties attest the bootstrap enclave (paper Section III-A, "Key
//! agreement procedure"), they negotiate shared session keys by
//! Diffie–Hellman. We use the prime field GF(2^255 − 19) with generator 2 and
//! derive the symmetric session key from the shared secret with HKDF.

use crate::hmac::hkdf;
use crate::u256::U256;
use crate::CryptoError;

/// The field prime `2^255 - 19`.
#[must_use]
pub fn prime() -> U256 {
    // 2^255 - 19 = 0x7fff...ffed
    let mut bytes = [0xffu8; 32];
    bytes[0] = 0x7f;
    bytes[31] = 0xed;
    U256::from_be_bytes(&bytes)
}

/// The group generator.
#[must_use]
pub fn generator() -> U256 {
    U256::from_u64(2)
}

/// A Diffie–Hellman private key (a reduced field element).
#[derive(Debug, Clone)]
pub struct PrivateKey {
    scalar: U256,
}

/// A Diffie–Hellman public value `g^x mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    value: U256,
}

impl PrivateKey {
    /// Derives a private key from 32 bytes of secret randomness.
    ///
    /// The bytes are reduced into the field; values reducing to 0 or 1 are
    /// nudged to a safe scalar so the key is never degenerate.
    #[must_use]
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let mut scalar = U256::from_be_bytes(seed).reduce(prime());
        if scalar.is_zero() || scalar == U256::ONE {
            scalar = U256::from_u64(0x1001);
        }
        PrivateKey { scalar }
    }

    /// Computes the public value for this key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey { value: generator().mod_pow(self.scalar, prime()) }
    }

    /// Computes the raw shared secret with a peer's public value.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPublicKey`] if the peer value is outside
    /// `[2, p-2]` (which would force a degenerate shared secret).
    pub fn shared_secret(&self, peer: &PublicKey) -> Result<[u8; 32], CryptoError> {
        peer.validate()?;
        let secret = peer.value.mod_pow(self.scalar, prime());
        Ok(secret.to_be_bytes())
    }

    /// Derives a 32-byte symmetric session key bound to `context`.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::InvalidPublicKey`] from
    /// [`PrivateKey::shared_secret`].
    pub fn session_key(&self, peer: &PublicKey, context: &[u8]) -> Result<[u8; 32], CryptoError> {
        let ss = self.shared_secret(peer)?;
        let okm = hkdf(b"deflection-dh", &ss, context, 32);
        Ok(okm.try_into().expect("hkdf returned requested length"))
    }
}

impl PublicKey {
    /// Serializes to 32 big-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        self.value.to_be_bytes()
    }

    /// Deserializes from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPublicKey`] for values outside `[2, p-2]`.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, CryptoError> {
        let pk = PublicKey { value: U256::from_be_bytes(bytes) };
        pk.validate()?;
        Ok(pk)
    }

    fn validate(&self) -> Result<(), CryptoError> {
        let p = prime();
        let two = U256::from_u64(2);
        let (p_minus_1, _) = p.overflowing_sub(U256::ONE);
        if self.value < two || self.value >= p_minus_1 {
            return Err(CryptoError::InvalidPublicKey);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_agreement_matches() {
        let alice = PrivateKey::from_seed(&[0xA5; 32]);
        let bob = PrivateKey::from_seed(&[0x5A; 32]);
        let s1 = alice.shared_secret(&bob.public_key()).unwrap();
        let s2 = bob.shared_secret(&alice.public_key()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_peers_different_secrets() {
        let alice = PrivateKey::from_seed(&[1; 32]);
        let bob = PrivateKey::from_seed(&[2; 32]);
        let carol = PrivateKey::from_seed(&[3; 32]);
        let ab = alice.shared_secret(&bob.public_key()).unwrap();
        let ac = alice.shared_secret(&carol.public_key()).unwrap();
        assert_ne!(ab, ac);
    }

    #[test]
    fn session_key_context_separation() {
        let alice = PrivateKey::from_seed(&[7; 32]);
        let bob = PrivateKey::from_seed(&[8; 32]);
        let owner = alice.session_key(&bob.public_key(), b"role:data-owner").unwrap();
        let provider = alice.session_key(&bob.public_key(), b"role:code-provider").unwrap();
        assert_ne!(owner, provider);
    }

    #[test]
    fn rejects_degenerate_public_values() {
        assert!(PublicKey::from_bytes(&[0u8; 32]).is_err());
        let mut one = [0u8; 32];
        one[31] = 1;
        assert!(PublicKey::from_bytes(&one).is_err());
        // p - 1 is also rejected.
        let mut pm1 = prime().to_be_bytes();
        pm1[31] -= 1;
        assert!(PublicKey::from_bytes(&pm1).is_err());
    }

    #[test]
    fn public_key_roundtrip() {
        let key = PrivateKey::from_seed(&[0x33; 32]);
        let pk = key.public_key();
        let rt = PublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(pk, rt);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let key = PrivateKey::from_seed(&[0; 32]);
        // Must still produce a valid, non-trivial public key.
        assert!(PublicKey::from_bytes(&key.public_key().to_bytes()).is_ok());
    }
}
