//! # deflection-crypto
//!
//! From-scratch cryptographic substrate for the DEFLECTION reproduction.
//!
//! The DEFLECTION model (DSN 2021) needs a small set of primitives to realize
//! the delegation workflow of its Figure 1:
//!
//! * [`sha256`] — enclave measurement (MRENCLAVE-style) and quote digests,
//! * [`hmac`] — platform quote signing in the simulated SGX and HKDF key
//!   derivation for session keys,
//! * [`chacha20`] / [`poly1305`] / [`aead`] — the encrypted, padded record
//!   channel between the data owner / code provider and the bootstrap enclave
//!   (security policy **P0**: output encryption and entropy control),
//! * [`u256`] / [`dh`] — finite-field Diffie–Hellman for the key agreement the
//!   paper performs after remote attestation,
//! * [`drbg`] — a deterministic random bit generator so every experiment in
//!   the benchmark harness is reproducible.
//!
//! All algorithms are implemented in this crate against their published test
//! vectors (RFC 8439 for ChaCha20/Poly1305, FIPS 180-4 for SHA-256, RFC 4231
//! for HMAC, RFC 5869 for HKDF); no external cryptography crates are used.
//!
//! # Example
//!
//! ```
//! use deflection_crypto::aead::ChaCha20Poly1305;
//!
//! let key = [7u8; 32];
//! let cipher = ChaCha20Poly1305::new(&key);
//! let nonce = [1u8; 12];
//! let sealed = cipher.seal(&nonce, b"session header", b"patient record");
//! let opened = cipher.open(&nonce, b"session header", &sealed).unwrap();
//! assert_eq!(opened, b"patient record");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod dh;
pub mod drbg;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
pub mod u256;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AEAD open failed because the authentication tag did not verify.
    TagMismatch,
    /// A ciphertext was too short to contain the mandatory tag.
    TruncatedCiphertext,
    /// A Diffie–Hellman public value was outside the valid group range.
    InvalidPublicKey,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::TruncatedCiphertext => write!(f, "ciphertext shorter than tag"),
            CryptoError::InvalidPublicKey => write!(f, "invalid diffie-hellman public key"),
        }
    }
}

impl StdError for CryptoError {}

/// Constant-time equality comparison for secret material.
///
/// Returns `true` when `a` and `b` have equal length and contents, examining
/// every byte regardless of where the first difference occurs.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"abc", b"abcd"));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CryptoError::TagMismatch,
            CryptoError::TruncatedCiphertext,
            CryptoError::InvalidPublicKey,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
