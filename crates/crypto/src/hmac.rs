//! HMAC-SHA256 (RFC 2104 / 4231) and HKDF (RFC 5869).
//!
//! The simulated SGX platform signs quotes with HMAC under a platform key the
//! Attestation Service shares (standing in for EPID/ECDSA quote signatures),
//! and the RA-TLS-style handshake derives role-separated session keys via
//! HKDF, as the paper's key agreement procedure requires.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes HMAC-SHA256 of `data` under `key`.
///
/// ```
/// use deflection_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract: derives a pseudorandom key from input keying material.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out_len` bytes of keying material bound
/// to `info`.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32`, the RFC 5869 limit.
#[must_use]
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut msg = prev.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let t = hmac_sha256(prk, &msg);
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        prev = t.to_vec();
        counter = counter.wrapping_add(1);
    }
    out
}

/// One-shot HKDF (extract + expand).
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2_short_key() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case6_key_longer_than_block() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_zero_length_output() {
        assert!(hkdf(b"s", b"k", b"i", 0).is_empty());
    }

    #[test]
    fn hkdf_different_info_different_keys() {
        let a = hkdf(b"salt", b"secret", b"client", 32);
        let b = hkdf(b"salt", b"secret", b"server", 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn hkdf_output_limit_enforced() {
        let _ = hkdf(b"s", b"k", b"i", 255 * 32 + 1);
    }
}
