//! ChaCha20 stream cipher (RFC 8439).
//!
//! Encrypts every record that crosses the enclave boundary in the P0
//! enforcement path (OCall `send`/`recv` wrappers) and the code/data delivery
//! ECalls, so neither the untrusted host nor the network sees plaintext.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`.
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = chacha20_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Encrypts (or decrypts) `data`, returning a new buffer.
#[must_use]
pub fn chacha20_apply(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    chacha20_xor(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encrypt_vector() {
        // RFC 8439 section 2.4.2
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = chacha20_apply(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn xor_roundtrip() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let msg: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let ct = chacha20_apply(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        let pt = chacha20_apply(&key, &nonce, 0, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn empty_input() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert!(chacha20_apply(&key, &nonce, 0, b"").is_empty());
    }

    #[test]
    fn counter_offsets_differ() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let a = chacha20_apply(&key, &nonce, 0, &[0u8; 64]);
        let b = chacha20_apply(&key, &nonce, 1, &[0u8; 64]);
        assert_ne!(a, b);
        // Keystream continuity: block 1 of stream-from-0 equals block 0 of stream-from-1.
        let long = chacha20_apply(&key, &nonce, 0, &[0u8; 128]);
        assert_eq!(&long[64..], &b[..]);
    }
}
