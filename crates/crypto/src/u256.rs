//! Minimal 256-bit unsigned integer arithmetic.
//!
//! Supports exactly the operations the finite-field Diffie–Hellman key
//! agreement in [`crate::dh`] needs: comparison, modular addition, modular
//! multiplication (binary method) and modular exponentiation (square and
//! multiply). Handshakes are rare, so clarity is preferred over speed.

// Limb arithmetic reads most clearly with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 { limbs: [1, 0, 0, 0] };

    /// Constructs from little-endian limbs.
    #[must_use]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Constructs from a `u64`.
    #[must_use]
    pub const fn from_u64(v: u64) -> Self {
        U256 { limbs: [v, 0, 0, 0] }
    }

    /// Reads a big-endian 32-byte value.
    #[must_use]
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let start = (3 - i) * 8;
            limbs[i] = u64::from_be_bytes(bytes[start..start + 8].try_into().unwrap());
        }
        U256 { limbs }
    }

    /// Writes the value as 32 big-endian bytes.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let start = (3 - i) * 8;
            out[start..start + 8].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Tests bit `i` (0 = least significant).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition returning the carry-out.
    #[must_use]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s, c2) = s.overflowing_add(carry as u64);
            out[i] = s;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping subtraction returning the borrow-out.
    #[must_use]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d, b2) = d.overflowing_sub(borrow as u64);
            out[i] = d;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Shifts left by one bit, returning the shifted value and the bit
    /// shifted out.
    #[must_use]
    pub fn shl1(self) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        (U256 { limbs: out }, carry == 1)
    }

    /// Modular addition: `(self + rhs) mod modulus`.
    ///
    /// Both inputs must already be reduced.
    #[must_use]
    pub fn mod_add(self, rhs: U256, modulus: U256) -> U256 {
        debug_assert!(self < modulus && rhs < modulus);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= modulus {
            sum.overflowing_sub(modulus).0
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod modulus`.
    #[must_use]
    pub fn mod_sub(self, rhs: U256, modulus: U256) -> U256 {
        debug_assert!(self < modulus && rhs < modulus);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.overflowing_add(modulus).0
        } else {
            diff
        }
    }

    /// Reduces an arbitrary value modulo `modulus` (binary long division).
    #[must_use]
    pub fn reduce(self, modulus: U256) -> U256 {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        if self < modulus {
            return self;
        }
        let mut rem = U256::ZERO;
        for i in (0..256).rev() {
            let (shifted, _) = rem.shl1();
            rem = shifted;
            if self.bit(i) {
                rem.limbs[0] |= 1;
            }
            if rem >= modulus {
                rem = rem.overflowing_sub(modulus).0;
            }
        }
        rem
    }

    /// Modular multiplication via the binary (double-and-add) method.
    #[must_use]
    pub fn mod_mul(self, rhs: U256, modulus: U256) -> U256 {
        let a = self.reduce(modulus);
        let b = rhs.reduce(modulus);
        let mut acc = U256::ZERO;
        // Iterate over b's bits from most significant down.
        for i in (0..b.bits()).rev() {
            acc = acc.mod_add(acc, modulus);
            if b.bit(i) {
                acc = acc.mod_add(a, modulus);
            }
        }
        acc
    }

    /// Modular exponentiation via square-and-multiply.
    #[must_use]
    pub fn mod_pow(self, exponent: U256, modulus: U256) -> U256 {
        let base = self.reduce(modulus);
        let mut acc = U256::ONE.reduce(modulus);
        for i in (0..exponent.bits()).rev() {
            acc = acc.mod_mul(acc, modulus);
            if exponent.bit(i) {
                acc = acc.mod_mul(base, modulus);
            }
        }
        acc
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn be_bytes_roundtrip() {
        let bytes: [u8; 32] = core::array::from_fn(|i| i as u8);
        let v = U256::from_be_bytes(&bytes);
        assert_eq!(v.to_be_bytes(), bytes);
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(U256::from_limbs([0, 1, 0, 0]) > U256::from_limbs([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn add_with_carry() {
        let max = U256::from_limbs([u64::MAX; 4]);
        let (sum, carry) = max.overflowing_add(U256::ONE);
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn sub_with_borrow() {
        let (diff, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::from_limbs([u64::MAX; 4]));
    }

    #[test]
    fn mod_small_values() {
        let p = u(97);
        assert_eq!(u(50).mod_add(u(60), p), u(13));
        assert_eq!(u(10).mod_sub(u(20), p), u(87));
        assert_eq!(u(13).mod_mul(u(17), p), u(13 * 17 % 97));
        assert_eq!(u(5).mod_pow(u(3), p), u(125 % 97));
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = u(1_000_000_007);
        let a = u(123_456_789);
        assert_eq!(a.mod_pow(u(1_000_000_006), p), U256::ONE);
    }

    #[test]
    fn reduce_wide_value() {
        let big = U256::from_limbs([5, 0, 0, 1]); // 2^192 + 5
        let p = u(1000);
        // 2^192 mod 1000 = 6277101735386680763835789423207666416102355444464034512896 mod 1000 = 896
        assert_eq!(big.reduce(p), u(901));
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        assert_eq!(u(42).mod_pow(U256::ZERO, u(97)), U256::ONE);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(u(1).bits(), 1);
        assert_eq!(u(0xFF).bits(), 8);
        assert_eq!(U256::from_limbs([0, 0, 0, 1]).bits(), 193);
    }
}
