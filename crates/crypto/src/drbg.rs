//! HMAC-based deterministic random bit generator (HMAC_DRBG, NIST SP 800-90A
//! shaped, simplified: no reseed counter enforcement).
//!
//! Every source of randomness in the reproduction — workload inputs, FASTA
//! sequences, DH seeds in tests, the AEX/attacker stochastic models — flows
//! through this DRBG so experiments are bit-for-bit reproducible from a seed.

use crate::hmac::hmac_sha256;

/// Deterministic random bit generator keyed by an arbitrary seed.
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    #[must_use]
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg { key: [0u8; 32], value: [1u8; 32] };
        drbg.update(Some(seed));
        drbg
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = self.value.to_vec();
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &msg);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(p) = provided {
            let mut msg = self.value.to_vec();
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &msg);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.value[..take]);
            filled += take;
        }
        self.update(None);
    }

    /// Returns `n` pseudorandom bytes.
    #[must_use]
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill(&mut out);
        out
    }

    /// Returns a pseudorandom `u64`.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// Returns a pseudorandom value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a pseudorandom `f64` in `[0, 1)`.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-1");
        let mut b = HmacDrbg::new(b"seed-2");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = HmacDrbg::new(b"seed");
        let x = a.bytes(32);
        let y = a.bytes(32);
        assert_ne!(x, y);
    }

    #[test]
    fn below_respects_bound() {
        let mut a = HmacDrbg::new(b"bound-test");
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut a = HmacDrbg::new(b"coverage");
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[a.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut a = HmacDrbg::new(b"f64");
        for _ in 0..1000 {
            let v = a.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        let mut a = HmacDrbg::new(b"x");
        let _ = a.below(0);
    }
}
