//! **Ablation** — co-location test accuracy (paper Section IV-C).
//!
//! The paper runs 25.6 M unit tests of the HyperRace co-location probe on
//! four processors and reports false-positive rates "on the same order of
//! magnitude", treating α as the tunable of the P6 threshold trade-off.
//! This bench estimates α for each simulated CPU profile and shows the
//! detection/false-alarm trade-off that justifies the threshold knob in
//! the manifest.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_sgx_sim::coloc::{ColocationTester, PROFILES};
use std::time::Duration;

const TRIALS: u64 = 2_000_000;

fn print_table() {
    println!("\n=== Ablation: co-location probe accuracy (P6) ===\n");
    println!("{:<14} {:>12} {:>14} {:>16}", "CPU", "α (model)", "α (estimated)", "detection rate");
    println!("{:-<60}", "");
    for (i, profile) in PROFILES.iter().enumerate() {
        let mut tester = ColocationTester::new(*profile, 0xC0C0 + i as u64);
        let alpha = tester.estimate_alpha(TRIALS);
        // Detection rate with an attacker on the sibling thread.
        tester.attacker_present = true;
        let detected = (0..100_000).filter(|_| !tester.probe()).count();
        println!(
            "{:<14} {:>12.1e} {:>14.1e} {:>15.3}%",
            profile.name,
            profile.alpha,
            alpha,
            detected as f64 / 1000.0
        );
    }
    println!(
        "\npaper: α estimated over 25.6M trials per CPU, all on the same order of\n\
         magnitude — matching the single-order spread across the four profiles above.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    c.bench_function("ablation/coloc_probe", |b| {
        let mut tester = ColocationTester::new(PROFILES[0], 7);
        b.iter(|| tester.probe())
    });
    c.bench_function("ablation/alpha_100k", |b| {
        b.iter(|| {
            let mut tester = ColocationTester::new(PROFILES[1], 11);
            tester.estimate_alpha(100_000)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
