//! **Ablation — parallel verification** (sharded verifier + install cache).
//!
//! Two claims are measured on the largest nBench kernel (IDEA):
//!
//! * the sharded verifier (`verify_with_layout_threaded`) reaches ≥2×
//!   wall-clock speedup at 4 threads over the serial TCB path while
//!   returning a bit-identical verdict — asserted here whenever the host
//!   actually has ≥4 cores;
//! * an 8-worker [`EnclavePool`] amortizes verification: `install_all`
//!   runs the pipeline exactly **once** per unique code hash and replays
//!   the captured image into the other workers, versus 8 independent
//!   pipeline runs for `install_all_independent`.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::consumer::{load, verify_with_layout_threaded};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::pool::EnclavePool;
use deflection_core::producer::produce_for_layout;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::mem::Memory;
use deflection_workloads::nbench;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TRIALS: usize = 12;
const POOL_WORKERS: usize = 8;

/// The relocated verification inputs of one binary: exactly what
/// `install` hands the verifier after the loader runs.
struct VerifyInputs {
    code: Vec<u8>,
    entry: usize,
    ibt: Vec<usize>,
    layout: EnclaveLayout,
}

fn verify_inputs(binary: &[u8]) -> VerifyInputs {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).expect("bench binary loads");
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    VerifyInputs { code, entry, ibt: program.ibt_offsets, layout }
}

/// Best-of-N wall time of one threaded verification, plus the instance
/// count (used to pin verdict equality across thread counts).
fn time_verify(v: &VerifyInputs, policy: &PolicySet, threads: usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut instances = 0;
    for _ in 0..TRIALS {
        let start = Instant::now();
        let verified =
            verify_with_layout_threaded(&v.code, v.entry, &v.ibt, policy, &v.layout, threads)
                .expect("bench binary verifies");
        best = best.min(start.elapsed());
        instances = verified.instances.len();
    }
    (best, instances)
}

fn print_table() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("\n=== Ablation: sharded verification on nBench IDEA ({cores} host cores) ===\n");

    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let kernel = nbench::all().into_iter().find(|k| k.name == "IDEA").expect("kernel exists");
    let source = (kernel.source)();
    let binary = produce_for_layout(&source, &policy, &layout).expect("compiles").serialize();
    let inputs = verify_inputs(&binary);

    println!("{:<10} {:>14} {:>10} {:>10}", "threads", "verify (best)", "speedup", "instances");
    println!("{:-<48}", "");
    let (serial, serial_instances) = time_verify(&inputs, &policy, 1);
    for threads in THREAD_COUNTS {
        let (t, instances) = time_verify(&inputs, &policy, threads);
        assert_eq!(instances, serial_instances, "verdict must be identical at every thread count");
        println!(
            "{:<10} {:>12.1?} {:>9.2}x {:>10}",
            threads,
            t,
            serial.as_secs_f64() / t.as_secs_f64(),
            instances
        );
        if threads == 4 && cores >= 4 {
            let speedup = serial.as_secs_f64() / t.as_secs_f64();
            assert!(
                speedup >= 2.0,
                "expected >=2x verify speedup at 4 threads on a {cores}-core host, got {speedup:.2}x"
            );
        }
    }
    println!("{:-<48}", "");
    if cores < 4 {
        println!(
            "\nnote: host exposes only {cores} core(s); the >=2x @ 4 threads\n\
             assertion needs >=4 cores and was skipped. Verdict equality was\n\
             still asserted at every thread count.\n"
        );
    }

    // --- install-cache amortization -------------------------------------
    let manifest = {
        let mut m = Manifest::ccaas();
        m.policy = policy;
        m
    };
    // Warm the allocator/page pools so both timed installs start from the
    // same steady state (the first pool construction is dominated by cold
    // memory-map setup, not by verification), then take best-of-3 over
    // fresh pools for each strategy.
    let mut warmup = EnclavePool::new(&layout, &manifest, POOL_WORKERS);
    warmup.install_all_independent(&binary).expect("verifies");
    drop(warmup);

    let mut t_cached = Duration::MAX;
    for _ in 0..3 {
        let mut cached = EnclavePool::new(&layout, &manifest, POOL_WORKERS);
        let start = Instant::now();
        cached.install_all(&binary).expect("verifies");
        t_cached = t_cached.min(start.elapsed());
        assert_eq!(
            cached.verification_count(),
            1,
            "install_all must verify exactly once per unique code hash"
        );
        // Reinstall of the same binary: pure replay, still one verification.
        cached.install_all(&binary).expect("replays");
        assert_eq!(cached.verification_count(), 1, "cache hit must not re-verify");
    }

    let mut t_indep = Duration::MAX;
    for _ in 0..3 {
        let mut independent = EnclavePool::new(&layout, &manifest, POOL_WORKERS);
        let start = Instant::now();
        independent.install_all_independent(&binary).expect("verifies");
        t_indep = t_indep.min(start.elapsed());
        assert_eq!(independent.verification_count(), POOL_WORKERS);
    }

    println!("=== Install-cache amortization ({POOL_WORKERS}-worker pool, IDEA) ===\n");
    println!("{:<22} {:>14} {:>14}", "strategy", "verifications", "install time");
    println!("{:-<52}", "");
    println!("{:<22} {:>14} {:>12.1?}", "install_all (cached)", 1, t_cached);
    println!("{:<22} {:>14} {:>12.1?}", "independent", POOL_WORKERS, t_indep);
    println!("{:-<52}", "");
    println!(
        "\nThe cached path verifies once on worker 0 and replays the captured\n\
         image into the remaining {} workers (measurement-checked, fail-closed);\n\
         see DESIGN.md \"Verifier threading model\" for the soundness argument.\n",
        POOL_WORKERS - 1
    );
}

fn bench(c: &mut Criterion) {
    print_table();

    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let kernel = nbench::all().into_iter().find(|k| k.name == "IDEA").expect("kernel exists");
    let source = (kernel.source)();
    let binary = produce_for_layout(&source, &policy, &layout).expect("compiles").serialize();
    let inputs = verify_inputs(&binary);

    for threads in [1usize, 4] {
        c.bench_function(&format!("parallel_verify/verify/{threads}-threads"), |b| {
            b.iter(|| {
                verify_with_layout_threaded(
                    &inputs.code,
                    inputs.entry,
                    &inputs.ibt,
                    &policy,
                    &inputs.layout,
                    threads,
                )
                .expect("verifies")
            })
        });
    }

    let manifest = {
        let mut m = Manifest::ccaas();
        m.policy = policy;
        m
    };
    c.bench_function("parallel_verify/pool/install_all_cached", {
        let binary = binary.clone();
        let manifest = manifest.clone();
        let layout = layout.clone();
        move |b| {
            b.iter(|| {
                let mut pool = EnclavePool::new(&layout, &manifest, POOL_WORKERS);
                pool.install_all(&binary).expect("verifies")
            })
        }
    });
    c.bench_function("parallel_verify/pool/install_all_independent", {
        let binary = binary.clone();
        let manifest = manifest.clone();
        let layout = layout.clone();
        move |b| {
            b.iter(|| {
                let mut pool = EnclavePool::new(&layout, &manifest, POOL_WORKERS);
                pool.install_all_independent(&binary).expect("verifies")
            })
        }
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
