//! **Table I** — TCB comparison with other shielding runtimes.
//!
//! The paper's Table I compares the kLoC and binary size of each runtime's
//! core components. Our in-enclave TCB is the consumer (loader + verifier +
//! rewriter), the annotation matchers and the P0 runtime; we count the real
//! lines of this repository and print them against the paper's published
//! numbers for Ryoan, SCONE, Graphene-SGX and Occlum.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// In-enclave TCB sources, embedded so the count reflects this build.
const TCB_SOURCES: &[(&str, &str)] = &[
    ("consumer/loader", include_str!("../../core/src/consumer/loader.rs")),
    ("consumer/verifier", include_str!("../../core/src/consumer/verifier.rs")),
    ("consumer/rewriter", include_str!("../../core/src/consumer/rewriter.rs")),
    ("consumer/mod", include_str!("../../core/src/consumer/mod.rs")),
    ("annotations (matchers)", include_str!("../../core/src/annotations.rs")),
    ("runtime (P0 wrappers)", include_str!("../../core/src/runtime.rs")),
    // The sealed install cache runs in-enclave: it derives the sealing
    // key, verifies the MAC and rebuilds the image before anything runs.
    ("sealed install cache", include_str!("../../core/src/sealed.rs")),
    // The audit ring also lives in-enclave: it records policy-relevant
    // events and serializes the fixed-size export the runtime seals.
    ("audit log (ring)", include_str!("../../core/src/audit.rs")),
    ("policy/manifest", include_str!("../../core/src/policy.rs")),
    ("disassembler engine", include_str!("../../isa/src/disasm.rs")),
    ("instruction decoder", include_str!("../../isa/src/decode.rs")),
    ("object parser", include_str!("../../obj/src/format.rs")),
    // Elision support (`elide_guards`): the verifier re-derives every
    // guard-elision proof with its own in-enclave abstract interpreter, so
    // the whole analysis crate joins the TCB.
    ("analysis (absint)", include_str!("../../analysis/src/absint.rs")),
    ("analysis (cfg/dom)", include_str!("../../analysis/src/cfg.rs")),
    ("analysis (interval)", include_str!("../../analysis/src/interval.rs")),
    ("analysis (api)", include_str!("../../analysis/src/lib.rs")),
];

/// Counts non-blank, non-comment lines that are actually compiled into the
/// enclave: each file keeps its `#[cfg(test)]` module last, so everything
/// from that marker on is test harness and never part of the TCB.
fn code_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .take_while(|l| *l != "#[cfg(test)]")
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn print_table() {
    println!("\n=== Table I: TCB comparison (paper Section VI-A) ===\n");
    println!("{:<18} {:<34} {:>8}", "Runtime", "Core components", "kLoC");
    println!("{:-<64}", "");
    // Paper-reported numbers for the other shielding runtimes.
    for (runtime, component, kloc) in [
        ("Ryoan", "Eglibc", 892.0),
        ("", "NaCl sandbox", 216.0),
        ("", "Naclports", 460.0),
        ("SCONE", "OS shield and shim libc", 187.0),
        ("Graphene-SGX", "Glibc", 1200.0),
        ("", "LibPAL", 22.0),
        ("", "Graphene LibOS", 34.0),
        ("Occlum", "shim libc", 93.0),
        ("", "LibOS and PAL", 24.5),
    ] {
        println!("{runtime:<18} {component:<34} {kloc:>8.1}");
    }
    println!("{:-<64}", "");
    let mut total = 0usize;
    for (name, src) in TCB_SOURCES {
        let lines = code_lines(src);
        total += lines;
        println!(
            "{:<18} {:<34} {:>8.2}",
            if name == &TCB_SOURCES[0].0 { "DEFLECTION" } else { "" },
            name,
            lines as f64 / 1000.0
        );
    }
    println!("{:-<64}", "");
    println!(
        "{:<18} {:<34} {:>8.2}",
        "DEFLECTION total",
        "(measured from this repository)",
        total as f64 / 1000.0
    );
    println!(
        "\npaper: loader <600 LoC + verifier <700 LoC + 9.1 kLoC clipped Capstone;\n\
         ours: {total} LoC total (incl. the elision abstract interpreter the\n\
         verifier runs in-enclave) — same order, an order of magnitude below the\n\
         LibOSes.\n"
    );
    assert!(total < 5_000, "in-enclave TCB must stay small, got {total} LoC");
}

fn bench(c: &mut Criterion) {
    print_table();
    c.bench_function("tcb/line_count", |b| {
        b.iter(|| TCB_SOURCES.iter().map(|(_, s)| code_lines(s)).sum::<usize>())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
