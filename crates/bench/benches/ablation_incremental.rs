//! **Ablation** — content-addressed incremental re-verification vs the
//! full serial verifier on the high-churn patch workload.
//!
//! Builds a star-shaped program (`main` plus 8 loop-heavy store leaves),
//! verifies it once to warm the memo, then times re-verifying a variant
//! with **one** leaf's constant patched — the canonical hot-fix shape —
//! against the full serial verifier on the same patched binary. Asserts:
//!
//! * **the incremental verdict is bit-identical to serial** on both the
//!   base and the patched binary (accept, instruction list, instances);
//! * **exactly one function re-verifies** on the patched install (the
//!   memo's own stats, not wall clock, prove the invalidation set);
//! * **a warm 1-function patch verify is at least 2× faster** than the
//!   full serial verify of the same binary.
//!
//! Both sides of the ratio are single-threaded — the incremental path is
//! serial by design and is compared against the *serial* verifier — so
//! the assertion carries **no core-count gate**: it is enforceable by the
//! trend gate on any host, including 1-core CI containers.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::consumer::incremental::{verify_incremental, IncrementalCache};
use deflection_core::consumer::{load, verify_with_layout};
use deflection_core::policy::PolicySet;
use deflection_core::producer::produce_for_layout;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::mem::Memory;
use std::time::{Duration, Instant};

/// Leaf functions in the star program (the issue floor is 8).
const LEAVES: usize = 8;
/// Timed samples per configuration (after one warm-up each); the minimum
/// is the estimator, as in the icache ablation.
const SAMPLES: usize = 5;
/// Minimum warm-patch speedup over full serial verification.
const INCREMENTAL_FLOOR: f64 = 2.0;

/// The star program: every leaf loops 16 stores through the shared data
/// window (exercising the per-instruction P1 checks and, under elision,
/// the abstract-interpretation fixpoints) and carries a distinct constant
/// so a single-leaf patch is a one-constant source change.
fn star_src(patched_leaf_const: u64) -> String {
    let mut src = String::from("var data: [int; 64];\n");
    for i in 0..LEAVES {
        let k = if i == 0 { patched_leaf_const } else { i as u64 + 1 };
        src.push_str(&format!(
            "fn f{i}(x: int) -> int {{\n    var j: int = 0;\n    var s: int = 0;\n    \
             while (j < 16) {{\n        var l: int = 0;\n        \
             while (l < 4) {{ data[j + l] = x + l; s = s + data[j + l] + {k}; l = l + 1; }}\n        \
             data[j] = s; j = j + 1;\n    }}\n    return s;\n}}\n"
        ));
    }
    src.push_str("fn main() -> int {\n    var s: int = 0;\n");
    for i in 0..LEAVES {
        src.push_str(&format!("    s = s + f{i}({i});\n"));
    }
    src.push_str("    return s;\n}\n");
    src
}

/// The relocated code window and entry offset, exactly as `install` hands
/// them to the verifier.
fn code_window(binary: &[u8], layout: &EnclaveLayout) -> (Vec<u8>, usize, Vec<usize>) {
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).expect("honest binary loads");
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    (code, entry, program.ibt_offsets)
}

fn min_secs(samples: &[Duration]) -> f64 {
    samples.iter().map(Duration::as_secs_f64).fold(f64::INFINITY, f64::min)
}

fn print_table() {
    println!(
        "\n=== Ablation: incremental vs full serial verify (1-leaf patch, P1-P6+elision) ===\n"
    );
    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let base = produce_for_layout(&star_src(1), &policy, &layout).expect("compiles").serialize();
    let patched =
        produce_for_layout(&star_src(1_000_003), &policy, &layout).expect("compiles").serialize();
    let (base_code, base_entry, base_ibt) = code_window(&base, &layout);
    let (code, entry, ibt) = code_window(&patched, &layout);

    // Warm the memo on the base binary and pin the incremental verdicts to
    // the serial ones before timing anything.
    let mut warm = IncrementalCache::new();
    let serial_base = verify_with_layout(&base_code, base_entry, &base_ibt, &policy, &layout)
        .expect("base verifies");
    let incr_base =
        verify_incremental(&base_code, base_entry, &base_ibt, &policy, &layout, &mut warm)
            .expect("base verifies incrementally");
    assert_eq!(serial_base.insts, incr_base.insts, "base: instruction lists diverged");
    assert_eq!(serial_base.instances, incr_base.instances, "base: instances diverged");
    let functions = warm.last_stats().misses;
    assert!(functions as usize > LEAVES, "main + {LEAVES} leaves are distinct functions");

    let serial_patched =
        verify_with_layout(&code, entry, &ibt, &policy, &layout).expect("patch verifies");
    {
        let mut probe = warm.clone();
        let v = verify_incremental(&code, entry, &ibt, &policy, &layout, &mut probe)
            .expect("patch verifies incrementally");
        assert_eq!(serial_patched.insts, v.insts, "patch: instruction lists diverged");
        assert_eq!(serial_patched.instances, v.instances, "patch: instances diverged");
        let s = probe.last_stats();
        assert_eq!(s.misses + s.invalidated, 1, "exactly the patched leaf re-verifies ({s:?})");
        assert_eq!(s.hits, functions - 1, "every other function replays ({s:?})");
    }

    // Interleave the two sides so drift hits both equally; each timed
    // incremental sample clones the warm memo, so every sample pays the
    // same 1-function re-verify (never a 0-function replay).
    let mut serial = Vec::with_capacity(SAMPLES);
    let mut incremental = Vec::with_capacity(SAMPLES);
    for i in 0..=SAMPLES {
        let t0 = Instant::now();
        let s = verify_with_layout(&code, entry, &ibt, &policy, &layout);
        let ds = t0.elapsed();
        let mut memo = warm.clone();
        let t1 = Instant::now();
        let v = verify_incremental(&code, entry, &ibt, &policy, &layout, &mut memo);
        let dv = t1.elapsed();
        assert!(s.is_ok() && v.is_ok());
        if i == 0 {
            continue;
        }
        serial.push(ds);
        incremental.push(dv);
    }
    let (ms, mi) = (min_secs(&serial), min_secs(&incremental));
    let speedup = ms / mi;
    println!("{:<28} {:>12} {:>12} {:>9}", "workload", "serial us", "incr us", "speedup");
    println!("{:-<64}", "");
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>8.2}x",
        format!("1-leaf patch ({} fns)", functions),
        ms * 1e6,
        mi * 1e6,
        speedup
    );
    println!("{:-<64}", "");
    println!(
        "\nwarm 1-function patch verify: {speedup:.2}x over full serial — asserted >= \
         {INCREMENTAL_FLOOR}x with NO core-count gate:\nboth sides are single-threaded, so this \
         baseline is enforceable by the trend gate\non every host, 1-core CI included.\n"
    );
    assert!(
        speedup >= INCREMENTAL_FLOOR,
        "incremental re-verify of a 1-leaf patch must be >= {INCREMENTAL_FLOOR}x faster than \
         full serial verify (serial {:.1}us vs incremental {:.1}us)",
        ms * 1e6,
        mi * 1e6
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    // Trend-tracked Criterion series: the full serial verify and the warm
    // incremental re-verify of the same 1-leaf patch.
    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let base = produce_for_layout(&star_src(1), &policy, &layout).expect("compiles").serialize();
    let patched =
        produce_for_layout(&star_src(1_000_003), &policy, &layout).expect("compiles").serialize();
    let (base_code, base_entry, base_ibt) = code_window(&base, &layout);
    let (code, entry, ibt) = code_window(&patched, &layout);
    let mut warm = IncrementalCache::new();
    verify_incremental(&base_code, base_entry, &base_ibt, &policy, &layout, &mut warm)
        .expect("base verifies");
    {
        let (code, ibt, layout) = (code.clone(), ibt.clone(), layout.clone());
        c.bench_function("incremental/patch_serial", move |b| {
            b.iter(|| verify_with_layout(&code, entry, &ibt, &policy, &layout))
        });
    }
    c.bench_function("incremental/patch_warm", move |b| {
        b.iter(|| {
            let mut memo = warm.clone();
            verify_incremental(&code, entry, &ibt, &policy, &layout, &mut memo)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
