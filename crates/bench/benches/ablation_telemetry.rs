//! **Ablation — telemetry overhead.**
//!
//! The collector must be free when nobody is watching: with telemetry
//! disabled, every instrumentation site is one relaxed atomic load and an
//! early return, and `Span::start` never reads the clock. This bench makes
//! that budget concrete:
//!
//! * measures the disabled per-op cost directly (a counter bump, a
//!   histogram observation and a span open/close in a tight loop),
//! * counts how many telemetry ops one verify+serve flow actually
//!   executes (by running it once with the collector enabled),
//! * asserts `ops × disabled-op cost ≤ 1%` of the measured verify+serve
//!   wall time — the headroom is typically several orders of magnitude,
//! * spot-checks that the verdict and the run report are bit-identical
//!   with the collector on and off.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::produce;
use deflection_core::runtime::{BootstrapEnclave, RunReport};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_telemetry::{Collector, Counter, Histogram, Span, METRICS};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKLOAD: &str = "
    var acc: [int; 64];
    fn main() -> int {
        var n: int = input_len();
        var i: int = 0;
        while (i < 4096) {
            acc[i & 63] = acc[i & 63] + i * n;
            i = i + 1;
        }
        output_byte(0, acc[7] & 0xFF);
        send(1);
        return acc[7];
    }
";

/// One full verify+serve flow: consumer pipeline (install) plus a run.
fn verify_and_serve(binary: &[u8]) -> RunReport {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([0xC4; 32]);
    enclave.install_plain(binary).expect("bench binary verifies");
    enclave.provide_input(&[3, 5, 7]).expect("installed");
    enclave.run(u64::MAX / 2).expect("installed")
}

/// Median wall time of `runs` repetitions of the flow.
fn median_flow_time(binary: &[u8], runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(verify_and_serve(binary));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Disabled-path cost of one instrumentation op, averaged over a tight
/// loop mixing the three site shapes (counter, histogram, span).
fn disabled_op_ns() -> f64 {
    static COUNTER: Counter = Counter::new("bench_probe_total", "");
    static HIST: Histogram = Histogram::new("bench_probe_ns", "");
    Collector::disable();
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        COUNTER.add(1);
        HIST.observe(i);
        let span = Span::start(&HIST);
        black_box(&span);
        drop(span);
    }
    // Three ops per iteration.
    start.elapsed().as_secs_f64() * 1e9 / (ITERS as f64 * 3.0)
}

fn print_table() {
    println!("\n=== Ablation: telemetry collector overhead on verify+serve ===\n");
    let policy = PolicySet::full();
    let binary = produce(WORKLOAD, &policy).expect("compiles").serialize();

    // Verdict/report equality across collector states.
    Collector::disable();
    let off_report = format!("{:?}", verify_and_serve(&binary));
    Collector::enable();
    let on_report = format!("{:?}", verify_and_serve(&binary));
    assert_eq!(off_report, on_report, "collector state changed an observable result");

    // Ops per flow: run once with a clean enabled collector and count the
    // metric *operations* crossed, not the events they carry — the VM
    // flushes hardware-model counters as one `add(delta)` per run, which
    // is one disabled-path load however many thousand events the delta
    // holds.
    Collector::enable();
    Collector::reset();
    let _ = verify_and_serve(&binary);
    let ops = Collector::op_count();
    Collector::disable();

    let op_ns = disabled_op_ns();
    let flow_off = median_flow_time(&binary, 5);
    Collector::enable();
    let flow_on = median_flow_time(&binary, 5);
    Collector::disable();

    let disabled_cost_ns = ops as f64 * op_ns;
    let budget_ns = flow_off.as_secs_f64() * 1e9 * 0.01;
    println!("{:<44} {:>14}", "verify+serve median (collector off)", format!("{flow_off:?}"));
    println!("{:<44} {:>14}", "verify+serve median (collector on)", format!("{flow_on:?}"));
    println!("{:<44} {:>14}", "telemetry ops per flow", ops);
    println!("{:<44} {:>11.3} ns", "disabled cost per op", op_ns);
    println!(
        "{:<44} {:>11.3} µs  (1% budget: {:.1} µs)",
        "disabled telemetry cost per flow",
        disabled_cost_ns / 1e3,
        budget_ns / 1e3
    );
    assert!(ops > 0, "the flow must actually cross instrumentation sites");
    assert!(
        disabled_cost_ns <= budget_ns,
        "disabled telemetry exceeds the 1% budget: {disabled_cost_ns:.0} ns of \
         {budget_ns:.0} ns over {ops} ops"
    );
    println!(
        "\nOK: disabled collector costs {:.4}% of the flow (budget 1%).\n",
        disabled_cost_ns / (flow_off.as_secs_f64() * 1e9) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let policy = PolicySet::full();
    let binary = produce(WORKLOAD, &policy).expect("compiles").serialize();
    Collector::disable();
    c.bench_function("telemetry/verify_serve/off", |b| {
        b.iter(|| black_box(verify_and_serve(&binary)))
    });
    Collector::enable();
    c.bench_function("telemetry/verify_serve/on", |b| {
        b.iter(|| black_box(verify_and_serve(&binary)))
    });
    Collector::disable();
    c.bench_function("telemetry/disabled_op", |b| {
        b.iter(|| {
            METRICS.pool_work_queue_claims.add(1);
            black_box(&METRICS.pool_work_queue_claims);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
