//! **Ablation — flight-recorder overhead.**
//!
//! The flight recorder must be free when nobody is watching: with
//! recording disabled, every `record`/`record_ambient` site is one
//! relaxed atomic load and an early return, and `TraceId::mint` never
//! touches the mint counter. Same methodology as `ablation_telemetry`:
//!
//! * measures the disabled per-record cost in a tight loop,
//! * counts how many recorder ops one verify+serve flow executes (by
//!   running it once with the recorder enabled),
//! * asserts `ops × disabled-record cost ≤ 1%` of the measured
//!   verify+serve wall time,
//! * spot-checks that the verdict and the run report are bit-identical
//!   with the recorder on and off.
//!
//! Every flow here is single-threaded, so — like the telemetry and
//! icache ablations — these assertions carry **no core-count gate** and
//! the trend gate enforces them on any host.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::produce;
use deflection_core::runtime::{BootstrapEnclave, RunReport};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_telemetry::flightrec::{self, EventKind};
use deflection_telemetry::{FlightRecorder, TraceId};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKLOAD: &str = "
    var acc: [int; 64];
    fn main() -> int {
        var n: int = input_len();
        var i: int = 0;
        while (i < 4096) {
            acc[i & 63] = acc[i & 63] + i * n;
            i = i + 1;
        }
        output_byte(0, acc[7] & 0xFF);
        send(1);
        return acc[7];
    }
";

/// One full verify+serve flow: consumer pipeline (install) plus a run.
fn verify_and_serve(binary: &[u8]) -> RunReport {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([0xC4; 32]);
    enclave.install_plain(binary).expect("bench binary verifies");
    enclave.provide_input(&[3, 5, 7]).expect("installed");
    enclave.run(u64::MAX / 2).expect("installed")
}

/// Median wall time of `runs` repetitions of the flow.
fn median_flow_time(binary: &[u8], runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(verify_and_serve(binary));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Disabled-path cost of one recorder op, averaged over a tight loop
/// mixing the site shapes (explicit record, ambient record, mint).
fn disabled_record_ns() -> f64 {
    FlightRecorder::disable();
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        flightrec::record(EventKind::Run, TraceId::NONE, i, 0);
        flightrec::record_ambient(EventKind::Seal, i, 0);
        black_box(TraceId::mint());
    }
    // Three ops per iteration.
    start.elapsed().as_secs_f64() * 1e9 / (ITERS as f64 * 3.0)
}

fn print_table() {
    println!("\n=== Ablation: flight-recorder overhead on verify+serve ===\n");
    let policy = PolicySet::full();
    let binary = produce(WORKLOAD, &policy).expect("compiles").serialize();

    // Verdict/report equality across recorder states.
    FlightRecorder::disable();
    let off_report = format!("{:?}", verify_and_serve(&binary));
    FlightRecorder::enable();
    let on_report = format!("{:?}", verify_and_serve(&binary));
    FlightRecorder::disable();
    assert_eq!(off_report, on_report, "recorder state changed an observable result");

    // Recorder ops per flow, from a clean enabled recorder.
    FlightRecorder::reset();
    FlightRecorder::enable();
    let _ = verify_and_serve(&binary);
    let ops = FlightRecorder::op_count();
    FlightRecorder::disable();

    let op_ns = disabled_record_ns();
    let flow_off = median_flow_time(&binary, 5);
    FlightRecorder::enable();
    let flow_on = median_flow_time(&binary, 5);
    FlightRecorder::disable();

    let disabled_cost_ns = ops as f64 * op_ns;
    let budget_ns = flow_off.as_secs_f64() * 1e9 * 0.01;
    println!("{:<44} {:>14}", "verify+serve median (recorder off)", format!("{flow_off:?}"));
    println!("{:<44} {:>14}", "verify+serve median (recorder on)", format!("{flow_on:?}"));
    println!("{:<44} {:>14}", "recorder ops per flow", ops);
    println!("{:<44} {:>11.3} ns", "disabled cost per record", op_ns);
    println!(
        "{:<44} {:>11.3} µs  (1% budget: {:.1} µs)",
        "disabled recorder cost per flow",
        disabled_cost_ns / 1e3,
        budget_ns / 1e3
    );
    assert!(ops > 0, "the flow must actually cross recorder sites");
    assert!(
        disabled_cost_ns <= budget_ns,
        "disabled recorder exceeds the 1% budget: {disabled_cost_ns:.0} ns of \
         {budget_ns:.0} ns over {ops} ops"
    );
    println!(
        "\nOK: disabled recorder costs {:.4}% of the flow (budget 1%).\n",
        disabled_cost_ns / (flow_off.as_secs_f64() * 1e9) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let policy = PolicySet::full();
    let binary = produce(WORKLOAD, &policy).expect("compiles").serialize();
    FlightRecorder::disable();
    c.bench_function("flightrec/verify_serve/off", |b| {
        b.iter(|| black_box(verify_and_serve(&binary)))
    });
    FlightRecorder::enable();
    c.bench_function("flightrec/verify_serve/on", |b| {
        b.iter(|| black_box(verify_and_serve(&binary)))
    });
    FlightRecorder::disable();
    c.bench_function("flightrec/disabled_record", |b| {
        b.iter(|| {
            flightrec::record(EventKind::Claim, TraceId::NONE, 1, 2);
            black_box(());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
