//! **Table II** — nBench overhead under P1 / P1+P2 / P1–P5 / P1–P6.
//!
//! Regenerates the paper's per-kernel overhead table. Overheads are
//! computed from executed-instruction counts (deterministic; wall time is
//! reported alongside). The shape to compare against the paper: FP
//! EMULATION cheapest, ASSIGNMENT worst under P1–P5 (function pointers),
//! P6 adds the largest increment everywhere, and the geometric mean lands
//! in the tens of percent.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::{fmt_pct, geomean_overhead_pct, measure, overhead_pct, sweep_levels};
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_workloads::nbench;
use std::time::Duration;

const SCALE: u32 = 3;

fn print_table() {
    println!("\n=== Table II: performance overhead on nBench (instruction counts) ===\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}   {:>12}",
        "Program Name", "P1", "P1+P2", "P1-P5", "P1-P6", "P1-P6 el.", "base instrs"
    );
    println!("{:-<90}", "");
    let config = MemConfig::small();
    let elide_policy = PolicySet::full().with_elision();
    let mut per_level: [Vec<f64>; 5] = Default::default();
    for kernel in nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(SCALE);
        let (base, levels) = sweep_levels(&source, &input, &config);
        let elided = measure(&source, &input, &elide_policy, &config);
        let mut pcts: Vec<f64> =
            levels.iter().map(|s| overhead_pct(base.instructions, s.instructions)).collect();
        pcts.push(overhead_pct(base.instructions, elided.instructions));
        for (i, p) in pcts.iter().enumerate() {
            per_level[i].push(*p);
        }
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}   {:>12}",
            kernel.name,
            fmt_pct(pcts[0]),
            fmt_pct(pcts[1]),
            fmt_pct(pcts[2]),
            fmt_pct(pcts[3]),
            fmt_pct(pcts[4]),
            base.instructions
        );
        // Sanity: monotone across levels for every kernel, and the elided
        // build must run strictly fewer instructions than the full one.
        assert!(pcts[..4].windows(2).all(|w| w[0] <= w[1] + 1e-9), "{}: {pcts:?}", kernel.name);
        assert!(
            elided.instructions < levels[3].instructions,
            "{}: elision must strictly shrink the P1-P6 instruction count",
            kernel.name
        );
    }
    println!("{:-<90}", "");
    let geo: Vec<f64> = per_level.iter().map(|v| geomean_overhead_pct(v)).collect();
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "geometric mean",
        fmt_pct(geo[0]),
        fmt_pct(geo[1]),
        fmt_pct(geo[2]),
        fmt_pct(geo[3]),
        fmt_pct(geo[4])
    );
    println!(
        "\npaper reports ~10% average without P6 and ~20% with P6 on its hardware;\n\
         compare the *shape*: per-kernel ordering and the P6 increment.\n\
         P1-P6 el. = same policy with guard elision (elide_guards): the verifier\n\
         re-proves each elided guard with its own in-enclave analysis.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    // Representative wall-time criterion benches: the cheapest and the most
    // store-heavy kernel at baseline and full policy.
    let config = MemConfig::small();
    for kernel in nbench::all() {
        if kernel.name != "FP EMULATION" && kernel.name != "NUMERIC SORT" {
            continue;
        }
        let source = (kernel.source)();
        let input = (kernel.input)(1);
        for (label, policy) in [("baseline", PolicySet::none()), ("p1-p6", PolicySet::full())] {
            let id = format!("nbench/{}/{label}", kernel.name.to_lowercase().replace(' ', "_"));
            let src = source.clone();
            let inp = input.clone();
            c.bench_function(&id, move |b| {
                b.iter(|| deflection_bench::measure(&src, &inp, &policy, &config))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
