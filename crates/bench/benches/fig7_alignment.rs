//! **Fig. 7** — sequence alignment time vs input length.
//!
//! The paper aligns FASTA sequences of growing length and reports per-level
//! overhead: ≤10% for P1 on small inputs, ~19.7% for P1+P2 and ~22.2% for
//! P1–P5 at ≥500 bytes, ≤25% with P6. We sweep the same x-axis and print
//! the per-level series.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::{fmt_pct, overhead_pct, sweep_levels};
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_workloads::genome;
use std::time::Duration;

const LENGTHS: [u32; 5] = [50, 100, 200, 500, 800];

fn print_table() {
    println!("\n=== Fig. 7: Needleman-Wunsch alignment vs input length ===\n");
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "length", "base instrs", "P1", "P1+P2", "P1-P5", "P1-P6", "wall (base)"
    );
    println!("{:-<82}", "");
    let source = genome::nw_source();
    let config = MemConfig::small();
    for len in LENGTHS {
        let input = genome::nw_input(len);
        let (base, levels) = sweep_levels(&source, &input, &config);
        let pcts: Vec<f64> =
            levels.iter().map(|s| overhead_pct(base.instructions, s.instructions)).collect();
        println!(
            "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10} {:>9.1?}",
            len,
            base.instructions,
            fmt_pct(pcts[0]),
            fmt_pct(pcts[1]),
            fmt_pct(pcts[2]),
            fmt_pct(pcts[3]),
            base.wall
        );
    }
    println!(
        "\npaper: overall ≤20% without P6 (P1 alone ≤10% on small inputs), ≤25% with P6;\n\
         expect the same flat-in-length overhead series here.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let source = genome::nw_source();
    let config = MemConfig::small();
    for (label, policy) in [("baseline", PolicySet::none()), ("p1-p6", PolicySet::full())] {
        let src = source.clone();
        let input = genome::nw_input(200);
        c.bench_function(&format!("fig7/nw_200/{label}"), move |b| {
            b.iter(|| deflection_bench::measure(&src, &input, &policy, &config))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
