//! **Ablation** — superblock trace dispatch vs per-instruction block
//! dispatch vs decode-every-step.
//!
//! Runs every nBench kernel under the full P1–P6 policy in all three VM
//! dispatch modes and asserts two things:
//!
//! * **trace dispatch beats block dispatch on every kernel** — the trace
//!   layer may never regress the per-instruction cached path it replaced
//!   as the default;
//! * **trace dispatch is at least 3× faster than the reference
//!   interpreter on at least one kernel** (the PR-5 block-dispatch floor
//!   was 1.5×; traces ratchet it).
//!
//! Unlike the parallel-verify and pool-resilience ablations, these
//! speedups are single-threaded, so the assertions carry **no core-count
//! gate** — they are enforceable by the trend gate on any host, including
//! 1-core CI containers.
//!
//! Instruction counts must be identical across the three modes (the
//! differential suite in `tests/icache_differential.rs` proves full
//! bit-identity; this bench re-checks the cheap invariant).

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::measure_exec_mode;
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_sgx_sim::vm::ExecMode;
use deflection_telemetry::{Collector, METRICS};
use deflection_workloads::nbench;
use std::time::Duration;

const SCALE: u32 = 3;
/// Timed samples per kernel per mode (after one warm-up run each).
const SAMPLES: usize = 5;
/// Minimum traced-vs-reference speedup required on at least one kernel.
const TRACED_FLOOR: f64 = 3.0;

/// Minimum over the samples: wall-clock noise on a shared host is strictly
/// additive, so the minimum is the most stable estimator of the true cost
/// (and the one the speedup assertions are judged on).
fn min_secs(samples: &[Duration]) -> f64 {
    samples.iter().map(Duration::as_secs_f64).fold(f64::INFINITY, f64::min)
}

fn print_table() {
    println!("\n=== Ablation: trace vs block vs decode-every-step (nBench, P1-P6) ===\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "Program Name", "traced ms", "block ms", "ref ms", "tr/ref", "tr/blk", "instrs"
    );
    println!("{:-<82}", "");
    let config = MemConfig::small();
    let policy = PolicySet::full();
    let mut best = ("", 0.0f64);
    for kernel in nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(SCALE);
        // Telemetry probe: one instrumented traced run per kernel, to show
        // the trace layer is actually engaged (chained dispatches, no
        // demand fills). The collector stays disabled during the timed
        // samples below so they measure the production configuration.
        Collector::reset();
        Collector::enable();
        let probe = measure_exec_mode(&source, &input, &policy, &config, ExecMode::Traced);
        let chained = METRICS.vm_trace_chained.get();
        let fills = METRICS.vm_icache_fills.get();
        Collector::disable();
        Collector::reset();
        assert!(chained > 0, "{}: trace dispatch must chain traces", kernel.name);
        assert_eq!(fills, 0, "{}: install pre-warm must leave no demand fills", kernel.name);

        // Interleave the modes so drift (thermal, allocator state) hits
        // all three equally; discard one warm-up triple first.
        let mut traced = Vec::with_capacity(SAMPLES);
        let mut block = Vec::with_capacity(SAMPLES);
        let mut reference = Vec::with_capacity(SAMPLES);
        let mut instrs = (0u64, 0u64, 0u64);
        for i in 0..=SAMPLES {
            let t = measure_exec_mode(&source, &input, &policy, &config, ExecMode::Traced);
            let c = measure_exec_mode(&source, &input, &policy, &config, ExecMode::Block);
            let r = measure_exec_mode(&source, &input, &policy, &config, ExecMode::Reference);
            if i == 0 {
                continue;
            }
            traced.push(t.wall);
            block.push(c.wall);
            reference.push(r.wall);
            instrs = (t.instructions, c.instructions, r.instructions);
        }
        assert!(
            instrs.0 == instrs.1 && instrs.1 == instrs.2,
            "{}: all three modes must execute identical instruction counts ({instrs:?})",
            kernel.name
        );
        assert_eq!(probe.instructions, instrs.0);
        let (mt, mc, mr) = (min_secs(&traced), min_secs(&block), min_secs(&reference));
        let (vs_ref, vs_block) = (mr / mt, mc / mt);
        if vs_ref > best.1 {
            best = (kernel.name, vs_ref);
        }
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>7.2}x {:>12}",
            kernel.name,
            mt * 1e3,
            mc * 1e3,
            mr * 1e3,
            vs_ref,
            vs_block,
            instrs.0,
        );
        assert!(
            vs_block > 1.0,
            "{}: trace dispatch must beat block dispatch on every kernel \
             (traced {:.3}ms vs block {:.3}ms)",
            kernel.name,
            mt * 1e3,
            mc * 1e3
        );
    }
    println!("{:-<82}", "");
    println!(
        "\nbest traced speedup: {:.2}x on {} — asserted >= {TRACED_FLOOR}x with NO \
         core-count gate:\ntrace dispatch is single-threaded, so this baseline is\n\
         enforceable by the trend gate on every host, 1-core CI included.\n",
        best.1, best.0
    );
    assert!(
        best.1 >= TRACED_FLOOR,
        "trace dispatch must deliver >= {TRACED_FLOOR}x over decode-every-step on at \
         least one nBench kernel (best: {:.2}x on {})",
        best.1,
        best.0
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    // Trend-tracked Criterion series: cheapest and most store-heavy kernel
    // in all three modes. The `cached`/`reference` labels predate the
    // trace layer and keep their historical series; `traced` extends them.
    let config = MemConfig::small();
    let policy = PolicySet::full();
    for kernel in nbench::all() {
        if kernel.name != "FP EMULATION" && kernel.name != "NUMERIC SORT" {
            continue;
        }
        let source = (kernel.source)();
        let input = (kernel.input)(1);
        let modes = [
            ("traced", ExecMode::Traced),
            ("cached", ExecMode::Block),
            ("reference", ExecMode::Reference),
        ];
        for (label, mode) in modes {
            let id = format!("icache/{}/{label}", kernel.name.to_lowercase().replace(' ', "_"));
            let src = source.clone();
            let inp = input.clone();
            c.bench_function(&id, move |b| {
                b.iter(|| measure_exec_mode(&src, &inp, &policy, &config, mode))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
