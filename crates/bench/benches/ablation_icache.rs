//! **Ablation** — predecoded icache + block dispatch vs decode-every-step.
//!
//! Runs every nBench kernel under the full P1–P6 policy twice: once with
//! the VM's default icache block dispatch and once in the
//! decode-every-step reference mode, and asserts the cached mode is at
//! least 1.5× faster on at least one kernel. Unlike the parallel-verify
//! and pool-resilience ablations, this speedup is single-threaded, so the
//! assertion carries **no core-count gate** — it is the first perf
//! baseline the trend gate can enforce on any host, including 1-core CI
//! containers.
//!
//! Instruction counts must be identical between the two modes (the
//! differential suite in `tests/icache_differential.rs` proves full
//! bit-identity; this bench re-checks the cheap invariant).

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::measure_mode;
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_telemetry::{Collector, METRICS};
use deflection_workloads::nbench;
use std::time::Duration;

const SCALE: u32 = 3;
/// Timed samples per kernel per mode (after one warm-up run each).
const SAMPLES: usize = 5;

fn mean_secs(samples: &[Duration]) -> f64 {
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64
}

fn print_table() {
    println!("\n=== Ablation: predecoded icache + block dispatch (nBench, P1-P6) ===\n");
    println!(
        "{:<18} {:>12} {:>12} {:>9} {:>12} {:>9}",
        "Program Name", "cached ms", "reference ms", "speedup", "instrs", "hit rate"
    );
    println!("{:-<78}", "");
    let config = MemConfig::small();
    let policy = PolicySet::full();
    let mut speedups = Vec::new();
    for kernel in nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(SCALE);
        // Hit-rate probe: one instrumented cached run per kernel. The
        // collector stays disabled during the timed samples below so they
        // measure the production configuration.
        Collector::reset();
        Collector::enable();
        let probe = measure_mode(&source, &input, &policy, &config, false);
        let (hits, fills) = (METRICS.vm_icache_hits.get(), METRICS.vm_icache_fills.get());
        Collector::disable();
        Collector::reset();
        let hit_rate = hits as f64 / (hits + fills).max(1) as f64;

        // Interleave the modes so drift (thermal, allocator state) hits
        // both equally; discard one warm-up pair first.
        let mut cached = Vec::with_capacity(SAMPLES);
        let mut reference = Vec::with_capacity(SAMPLES);
        let mut instrs = (0u64, 0u64);
        for i in 0..=SAMPLES {
            let c = measure_mode(&source, &input, &policy, &config, false);
            let r = measure_mode(&source, &input, &policy, &config, true);
            if i == 0 {
                continue;
            }
            cached.push(c.wall);
            reference.push(r.wall);
            instrs = (c.instructions, r.instructions);
        }
        assert_eq!(
            instrs.0, instrs.1,
            "{}: cached and reference modes must execute identical instruction counts",
            kernel.name
        );
        assert_eq!(probe.instructions, instrs.0);
        let (mc, mr) = (mean_secs(&cached), mean_secs(&reference));
        let speedup = mr / mc;
        speedups.push((kernel.name, speedup));
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>8.2}x {:>12} {:>8.1}%",
            kernel.name,
            mc * 1e3,
            mr * 1e3,
            speedup,
            instrs.0,
            hit_rate * 100.0
        );
    }
    println!("{:-<78}", "");
    let best = speedups.iter().cloned().fold(("", 0.0f64), |a, b| if b.1 > a.1 { b } else { a });
    println!(
        "\nbest speedup: {:.2}x on {} — asserted >= 1.5x with NO core-count gate:\n\
         decode-once dispatch is single-threaded, so this baseline is\n\
         enforceable by the trend gate on every host, 1-core CI included.\n",
        best.1, best.0
    );
    assert!(
        best.1 >= 1.5,
        "icache block dispatch must deliver >= 1.5x on at least one nBench \
         kernel (best: {:.2}x on {})",
        best.1,
        best.0
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    // Trend-tracked Criterion series: cheapest and most store-heavy kernel
    // in both modes, so a regression in either the fast path or the
    // reference path is visible.
    let config = MemConfig::small();
    let policy = PolicySet::full();
    for kernel in nbench::all() {
        if kernel.name != "FP EMULATION" && kernel.name != "NUMERIC SORT" {
            continue;
        }
        let source = (kernel.source)();
        let input = (kernel.input)(1);
        for (label, reference) in [("cached", false), ("reference", true)] {
            let id = format!("icache/{}/{label}", kernel.name.to_lowercase().replace(' ', "_"));
            let src = source.clone();
            let inp = input.clone();
            c.bench_function(&id, move |b| {
                b.iter(|| measure_mode(&src, &inp, &policy, &config, reference))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
