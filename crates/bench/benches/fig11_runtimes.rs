//! **Fig. 11** — transfer rate vs file size: DEFLECTION against LibOS-style
//! shielding runtimes.
//!
//! The paper's finding: "unprotected Graphene-SGX has the best transfer
//! rate with relatively small files. However, with the size growing,
//! DEFLECTION outperforms both runtimes (77% of running the server on the
//! native Linux), even when our approach implements security policies
//! (P0-P5) while these runtimes do not."
//!
//! DEFLECTION's per-byte inflation is *measured* (instruction overhead of
//! the instrumented handler); the other runtimes are the calibrated cost
//! models of `deflection_bench::runtime_models` (see DESIGN.md — we cannot
//! re-host Graphene/Occlum).

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::runtime_models::{deflection, graphene_like, native, occlum_like};
use deflection_bench::{measure, overhead_pct};
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_workloads::server;
use std::time::Duration;

const SIZES_KIB: [f64; 6] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];

fn measured_overhead_fraction() -> f64 {
    let source = server::source();
    let config = MemConfig::small();
    let input = server::request(1, 8192);
    let base = measure(&source, &input, &PolicySet::none(), &config);
    // P0–P5: the paper's Fig. 11 runs DEFLECTION without the AEX policy.
    let inst = measure(&source, &input, &PolicySet::p1_p5(), &config);
    overhead_pct(base.instructions, inst.instructions) / 100.0
}

fn print_table() {
    println!("\n=== Fig. 11: transfer rate vs file size (MiB/s) ===\n");
    let overhead = measured_overhead_fraction();
    println!("measured P0-P5 per-byte inflation of the handler: {:.1}%\n", overhead * 100.0);
    let models = [native(), graphene_like(), occlum_like(), deflection(overhead)];
    print!("{:<12}", "size");
    for m in &models {
        print!("{:>15}", m.name);
    }
    println!();
    println!("{:-<72}", "");
    for kib in SIZES_KIB {
        print!("{:<12}", format!("{kib} KiB"));
        for m in &models {
            print!("{:>15.1}", m.rate_mib_s(kib));
        }
        println!();
    }
    let d = deflection(overhead);
    let n = native();
    println!("{:-<72}", "");
    println!(
        "DEFLECTION at 1 MiB runs at {:.0}% of native (paper: 77%); graphene-like wins \
         below the crossover, DEFLECTION above it.\n",
        d.rate_mib_s(1024.0) / n.rate_mib_s(1024.0) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    c.bench_function("fig11/models_sweep", |b| {
        b.iter(|| {
            let models = [native(), graphene_like(), occlum_like(), deflection(0.14)];
            SIZES_KIB.iter().flat_map(|&k| models.iter().map(move |m| m.rate_mib_s(k))).sum::<f64>()
        })
    });
    let source = server::source();
    let config = MemConfig::small();
    let input = server::request(1, 8192);
    c.bench_function("fig11/handler_8k/p0-p5", move |b| {
        b.iter(|| measure(&source, &input, &PolicySet::p1_p5(), &config))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
