//! **Fig. 9** — credit scoring time vs number of records.
//!
//! The paper trains a BP network on 10,000 records and scores 1K–100K test
//! cases, reporting ~15% overhead for P1–P5 at 1K/10K records and <20% at
//! 50K+ (the P6 column dips below 10% at 100K because the fixed
//! verification/marker cost amortizes). We sweep scored-record counts at a
//! fixed training run.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::{fmt_pct, overhead_pct, sweep_levels};
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_workloads::credit;
use std::time::Duration;

const TRAIN: u64 = 500;
const RECORD_COUNTS: [u64; 4] = [1_000, 5_000, 10_000, 20_000];

fn print_table() {
    println!("\n=== Fig. 9: credit scoring vs number of records ===\n");
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "records", "base instrs", "P1", "P1+P2", "P1-P5", "P1-P6"
    );
    println!("{:-<70}", "");
    let source = credit::source();
    let config = MemConfig::small();
    for records in RECORD_COUNTS {
        let input = credit::input(TRAIN, records);
        let (base, levels) = sweep_levels(&source, &input, &config);
        let pcts: Vec<f64> =
            levels.iter().map(|s| overhead_pct(base.instructions, s.instructions)).collect();
        println!(
            "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10}",
            records,
            base.instructions,
            fmt_pct(pcts[0]),
            fmt_pct(pcts[1]),
            fmt_pct(pcts[2]),
            fmt_pct(pcts[3])
        );
    }
    println!("\npaper: ~15% for P1-P5 at 1K/10K records, <20% at 50K+ for the full check.\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let source = credit::source();
    let config = MemConfig::small();
    for (label, policy) in [("baseline", PolicySet::none()), ("p1-p5", PolicySet::p1_p5())] {
        let src = source.clone();
        let input = credit::input(TRAIN, 1_000);
        c.bench_function(&format!("fig9/credit_1k/{label}"), move |b| {
            b.iter(|| deflection_bench::measure(&src, &input, &policy, &config))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
