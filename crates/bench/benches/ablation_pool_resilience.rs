//! **Ablation — pool resilience** (sealed install cache + work stealing).
//!
//! Two claims from the fault-tolerant serving layer are measured:
//!
//! * restarting a pool from a **sealed** prepared image
//!   (`EnclavePool::import_sealed`) installs with *zero* re-verifications,
//!   versus re-running the full verifying pipeline after a restart — the
//!   sealed path pays only the MAC check and the deterministic rebuild;
//! * on a **skewed** batch (a few expensive requests among many cheap
//!   ones) the work-stealing scheduler (`serve_parallel`) beats the static
//!   round-robin split (`serve_parallel_round_robin`), which strands every
//!   expensive request on the same worker — asserted ≥1.3× whenever the
//!   host actually has ≥4 cores, with identical per-request results.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::pool::EnclavePool;
use deflection_core::producer::{produce, produce_for_layout};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_workloads::nbench;
use std::time::{Duration, Instant};

const POOL_WORKERS: usize = 4;
const TRIALS: usize = 3;
const FUEL: u64 = 200_000_000;

/// Runtime proportional to the first input byte: byte 0 is ~free, byte
/// 200 spins 400k loop iterations — the skew knob for the scheduler
/// comparison.
const SKEW_SRC: &str = "
    fn main() -> int {
        var n: int = input_byte(0) * 2000;
        var i: int = 0;
        var s: int = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return input_byte(0);
    }
";

fn manifest(policy: PolicySet) -> Manifest {
    let mut m = Manifest::ccaas();
    m.policy = policy;
    m
}

/// A skewed batch: every `POOL_WORKERS`-th request is expensive, so the
/// static `i % len` split serializes all of them on worker 0 while work
/// stealing spreads them across the pool.
fn skewed_batch(len: usize) -> Vec<Vec<u8>> {
    (0..len).map(|i| if i % POOL_WORKERS == 0 { vec![200] } else { vec![1] }).collect()
}

fn print_table() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // --- sealed-cache restart vs re-verify ------------------------------
    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let idea_manifest = manifest(policy);
    let kernel = nbench::all().into_iter().find(|k| k.name == "IDEA").expect("kernel exists");
    let source = (kernel.source)();
    let binary = produce_for_layout(&source, &policy, &layout).expect("compiles").serialize();

    let mut first = EnclavePool::new(&layout, &idea_manifest, POOL_WORKERS);
    first.install_all(&binary).expect("verifies");
    assert_eq!(first.verification_count(), 1);
    let blob = first.export_sealed().expect("active image");
    drop(first);

    let mut t_sealed = Duration::MAX;
    for _ in 0..TRIALS {
        let mut pool = EnclavePool::new(&layout, &idea_manifest, POOL_WORKERS);
        let start = Instant::now();
        pool.import_sealed(&blob).expect("sealed image imports");
        t_sealed = t_sealed.min(start.elapsed());
        assert_eq!(pool.verification_count(), 0, "sealed restart must never re-verify");
    }
    let mut t_reverify = Duration::MAX;
    for _ in 0..TRIALS {
        let mut pool = EnclavePool::new(&layout, &idea_manifest, POOL_WORKERS);
        let start = Instant::now();
        pool.install_all(&binary).expect("verifies");
        t_reverify = t_reverify.min(start.elapsed());
        assert_eq!(pool.verification_count(), 1);
    }

    println!("\n=== Ablation: pool restart ({POOL_WORKERS} workers, nBench IDEA) ===\n");
    println!("{:<26} {:>14} {:>14}", "restart strategy", "verifications", "install time");
    println!("{:-<56}", "");
    println!("{:<26} {:>14} {:>12.1?}", "import_sealed (cache)", 0, t_sealed);
    println!("{:<26} {:>14} {:>12.1?}", "install_all (re-verify)", 1, t_reverify);
    println!("{:-<56}", "");
    println!(
        "\nThe sealed path checks the MAC under the enclave sealing key and\n\
         re-derives the image with the discovery-only pipeline — no policy\n\
         checks run (DESIGN.md 5d).\n"
    );

    // --- work stealing vs round robin on a skewed batch -----------------
    let skew_manifest = manifest(PolicySet::full());
    let skew_binary = produce(SKEW_SRC, &skew_manifest.policy).expect("compiles").serialize();
    let batch = skewed_batch(16);

    let mut t_steal = Duration::MAX;
    let mut t_static = Duration::MAX;
    let mut steal_exits = Vec::new();
    let mut static_exits = Vec::new();
    for _ in 0..TRIALS {
        let mut pool = EnclavePool::new(&layout, &skew_manifest, POOL_WORKERS);
        pool.install_all(&skew_binary).expect("verifies");
        let start = Instant::now();
        let reports = pool.serve_parallel(&batch, FUEL).expect("serves");
        t_steal = t_steal.min(start.elapsed());
        steal_exits = reports.iter().map(|r| r.exit.exit_value()).collect();

        let mut pool = EnclavePool::new(&layout, &skew_manifest, POOL_WORKERS);
        pool.install_all(&skew_binary).expect("verifies");
        let start = Instant::now();
        let reports = pool.serve_parallel_round_robin(&batch, FUEL).expect("serves");
        t_static = t_static.min(start.elapsed());
        static_exits = reports.iter().map(|r| r.exit.exit_value()).collect();
    }
    assert_eq!(steal_exits, static_exits, "schedulers must agree on every result");

    let speedup = t_static.as_secs_f64() / t_steal.as_secs_f64();
    println!("=== Ablation: skewed batch, {POOL_WORKERS} workers, 16 requests ===\n");
    println!("{:<26} {:>14} {:>10}", "scheduler", "batch (best)", "speedup");
    println!("{:-<52}", "");
    println!("{:<26} {:>12.1?} {:>9.2}x", "round robin (static)", t_static, 1.0);
    println!("{:<26} {:>12.1?} {:>9.2}x", "work stealing", t_steal, speedup);
    println!("{:-<52}", "");
    if cores >= 4 {
        assert!(
            speedup >= 1.3,
            "expected >=1.3x from work stealing on a skewed batch \
             ({cores}-core host), got {speedup:.2}x"
        );
    } else {
        println!(
            "\nnote: host exposes only {cores} core(s); the >=1.3x speedup\n\
             assertion needs >=4 cores and was skipped. Result equality was\n\
             still asserted.\n"
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();

    let layout = EnclaveLayout::new(MemConfig::small());
    let policy = PolicySet::full().with_elision();
    let m = manifest(policy);
    let kernel = nbench::all().into_iter().find(|k| k.name == "IDEA").expect("kernel exists");
    let source = (kernel.source)();
    let binary = produce_for_layout(&source, &policy, &layout).expect("compiles").serialize();
    let mut first = EnclavePool::new(&layout, &m, POOL_WORKERS);
    first.install_all(&binary).expect("verifies");
    let blob = first.export_sealed().expect("active image");
    drop(first);

    c.bench_function("pool_resilience/restart/import_sealed", {
        let (layout, m, blob) = (layout.clone(), m.clone(), blob);
        move |b| {
            b.iter(|| {
                let mut pool = EnclavePool::new(&layout, &m, POOL_WORKERS);
                pool.import_sealed(&blob).expect("imports")
            })
        }
    });
    c.bench_function("pool_resilience/restart/reverify", {
        let (layout, m, binary) = (layout.clone(), m.clone(), binary);
        move |b| {
            b.iter(|| {
                let mut pool = EnclavePool::new(&layout, &m, POOL_WORKERS);
                pool.install_all(&binary).expect("verifies")
            })
        }
    });

    let skew_manifest = manifest(PolicySet::full());
    let skew_binary = produce(SKEW_SRC, &skew_manifest.policy).expect("compiles").serialize();
    let batch = skewed_batch(8);
    c.bench_function("pool_resilience/serve/work_stealing", {
        let (layout, m, bin, batch) =
            (layout.clone(), skew_manifest.clone(), skew_binary.clone(), batch.clone());
        move |b| {
            let mut pool = EnclavePool::new(&layout, &m, POOL_WORKERS);
            pool.install_all(&bin).expect("verifies");
            b.iter(|| pool.serve_parallel(&batch, FUEL).expect("serves"))
        }
    });
    c.bench_function("pool_resilience/serve/round_robin", {
        let (layout, m, bin, batch) = (layout.clone(), skew_manifest, skew_binary, batch);
        move |b| {
            let mut pool = EnclavePool::new(&layout, &m, POOL_WORKERS);
            pool.install_all(&bin).expect("verifies");
            b.iter(|| pool.serve_parallel_round_robin(&batch, FUEL).expect("serves"))
        }
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
