//! **Serving** — the multi-tenant admission frontend under load.
//!
//! The paper's Fig. 10 measures a 200-connection HTTPS server; the
//! ROADMAP north-star is a production-scale serving system. This bench
//! drives the real admission frontend (bounded queue, adaptive batching,
//! typed shedding) over a **mixed multi-tenant workload** — https,
//! credit scoring, genome sequence generation, two nBench kernels and
//! the stateful KV session service — then replays the measured per-class
//! service times through the 10⁵-client closed-loop serving simulation
//! to report p50/p99 latency, saturation throughput and the shed-rate
//! knee at scales CI cannot drive the real pool at.
//!
//! Trend gating: `fig_serving` is deliberately **not** core-count gated
//! (see `src/trend.rs`): the `admission_1w` and `sim_closed_100k` series
//! are single-worker/simulated and enforce even on a 1-core CI host. The
//! `admission_4w` series only registers on hosts with ≥4 cores, so its
//! rows are simply absent (and cannot gate) elsewhere.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::queueing::{simulate_serving, Arrival, MixEntry, ServingConfig};
use deflection_bench::serving::{admission_round, measured_mix, rig};
use std::time::Duration;

fn sim_config(mix: Vec<MixEntry>, arrival: Arrival, total: usize) -> ServingConfig {
    ServingConfig {
        arrival,
        workers: 4,
        mix,
        jitter_frac: 0.05,
        total_requests: total,
        // Latency-tier queue: bounded wait ≈ high_water x service /
        // workers keeps p99 under shedding within the 10x acceptance
        // envelope (see DESIGN.md §5k).
        high_water: 64,
        batch_max: 32,
        batch_wait_us: 500,
        seed: 23,
    }
}

fn print_tables() {
    println!("\n=== Serving: admission frontend latency/throughput & shed knee ===\n");
    let named = measured_mix();
    for (name, m) in &named {
        println!("measured service time {name:<14} {:>8.0} µs", m.service_us);
    }
    let mix: Vec<MixEntry> = named.iter().map(|(_, m)| *m).collect();
    println!(
        "\n{:<10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "clients", "p50 (µs)", "p99 (µs)", "thr (rps)", "shed rate", "mean batch"
    );
    println!("{:-<68}", "");
    for clients in [64usize, 256, 1024, 4096, 16_384, 100_000] {
        let r = simulate_serving(&sim_config(
            mix.clone(),
            Arrival::Closed { clients, think_us: 10_000 },
            30_000.min(clients * 3),
        ));
        println!(
            "{clients:<10} {:>10} {:>10} {:>12.0} {:>9.1}% {:>10.1}",
            r.p50_us,
            r.p99_us,
            r.throughput_rps,
            r.shed_rate * 100.0,
            r.mean_batch
        );
    }
    println!("\nopen-loop shed knee (offered rps -> shed rate):");
    for rate in [500.0f64, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0] {
        let r =
            simulate_serving(&sim_config(mix.clone(), Arrival::Open { rate_rps: rate }, 10_000));
        println!("  {rate:>8.0} rps  shed {:>5.1}%  p99 {:>8} µs", r.shed_rate * 100.0, r.p99_us);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    // Single-worker saturation series: NOT core-count gated — this is
    // the enforceable floor on every host, including 1-core CI.
    let mut one = rig(1);
    admission_round(&mut one); // warm the prepared cache (verify once)
    c.bench_function("fig_serving/admission_1w", |b| b.iter(|| admission_round(&mut one)));

    // The 10^5-client closed-loop simulation: every smoke run completes
    // >=10^5 simulated clients by construction.
    let mix: Vec<MixEntry> = measured_mix().into_iter().map(|(_, m)| m).collect();
    c.bench_function("fig_serving/sim_closed_100k", |b| {
        b.iter(|| {
            simulate_serving(&sim_config(
                mix.clone(),
                Arrival::Closed { clients: 100_000, think_us: 100_000 },
                100_000,
            ))
        })
    });

    // The >=4-core series registers only where it can mean something;
    // absent rows never gate, so 1-core hosts are unaffected.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= 4 {
        let mut four = rig(4);
        admission_round(&mut four);
        c.bench_function("fig_serving/admission_4w", |b| b.iter(|| admission_round(&mut four)));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
