//! **Ablation** — verification and loading cost vs binary size.
//!
//! The paper's design requirement D4 demands "a quick turnaround from code
//! verification"; its unbalanced producer/consumer split exists precisely
//! so the in-enclave pass stays cheap and linear. This bench measures the
//! full consumer pipeline (parse → relocate → recursive-descent disassemble
//! → template match → rewrite) across binaries of growing size and reports
//! throughput, justifying the "just-enough disassembly" design choice
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_core::consumer::install;
use deflection_core::policy::Manifest;
use deflection_core::producer::produce;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::mem::Memory;
use deflection_workloads::nbench;
use std::time::{Duration, Instant};

fn print_table() {
    println!("\n=== Ablation: in-enclave verification cost vs binary size ===\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "binary", "bytes", "instances", "install µs", "MiB/s"
    );
    println!("{:-<70}", "");
    let manifest = Manifest::ccaas();
    for kernel in nbench::all() {
        let source = (kernel.source)();
        let binary = produce(&source, &manifest.policy).expect("compiles").serialize();
        // Median of several installs into fresh memory.
        let mut times = Vec::new();
        let mut instances = 0usize;
        for _ in 0..7 {
            let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
            let start = Instant::now();
            let installed = install(&binary, &manifest, &mut mem).expect("verifies");
            times.push(start.elapsed().as_secs_f64() * 1e6);
            instances = installed.verified.instances.len();
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = times[times.len() / 2];
        println!(
            "{:<18} {:>12} {:>12} {:>12.0} {:>12.1}",
            kernel.name,
            binary.len(),
            instances,
            med,
            binary.len() as f64 / (1 << 20) as f64 / (med / 1e6)
        );
    }
    println!(
        "\nverification scales linearly with code size and finishes in well under a\n\
         millisecond for every kernel — the quick turnaround the model requires.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let manifest = Manifest::ccaas();
    let binary =
        produce(&(nbench::all()[0].source)(), &manifest.policy).expect("compiles").serialize();
    c.bench_function("ablation/install_numeric_sort", move |b| {
        b.iter(|| {
            let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
            install(&binary, &manifest, &mut mem).expect("verifies")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
