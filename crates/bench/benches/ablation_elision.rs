//! **Ablation — guard elision** (`PolicySet::elide_guards`).
//!
//! For every nBench kernel, compares the fully instrumented P1–P6 build
//! against the elided build produced by the two-pass
//! `produce_for_layout` pipeline:
//!
//! * how many P1 (store) and P2 (rsp) guard instances remain,
//! * executed VM instructions (must shrink strictly — elided guards are
//!   annotation instructions that no longer run),
//! * in-enclave verification time, where the elided build pays for the
//!   abstract interpretation the verifier runs to re-prove each elision.

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::{fmt_pct, measure, overhead_pct};
use deflection_core::annotations::TemplateKind;
use deflection_core::consumer::install;
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::{produce, produce_for_layout};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::mem::Memory;
use deflection_workloads::nbench;
use std::time::{Duration, Instant};

const SCALE: u32 = 3;

/// (store guards, rsp guards, verification time) of one install.
fn install_stats(binary: &[u8], manifest: &Manifest) -> (usize, usize, Duration) {
    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
    let start = Instant::now();
    let installed = install(binary, manifest, &mut mem).expect("bench binary verifies");
    let verify_time = start.elapsed();
    let count =
        |kind: TemplateKind| installed.verified.instances.iter().filter(|i| i.kind == kind).count();
    (count(TemplateKind::StoreGuard), count(TemplateKind::RspGuard), verify_time)
}

fn print_table() {
    println!("\n=== Ablation: P1/P2 guard elision on nBench (P1-P6 policy) ===\n");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>12} {:>12}",
        "Program Name",
        "P1 full",
        "P1 elid",
        "P2 full",
        "P2 elid",
        "saved",
        "verify full",
        "verify elid"
    );
    println!("{:-<96}", "");
    let config = MemConfig::small();
    let layout = EnclaveLayout::new(config);
    let full_policy = PolicySet::full();
    let elide_policy = PolicySet::full().with_elision();
    let full_manifest = Manifest::ccaas();
    let mut elide_manifest = Manifest::ccaas();
    elide_manifest.policy = elide_policy;

    for kernel in nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(SCALE);

        let full_bin = produce(&source, &full_policy).expect("compiles").serialize();
        let elided_bin =
            produce_for_layout(&source, &elide_policy, &layout).expect("compiles").serialize();

        let (p1_full, p2_full, t_full) = install_stats(&full_bin, &full_manifest);
        let (p1_elid, p2_elid, t_elid) = install_stats(&elided_bin, &elide_manifest);
        assert!(
            p1_elid + p2_elid < p1_full + p2_full,
            "{}: elision must drop at least one guard",
            kernel.name
        );

        let full_run = measure(&source, &input, &full_policy, &config);
        let elided_run = measure(&source, &input, &elide_policy, &config);
        assert!(
            elided_run.instructions < full_run.instructions,
            "{}: elided build must execute strictly fewer instructions \
             ({} vs {})",
            kernel.name,
            elided_run.instructions,
            full_run.instructions
        );

        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10.1?} {:>10.1?}",
            kernel.name,
            p1_full,
            p1_elid,
            p2_full,
            p2_elid,
            format!(
                "{} ({})",
                full_run.instructions - elided_run.instructions,
                fmt_pct(overhead_pct(full_run.instructions, elided_run.instructions))
            ),
            t_full,
            t_elid,
        );
    }
    println!("{:-<96}", "");
    println!(
        "\nsaved: executed annotation instructions the elided build no longer runs\n\
         (absolute count, relative change in parens). The verifier's in-enclave\n\
         analysis cost shows up as the `verify elid` column; fully guarded binaries\n\
         never pay it (the analysis only runs when an unguarded site is\n\
         encountered).\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    // Criterion measurement of the verification-time cost of elision: the
    // eliding verifier re-proves each elided site with its own analysis.
    let layout = EnclaveLayout::new(MemConfig::small());
    let elide_policy = PolicySet::full().with_elision();
    let mut elide_manifest = Manifest::ccaas();
    elide_manifest.policy = elide_policy;
    let full_manifest = Manifest::ccaas();

    let kernel =
        nbench::all().into_iter().find(|k| k.name == "NUMERIC SORT").expect("kernel exists");
    let source = (kernel.source)();
    let full_bin = produce(&source, &PolicySet::full()).expect("compiles").serialize();
    let elided_bin =
        produce_for_layout(&source, &elide_policy, &layout).expect("compiles").serialize();

    c.bench_function("elision/verify/full", {
        let full_bin = full_bin.clone();
        let manifest = full_manifest.clone();
        move |b| {
            b.iter(|| {
                let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
                install(&full_bin, &manifest, &mut mem).expect("verifies")
            })
        }
    });
    c.bench_function("elision/verify/elided", {
        let elided_bin = elided_bin.clone();
        let manifest = elide_manifest.clone();
        move |b| {
            b.iter(|| {
                let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
                install(&elided_bin, &manifest, &mut mem).expect("verifies")
            })
        }
    });
    // Producer-side cost of the two-pass pipeline, for completeness.
    c.bench_function("elision/produce/two-pass", {
        let source = source.clone();
        move |b| b.iter(|| produce_for_layout(&source, &elide_policy, &layout).expect("compiles"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
