//! **Fig. 10** — HTTPS server response time and throughput vs concurrency.
//!
//! The paper drives its in-enclave HTTPS server with Siege at 10–200
//! concurrent connections and finds: similar performance up to ~75
//! connections, degradation starting at 100, significant response-time
//! growth at ≥150, +14.1% average response-time overhead, and <10%
//! throughput loss at 75–200 concurrency.
//!
//! Our pipeline: the per-request service time of the *real* in-enclave
//! handler (VM execution + real ChaCha20-Poly1305 record sealing) is
//! measured at the baseline and P1–P6 levels, then replayed through the
//! closed-loop multi-worker simulation (see DESIGN.md for the
//! substitution rationale).

use criterion::{criterion_group, criterion_main, Criterion};
use deflection_bench::queueing::simulate;
use deflection_bench::{fmt_pct, measure, overhead_pct};
use deflection_core::policy::PolicySet;
use deflection_sgx_sim::layout::MemConfig;
use deflection_workloads::server;
use std::time::Duration;

const WORKERS: usize = 96;
const CONCURRENCY: [usize; 7] = [10, 25, 50, 75, 100, 150, 200];
const PAGE_BYTES: u64 = 4096;

fn service_time_us(policy: &PolicySet) -> f64 {
    let source = server::source();
    let config = MemConfig::small();
    // Median of several measured requests.
    let mut times: Vec<f64> = (0..5)
        .map(|i| {
            let input = server::request(i, PAGE_BYTES);
            measure(&source, &input, policy, &config).wall.as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn print_table() {
    println!("\n=== Fig. 10: HTTPS server response time & throughput vs concurrency ===\n");
    let base_us = service_time_us(&PolicySet::none());
    let full_us = service_time_us(&PolicySet::full());
    let svc_overhead = overhead_pct(base_us as u64 + 1, full_us as u64 + 1);
    println!(
        "measured per-request service time: baseline {base_us:.0} µs, P1-P6 {full_us:.0} µs \
         ({})\n",
        fmt_pct(svc_overhead)
    );
    println!(
        "{:<6} {:>14} {:>14} {:>9} {:>13} {:>13}",
        "conc", "RT base (µs)", "RT P1-P6 (µs)", "RT ovh", "thr base", "thr P1-P6"
    );
    println!("{:-<74}", "");
    let mut overheads = Vec::new();
    let mut thr_losses = Vec::new();
    for &clients in &CONCURRENCY {
        let base = simulate(clients, WORKERS, base_us, 0.05, 4000, 10);
        let full = simulate(clients, WORKERS, full_us, 0.05, 4000, 10);
        let rt_ovh =
            overhead_pct(base.mean_response_us as u64 + 1, full.mean_response_us as u64 + 1);
        overheads.push(rt_ovh);
        let thr_loss = (base.throughput_rps - full.throughput_rps) / base.throughput_rps * 100.0;
        if clients >= 75 {
            thr_losses.push(thr_loss);
        }
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>9} {:>10.0}rps {:>10.0}rps",
            clients,
            base.mean_response_us,
            full.mean_response_us,
            fmt_pct(rt_ovh),
            base.throughput_rps,
            full.throughput_rps
        );
    }
    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("{:-<74}", "");
    println!("average response-time overhead: {}", fmt_pct(avg));
    println!(
        "paper: +14.1% average response time; throughput loss <10% at 75-200 connections\n\
         (measured loss here: {}..{})\n",
        fmt_pct(*thr_losses.first().unwrap_or(&0.0)),
        fmt_pct(*thr_losses.last().unwrap_or(&0.0)),
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let source = server::source();
    let config = MemConfig::small();
    for (label, policy) in [("baseline", PolicySet::none()), ("p1-p6", PolicySet::full())] {
        let src = source.clone();
        let input = server::request(1, PAGE_BYTES);
        c.bench_function(&format!("fig10/request_4k/{label}"), move |b| {
            b.iter(|| measure(&src, &input, &policy, &config))
        });
    }
    c.bench_function("fig10/queueing_sim_200c", |b| {
        b.iter(|| simulate(200, WORKERS, 1000.0, 0.05, 4000, 10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
