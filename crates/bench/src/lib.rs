//! # deflection-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (Section VI-B). Each Criterion bench target prints a
//! paper-style table built from deterministic instruction counts and
//! wall-clock measurements, then registers a few representative Criterion
//! measurements.
//!
//! Two measures are reported everywhere:
//!
//! * **instruction overhead** — executed VM instructions relative to the
//!   uninstrumented baseline; deterministic, noise-free, and the primary
//!   basis for comparing the *shape* against the paper's percentages;
//! * **wall time** — end-to-end time of the in-enclave run on this machine.
//!
//! The shielding-runtime comparison (Fig. 11) and the concurrency curves
//! (Fig. 10) additionally use the calibrated cost models in
//! [`runtime_models`] and the closed-loop simulator in [`queueing`] — see
//! DESIGN.md for why those are models rather than measurements.

#![forbid(unsafe_code)]

pub mod queueing;
pub mod runtime_models;
pub mod serving;

use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::{produce, produce_for_layout};
use deflection_core::runtime::BootstrapEnclave;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::vm::{ExecMode, RunExit};
use std::time::{Duration, Instant};

/// Result of measuring one workload at one policy level.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Executed VM instructions.
    pub instructions: u64,
    /// Wall time of the run.
    pub wall: Duration,
    /// Loaded binary size in bytes.
    pub binary_len: usize,
}

/// Measures one run of `source` with `input` under `policy`.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly — benchmark fixtures are
/// trusted.
#[must_use]
pub fn measure(source: &str, input: &[u8], policy: &PolicySet, config: &MemConfig) -> Sample {
    measure_mode(source, input, policy, config, false)
}

/// [`measure`] with an explicit decode mode: `reference = true` forces the
/// VM's decode-every-step path (the pre-icache semantics), `false` uses the
/// production default (superblock trace dispatch). Kept for callers that
/// only care about the cached/uncached split; the `ablation_icache` bench
/// uses [`measure_exec_mode`] to separate all three dispatch modes.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly — benchmark fixtures are
/// trusted.
#[must_use]
pub fn measure_mode(
    source: &str,
    input: &[u8],
    policy: &PolicySet,
    config: &MemConfig,
    reference: bool,
) -> Sample {
    let mode = if reference { ExecMode::Reference } else { ExecMode::Traced };
    measure_exec_mode(source, input, policy, config, mode)
}

/// [`measure`] pinned to one of the VM's three dispatch modes: superblock
/// traces (the production default), per-instruction block dispatch, or the
/// decode-every-step reference interpreter. The `ablation_icache` bench
/// diffs all three; everything else measures the production configuration.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly — benchmark fixtures are
/// trusted.
#[must_use]
pub fn measure_exec_mode(
    source: &str,
    input: &[u8],
    policy: &PolicySet,
    config: &MemConfig,
    mode: ExecMode,
) -> Sample {
    let mut manifest = Manifest::ccaas();
    manifest.policy = *policy;
    let layout = EnclaveLayout::new(*config);
    let obj = if policy.elide_guards {
        produce_for_layout(source, policy, &layout)
    } else {
        produce(source, policy)
    };
    let binary = obj.expect("bench source compiles").serialize();
    let mut enclave = BootstrapEnclave::new(layout, manifest);
    enclave.set_owner_session([0xBE; 32]);
    enclave.install_plain(&binary).expect("bench binary verifies");
    enclave.set_exec_mode(mode);
    if !input.is_empty() {
        enclave.provide_input(input).expect("installed");
    }
    let start = Instant::now();
    let report = enclave.run(u64::MAX / 2).expect("installed");
    let wall = start.elapsed();
    assert!(
        matches!(report.exit, RunExit::Halted { .. }),
        "bench workload must halt: {:?}",
        report.exit
    );
    Sample { instructions: report.stats.instructions, wall, binary_len: binary.len() }
}

/// Relative overhead in percent (`new` vs `base`).
#[must_use]
pub fn overhead_pct(base: u64, new: u64) -> f64 {
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Formats a percentage the way the paper's Table II does (`+5.18%`).
#[must_use]
pub fn fmt_pct(pct: f64) -> String {
    format!("{pct:+.2}%")
}

/// Measures a workload at the baseline and all four paper policy levels;
/// returns `(baseline, [p1, p1p2, p1p5, p1p6])`.
#[must_use]
pub fn sweep_levels(source: &str, input: &[u8], config: &MemConfig) -> (Sample, Vec<Sample>) {
    let baseline = measure(source, input, &PolicySet::none(), config);
    let levels =
        PolicySet::levels().iter().map(|(_, p)| measure(source, input, p, config)).collect();
    (baseline, levels)
}

/// Geometric mean of a set of (1 + overhead) ratios, returned as percent —
/// the aggregation the paper uses for its "20% on average" claim.
#[must_use]
pub fn geomean_overhead_pct(pcts: &[f64]) -> f64 {
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(100, 120) - 20.0).abs() < 1e-9);
        assert_eq!(fmt_pct(5.178), "+5.18%");
        assert_eq!(fmt_pct(-1.0), "-1.00%");
    }

    #[test]
    fn geomean_of_equal_values_is_identity() {
        assert!((geomean_overhead_pct(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measure_and_sweep_smoke() {
        let src = "fn main() -> int { var i: int = 0; var s: int = 0;
                    while (i < 50) { s = s + i; i = i + 1; } return s; }";
        let (base, levels) = sweep_levels(src, b"", &MemConfig::small());
        assert!(base.instructions > 0);
        // Monotone instruction growth across levels.
        assert!(levels[0].instructions >= base.instructions);
        assert!(levels[3].instructions > levels[0].instructions);
    }
}
