//! Closed-loop concurrency simulation for the HTTPS experiment (Fig. 10).
//!
//! The paper drives its in-enclave HTTPS server with Siege: N concurrent
//! clients, zero think time, 10 minutes. The response-time/throughput
//! curves are a queueing phenomenon — flat response time while concurrency
//! is below the worker pool, then linear growth once requests queue. We
//! measure the *service time* of the real in-enclave handler and replay it
//! through this discrete-event simulation of a multi-worker server with a
//! FIFO accept queue.

use deflection_crypto::drbg::HmacDrbg;

/// Result of simulating one concurrency level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Number of concurrent closed-loop clients.
    pub concurrency: usize,
    /// Mean response time (µs).
    pub mean_response_us: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
}

/// Simulates `clients` closed-loop clients against `workers` identical
/// workers whose service time is `service_us` (±`jitter_frac` deterministic
/// jitter), for `total_requests` completions.
///
/// # Panics
///
/// Panics if any parameter is zero.
#[must_use]
pub fn simulate(
    clients: usize,
    workers: usize,
    service_us: f64,
    jitter_frac: f64,
    total_requests: usize,
    seed: u64,
) -> SimResult {
    assert!(clients > 0 && workers > 0 && total_requests > 0);
    let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
    // Worker availability times and per-client next-issue times, in µs.
    let mut worker_free = vec![0.0f64; workers];
    let mut client_ready = vec![0.0f64; clients];
    let mut total_response = 0.0f64;
    let mut completed = 0usize;
    let mut last_completion = 0.0f64;

    while completed < total_requests {
        // The next request comes from the client that became ready first.
        let (c, &arrival) = client_ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("clients nonempty");
        // It is served by the worker that frees up first.
        let w = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("workers nonempty");
        let start = arrival.max(worker_free[w]);
        let jitter = 1.0 + jitter_frac * (drbg.next_f64() * 2.0 - 1.0);
        let finish = start + service_us * jitter;
        worker_free[w] = finish;
        client_ready[c] = finish; // zero think time: reissue immediately
        total_response += finish - arrival;
        completed += 1;
        last_completion = last_completion.max(finish);
    }

    SimResult {
        concurrency: clients,
        mean_response_us: total_response / completed as f64,
        throughput_rps: completed as f64 / (last_completion / 1_000_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_saturation_response_equals_service_time() {
        let r = simulate(8, 96, 1000.0, 0.0, 2000, 1);
        assert!((r.mean_response_us - 1000.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn above_saturation_response_grows_linearly() {
        let w = 16;
        let s = 1000.0;
        let r2x = simulate(2 * w, w, s, 0.0, 5000, 1);
        let r4x = simulate(4 * w, w, s, 0.0, 5000, 1);
        // Closed-loop: response ≈ clients/workers * service.
        assert!((r2x.mean_response_us / s - 2.0).abs() < 0.2, "{r2x:?}");
        assert!((r4x.mean_response_us / s - 4.0).abs() < 0.3, "{r4x:?}");
    }

    #[test]
    fn throughput_plateaus_at_worker_capacity() {
        let w = 16;
        let s = 1000.0; // 1 ms -> capacity = 16k rps
        let under = simulate(8, w, s, 0.0, 5000, 1);
        let over = simulate(64, w, s, 0.0, 5000, 1);
        assert!(under.throughput_rps < over.throughput_rps);
        assert!((over.throughput_rps - 16_000.0).abs() / 16_000.0 < 0.1, "{over:?}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate(10, 4, 500.0, 0.1, 1000, 7);
        let b = simulate(10, 4, 500.0, 0.1, 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn slower_service_means_slower_responses() {
        let fast = simulate(100, 96, 1000.0, 0.05, 3000, 2);
        let slow = simulate(100, 96, 1141.0, 0.05, 3000, 2); // +14.1%
        assert!(slow.mean_response_us > fast.mean_response_us);
        let overhead =
            (slow.mean_response_us - fast.mean_response_us) / fast.mean_response_us * 100.0;
        assert!((10.0..20.0).contains(&overhead), "overhead {overhead}");
    }
}
