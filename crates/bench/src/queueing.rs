//! Closed-loop concurrency simulation for the HTTPS experiment (Fig. 10).
//!
//! The paper drives its in-enclave HTTPS server with Siege: N concurrent
//! clients, zero think time, 10 minutes. The response-time/throughput
//! curves are a queueing phenomenon — flat response time while concurrency
//! is below the worker pool, then linear growth once requests queue. We
//! measure the *service time* of the real in-enclave handler and replay it
//! through this discrete-event simulation of a multi-worker server with a
//! FIFO accept queue.

use deflection_crypto::drbg::HmacDrbg;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Result of simulating one concurrency level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Number of concurrent closed-loop clients.
    pub concurrency: usize,
    /// Mean response time (µs).
    pub mean_response_us: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
}

/// Simulates `clients` closed-loop clients against `workers` identical
/// workers whose service time is `service_us` (±`jitter_frac` deterministic
/// jitter), for `total_requests` completions.
///
/// # Panics
///
/// Panics if any parameter is zero.
#[must_use]
pub fn simulate(
    clients: usize,
    workers: usize,
    service_us: f64,
    jitter_frac: f64,
    total_requests: usize,
    seed: u64,
) -> SimResult {
    assert!(clients > 0 && workers > 0 && total_requests > 0);
    let mut drbg = HmacDrbg::new(&seed.to_le_bytes());
    // Worker availability times and per-client next-issue times, in µs.
    let mut worker_free = vec![0.0f64; workers];
    let mut client_ready = vec![0.0f64; clients];
    let mut total_response = 0.0f64;
    let mut completed = 0usize;
    let mut last_completion = 0.0f64;

    while completed < total_requests {
        // The next request comes from the client that became ready first.
        let (c, &arrival) = client_ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("clients nonempty");
        // It is served by the worker that frees up first.
        let w = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("workers nonempty");
        let start = arrival.max(worker_free[w]);
        let jitter = 1.0 + jitter_frac * (drbg.next_f64() * 2.0 - 1.0);
        let finish = start + service_us * jitter;
        worker_free[w] = finish;
        client_ready[c] = finish; // zero think time: reissue immediately
        total_response += finish - arrival;
        completed += 1;
        last_completion = last_completion.max(finish);
    }

    SimResult {
        concurrency: clients,
        mean_response_us: total_response / completed as f64,
        throughput_rps: completed as f64 / (last_completion / 1_000_000.0),
    }
}

/// Arrival process for [`simulate_serving`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// `clients` closed-loop clients: each reissues `think_us` after its
    /// previous response (or after a shed-retry backoff).
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Per-client think time between response and next request (µs).
        think_us: u64,
    },
    /// Open-loop Poisson arrivals at `rate_rps` requests per second; shed
    /// requests are lost, not retried.
    Open {
        /// Mean offered load in requests per second.
        rate_rps: f64,
    },
}

/// One workload class in the mixed-service-time load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixEntry {
    /// Mean service time of this class (µs), measured from the real
    /// in-enclave handler.
    pub service_us: f64,
    /// Relative weight of this class in the mix.
    pub weight: u32,
}

/// Configuration of the admission-layer serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Arrival process.
    pub arrival: Arrival,
    /// Pool worker count.
    pub workers: usize,
    /// The workload mix (must be non-empty with positive total weight).
    pub mix: Vec<MixEntry>,
    /// Deterministic ±jitter applied to every service time.
    pub jitter_frac: f64,
    /// Completions to simulate.
    pub total_requests: usize,
    /// Queue depth at which new arrivals are shed
    /// ([`crate::queueing::ServingResult::shed`] counts them).
    pub high_water: usize,
    /// Largest batch the dispatcher serves at once.
    pub batch_max: usize,
    /// How long a partial batch waits to fill (µs).
    pub batch_wait_us: u64,
    /// DRBG seed — equal configs and seeds give bit-equal results.
    pub seed: u64,
}

/// Result of [`simulate_serving`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingResult {
    /// Requests completed (equals the configured `total_requests` unless
    /// the arrival stream was exhausted first).
    pub completed: usize,
    /// Arrivals shed at the high-water mark (closed-loop retries count
    /// each attempt).
    pub shed: u64,
    /// Median response time (µs), arrival to finish.
    pub p50_us: u64,
    /// 99th-percentile response time (µs).
    pub p99_us: u64,
    /// Mean response time (µs).
    pub mean_response_us: f64,
    /// Completions per second over the simulated span.
    pub throughput_rps: f64,
    /// `shed / (shed + completed)`.
    pub shed_rate: f64,
    /// Mean formed-batch size — ≈1 under a trickle, → `batch_max` under
    /// saturation (the adaptive-batching signature).
    pub mean_batch: f64,
}

/// Discrete-event simulation of the admission frontend
/// ([`deflection_core::admission::AdmissionFrontend`]) at scales the real
/// pool cannot be driven at in CI (10⁵–10⁶ clients): bounded queue with
/// high-water shedding, adaptive batch formation (`batch_max` /
/// `batch_wait_us`), greedy earliest-free worker assignment (the
/// work-stealing approximation), and a dispatcher that joins each batch
/// before forming the next — the same barrier `serve_parallel`'s scoped
/// threads impose. Service times come from a weighted mix measured on the
/// real handlers. Integer-µs event time and lazy open-loop arrival
/// generation keep memory O(clients + completions).
///
/// # Panics
///
/// Panics on zero workers/requests/batch/high-water, an empty or
/// zero-weight mix, or a non-positive arrival rate.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_serving(cfg: &ServingConfig) -> ServingResult {
    assert!(cfg.workers > 0 && cfg.total_requests > 0);
    assert!(cfg.batch_max > 0 && cfg.high_water > 0);
    assert!(!cfg.mix.is_empty());
    let total_weight: u64 = cfg.mix.iter().map(|m| u64::from(m.weight)).sum();
    assert!(total_weight > 0);
    let mut drbg = HmacDrbg::new(&cfg.seed.to_le_bytes());
    let mean_service = cfg.mix.iter().map(|m| m.service_us * f64::from(m.weight)).sum::<f64>()
        / total_weight as f64;

    // Min-heap of pending arrival times. Clients are interchangeable, so
    // an event is just a timestamp. Open-loop arrivals are generated
    // lazily (each pop pushes its successor) so the heap stays O(1).
    let mut arrivals: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let (closed_think, open_rate) = match cfg.arrival {
        Arrival::Closed { clients, think_us } => {
            assert!(clients > 0);
            for _ in 0..clients {
                arrivals.push(Reverse(0));
            }
            (Some(think_us), None)
        }
        Arrival::Open { rate_rps } => {
            assert!(rate_rps > 0.0);
            arrivals.push(Reverse(0));
            (None, Some(rate_rps))
        }
    };
    // Shed-retry backoff for closed-loop clients: think time plus one
    // full batch-drain time, so a shed client does not retry before the
    // dispatcher could plausibly have made room (and the event heap is
    // not flooded with hopeless retries under extreme overload).
    let drain_us = mean_service * cfg.batch_max as f64 / cfg.workers as f64;
    let backoff = (drain_us.ceil() as u64 + closed_think.unwrap_or(0)).max(1);

    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut worker_free = vec![0u64; cfg.workers];
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.total_requests);
    let mut shed = 0u64;
    let mut t_disp = 0u64;
    let mut last_finish = 0u64;
    let mut batches = 0u64;
    let mut batched_total = 0u64;

    // Absorb one arrival event into queue/shed; returns false when the
    // stream is exhausted. (A macro-free closure would need to borrow
    // half the locals mutably at once, so this is open-coded per site.)
    while latencies.len() < cfg.total_requests {
        if queue.is_empty() {
            match arrivals.peek() {
                Some(&Reverse(t)) => t_disp = t_disp.max(t),
                None => break,
            }
        }
        // Drain every arrival at or before the dispatcher's clock.
        while let Some(&Reverse(t)) = arrivals.peek() {
            if t > t_disp {
                break;
            }
            arrivals.pop();
            if let Some(rate) = open_rate {
                let u = drbg.next_f64();
                let dt = (-(1.0 - u).ln() * 1_000_000.0 / rate).ceil() as u64;
                arrivals.push(Reverse(t + dt.max(1)));
            }
            if queue.len() >= cfg.high_water {
                shed += 1;
                if closed_think.is_some() {
                    arrivals.push(Reverse(t + backoff));
                }
            } else {
                queue.push_back(t);
            }
        }
        if queue.is_empty() {
            continue;
        }
        // Adaptive fill: wait up to `batch_wait_us` for the batch to
        // reach `batch_max`.
        let deadline = t_disp + cfg.batch_wait_us;
        let mut waited = false;
        while queue.len() < cfg.batch_max {
            match arrivals.peek() {
                Some(&Reverse(t)) if t <= deadline => {
                    arrivals.pop();
                    if let Some(rate) = open_rate {
                        let u = drbg.next_f64();
                        let dt = (-(1.0 - u).ln() * 1_000_000.0 / rate).ceil() as u64;
                        arrivals.push(Reverse(t + dt.max(1)));
                    }
                    if queue.len() >= cfg.high_water {
                        shed += 1;
                        if closed_think.is_some() {
                            arrivals.push(Reverse(t + backoff));
                        }
                    } else {
                        queue.push_back(t);
                        t_disp = t_disp.max(t);
                    }
                }
                _ => {
                    waited = true;
                    break;
                }
            }
        }
        if waited && queue.len() < cfg.batch_max {
            t_disp = t_disp.max(deadline);
        }
        let take = queue.len().min(cfg.batch_max);
        batches += 1;
        batched_total += take as u64;
        let mut batch_end = t_disp;
        for _ in 0..take {
            let arrival = queue.pop_front().expect("take <= len");
            // Weighted mix draw, then deterministic jitter.
            let r = drbg.next_f64() * total_weight as f64;
            let mut acc = 0.0;
            let mut service = cfg.mix[cfg.mix.len() - 1].service_us;
            for m in &cfg.mix {
                acc += f64::from(m.weight);
                if r < acc {
                    service = m.service_us;
                    break;
                }
            }
            let jitter = 1.0 + cfg.jitter_frac * (drbg.next_f64() * 2.0 - 1.0);
            let dur = (service * jitter).max(1.0) as u64;
            // Earliest-free worker (the work-stealing approximation).
            let w = worker_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &f)| f)
                .map(|(i, _)| i)
                .expect("workers nonempty");
            let start = t_disp.max(worker_free[w]);
            let finish = start + dur;
            worker_free[w] = finish;
            batch_end = batch_end.max(finish);
            last_finish = last_finish.max(finish);
            latencies.push(finish - arrival);
            if let Some(think) = closed_think {
                arrivals.push(Reverse(finish + think.max(1)));
            }
            if latencies.len() == cfg.total_requests {
                break;
            }
        }
        // The dispatcher joins its batch before forming the next one —
        // the same barrier `serve_parallel`'s scoped threads impose.
        t_disp = batch_end;
    }

    let completed = latencies.len();
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((completed - 1) * p) / 100]
        }
    };
    let mean = latencies.iter().map(|&l| l as f64).sum::<f64>() / (completed.max(1)) as f64;
    ServingResult {
        completed,
        shed,
        p50_us: pct(50),
        p99_us: pct(99),
        mean_response_us: mean,
        throughput_rps: if last_finish == 0 {
            0.0
        } else {
            completed as f64 / (last_finish as f64 / 1_000_000.0)
        },
        shed_rate: shed as f64 / (shed as f64 + completed as f64).max(1.0),
        mean_batch: batched_total as f64 / (batches.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_saturation_response_equals_service_time() {
        let r = simulate(8, 96, 1000.0, 0.0, 2000, 1);
        assert!((r.mean_response_us - 1000.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn above_saturation_response_grows_linearly() {
        let w = 16;
        let s = 1000.0;
        let r2x = simulate(2 * w, w, s, 0.0, 5000, 1);
        let r4x = simulate(4 * w, w, s, 0.0, 5000, 1);
        // Closed-loop: response ≈ clients/workers * service.
        assert!((r2x.mean_response_us / s - 2.0).abs() < 0.2, "{r2x:?}");
        assert!((r4x.mean_response_us / s - 4.0).abs() < 0.3, "{r4x:?}");
    }

    #[test]
    fn throughput_plateaus_at_worker_capacity() {
        let w = 16;
        let s = 1000.0; // 1 ms -> capacity = 16k rps
        let under = simulate(8, w, s, 0.0, 5000, 1);
        let over = simulate(64, w, s, 0.0, 5000, 1);
        assert!(under.throughput_rps < over.throughput_rps);
        assert!((over.throughput_rps - 16_000.0).abs() / 16_000.0 < 0.1, "{over:?}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate(10, 4, 500.0, 0.1, 1000, 7);
        let b = simulate(10, 4, 500.0, 0.1, 1000, 7);
        assert_eq!(a, b);
    }

    fn mix() -> Vec<MixEntry> {
        vec![
            MixEntry { service_us: 800.0, weight: 4 },  // https
            MixEntry { service_us: 1500.0, weight: 2 }, // credit / kernels
            MixEntry { service_us: 400.0, weight: 3 },  // kv session
        ]
    }

    fn serving_cfg(arrival: Arrival, total: usize) -> ServingConfig {
        ServingConfig {
            arrival,
            workers: 4,
            mix: mix(),
            jitter_frac: 0.05,
            total_requests: total,
            high_water: 512,
            batch_max: 64,
            batch_wait_us: 500,
            seed: 11,
        }
    }

    #[test]
    fn serving_is_deterministic_for_seed() {
        let cfg = serving_cfg(Arrival::Closed { clients: 1000, think_us: 100 }, 20_000);
        assert_eq!(simulate_serving(&cfg), simulate_serving(&cfg));
    }

    #[test]
    fn serving_scales_to_a_hundred_thousand_closed_loop_clients() {
        // Unit-test-sized completion count; the loadgen bin drives the
        // full 10^5-10^6 completions in release mode.
        let cfg = serving_cfg(Arrival::Closed { clients: 100_000, think_us: 500_000 }, 20_000);
        let r = simulate_serving(&cfg);
        assert_eq!(r.completed, 20_000);
        // Far more offered load than capacity: the high-water mark sheds.
        assert!(r.shed > 0, "{r:?}");
        assert!(r.p99_us >= r.p50_us);
    }

    #[test]
    fn shedding_keeps_p99_bounded_instead_of_collapsing() {
        // The acceptance property in miniature: p99 under heavy shedding
        // stays within 10x of p99 at half saturation, because the queue
        // is bounded — latency cannot grow with offered load. This only
        // holds when the high-water mark is sized for latency
        // (queue wait ≈ high_water x service / workers), so the serving
        // configs here use a latency-tier queue, not the throughput-tier
        // default.
        let latency_cfg = |arrival, total| {
            let mut cfg = serving_cfg(arrival, total);
            cfg.high_water = 32;
            cfg.batch_max = 16;
            cfg
        };
        let half =
            simulate_serving(&latency_cfg(Arrival::Closed { clients: 2, think_us: 0 }, 5_000));
        let over =
            simulate_serving(&latency_cfg(Arrival::Closed { clients: 5_000, think_us: 0 }, 10_000));
        assert_eq!(half.shed, 0, "{half:?}");
        assert!(over.shed > 0, "{over:?}");
        assert!(
            (over.p99_us as f64) <= 10.0 * (half.p99_us as f64),
            "over {over:?} vs half {half:?}"
        );
    }

    #[test]
    fn open_loop_sheds_past_capacity_and_trickles_below_it() {
        // 4 workers x ~1.2ms mean service ≈ 4800 rps capacity (batching
        // barrier shaves some). 100 rps is a trickle; 50k rps is far past.
        let trickle = simulate_serving(&serving_cfg(Arrival::Open { rate_rps: 100.0 }, 2_000));
        let flood = simulate_serving(&serving_cfg(Arrival::Open { rate_rps: 50_000.0 }, 10_000));
        assert_eq!(trickle.shed, 0, "{trickle:?}");
        assert!(trickle.mean_batch < 4.0, "{trickle:?}");
        assert!(flood.shed_rate > 0.5, "{flood:?}");
        // Adaptive batching: a flood fills batches to batch_max.
        assert!(flood.mean_batch > 32.0, "{flood:?}");
        assert!(flood.throughput_rps > trickle.throughput_rps);
    }

    #[test]
    fn more_workers_raise_saturation_throughput() {
        let mut slow = serving_cfg(Arrival::Closed { clients: 1_000, think_us: 0 }, 10_000);
        slow.workers = 1;
        let mut fast = slow.clone();
        fast.workers = 4;
        let r1 = simulate_serving(&slow);
        let r4 = simulate_serving(&fast);
        assert!(r4.throughput_rps > 2.0 * r1.throughput_rps, "1w {r1:?} vs 4w {r4:?}");
    }

    #[test]
    fn slower_service_means_slower_responses() {
        let fast = simulate(100, 96, 1000.0, 0.05, 3000, 2);
        let slow = simulate(100, 96, 1141.0, 0.05, 3000, 2); // +14.1%
        assert!(slow.mean_response_us > fast.mean_response_us);
        let overhead =
            (slow.mean_response_us - fast.mean_response_us) / fast.mean_response_us * 100.0;
        assert!((10.0..20.0).contains(&overhead), "overhead {overhead}");
    }
}
