//! Cost models for the shielding-runtime comparison (paper Fig. 11).
//!
//! The paper compares its HTTPS server against the same server hosted in
//! Graphene-SGX and Occlum and finds: "unprotected Graphene-SGX has the
//! best transfer rate with relatively small files. However, with the size
//! growing, DEFLECTION outperforms both runtimes (77% of running the
//! server on the native Linux)". We cannot re-host those runtimes, so this
//! module captures the *cost structure* that produces exactly that shape:
//!
//! * every runtime pays a **fixed per-request cost** (TLS handshake
//!   amortization, enclave transitions, syscall forwarding) and a
//!   **per-byte cost** (copy across the enclave boundary, encryption,
//!   paging);
//! * LibOS-style runtimes (Graphene) have a *small* fixed cost but a
//!   *large* per-byte cost — every byte crosses their OS-interface shim
//!   and, past the EPC working set, triggers paging;
//! * DEFLECTION has a *moderate* fixed cost (loading/verification is
//!   amortized; per-request P0 sealing has setup cost) but a per-byte cost
//!   close to native, inflated only by the measured instrumentation
//!   overhead, which is how it overtakes as size grows.
//!
//! The constants are calibrated so the small-file and large-file orderings
//! match the paper's Fig. 11; EXPERIMENTS.md documents this as a modeled
//! (not measured) comparison.

/// A runtime's cost model: `time(bytes) = fixed + per_byte * bytes
/// (+ paging for the excess past the EPC working set)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeModel {
    /// Display name.
    pub name: &'static str,
    /// Fixed per-request cost (µs).
    pub fixed_us: f64,
    /// Per-byte streaming cost (µs/KiB).
    pub per_kib_us: f64,
    /// Working-set size after which paging multiplies per-byte cost (KiB);
    /// `f64::INFINITY` disables paging effects.
    pub paging_threshold_kib: f64,
    /// Multiplier applied to bytes past the threshold.
    pub paging_factor: f64,
}

impl RuntimeModel {
    /// Service time for one `size_kib`-KiB transfer, in µs.
    #[must_use]
    pub fn service_us(&self, size_kib: f64) -> f64 {
        let base = self.fixed_us + self.per_kib_us * size_kib.min(self.paging_threshold_kib);
        let excess = (size_kib - self.paging_threshold_kib).max(0.0);
        base + self.per_kib_us * self.paging_factor * excess
    }

    /// Transfer rate in MiB/s for one transfer of `size_kib`.
    #[must_use]
    pub fn rate_mib_s(&self, size_kib: f64) -> f64 {
        let us = self.service_us(size_kib);
        (size_kib / 1024.0) / (us / 1_000_000.0)
    }
}

/// Native Linux (no enclave): tiny fixed cost, fastest per byte.
#[must_use]
pub fn native() -> RuntimeModel {
    RuntimeModel {
        name: "native",
        fixed_us: 40.0,
        per_kib_us: 0.80,
        paging_threshold_kib: f64::INFINITY,
        paging_factor: 1.0,
    }
}

/// Graphene-SGX-like LibOS: minimal fixed cost (paper: best on small
/// files), heavy per-byte shim cost and EPC paging past ~64 MiB working
/// sets scaled to our window.
#[must_use]
pub fn graphene_like() -> RuntimeModel {
    RuntimeModel {
        name: "graphene-like",
        fixed_us: 45.0,
        per_kib_us: 1.65,
        paging_threshold_kib: 128.0,
        paging_factor: 2.6,
    }
}

/// Occlum-like LibOS: slightly higher fixed cost (SFI-era toolchain),
/// similar per-byte shim cost, milder paging cliff.
#[must_use]
pub fn occlum_like() -> RuntimeModel {
    RuntimeModel {
        name: "occlum-like",
        fixed_us: 70.0,
        per_kib_us: 1.45,
        paging_threshold_kib: 192.0,
        paging_factor: 2.2,
    }
}

/// DEFLECTION: moderate fixed cost (P0 record setup), near-native per-byte
/// cost inflated by the *measured* instrumentation overhead fraction
/// `overhead` (e.g. `0.14` for the paper's average P1–P6 response-time
/// cost).
#[must_use]
pub fn deflection(overhead: f64) -> RuntimeModel {
    RuntimeModel {
        name: "deflection",
        fixed_us: 110.0,
        per_kib_us: 0.80 * (1.0 + overhead) * 1.12, // sealing + padding
        paging_threshold_kib: f64::INFINITY,
        paging_factor: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_fig11() {
        let n = native();
        let g = graphene_like();
        let o = occlum_like();
        let d = deflection(0.14);
        // Small files: Graphene fastest among shielded runtimes (paper).
        let small = 4.0;
        assert!(g.rate_mib_s(small) > d.rate_mib_s(small));
        assert!(g.rate_mib_s(small) > o.rate_mib_s(small));
        // Large files: DEFLECTION overtakes both LibOSes...
        let large = 1024.0;
        assert!(d.rate_mib_s(large) > g.rate_mib_s(large));
        assert!(d.rate_mib_s(large) > o.rate_mib_s(large));
        // ...and reaches roughly 77% of native (paper's figure).
        let ratio = d.rate_mib_s(large) / n.rate_mib_s(large);
        assert!((0.70..0.85).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn crossover_exists() {
        // There must be a size where DEFLECTION overtakes Graphene.
        let g = graphene_like();
        let d = deflection(0.14);
        let mut crossed = false;
        let mut prev = d.rate_mib_s(1.0) > g.rate_mib_s(1.0);
        for kib in [2.0, 8.0, 32.0, 128.0, 512.0, 2048.0] {
            let now = d.rate_mib_s(kib) > g.rate_mib_s(kib);
            if now != prev {
                crossed = true;
            }
            prev = now;
        }
        assert!(crossed, "no crossover in the sweep");
    }

    #[test]
    fn service_time_is_monotone_in_size() {
        for model in [native(), graphene_like(), occlum_like(), deflection(0.2)] {
            let mut last = 0.0;
            for kib in [1.0, 10.0, 100.0, 1000.0] {
                let t = model.service_us(kib);
                assert!(t > last, "{} not monotone", model.name);
                last = t;
            }
        }
    }
}
