//! Shared rig for the multi-tenant serving experiments: the mixed
//! workload set (https, credit, genome seqgen, two nBench kernels and
//! the stateful KV session), a pool + admission-frontend round, and the
//! real measured service-time mix the [`crate::queueing`] simulator
//! replays. Used by the `fig_serving` bench and the `loadgen` bin so
//! both drive exactly the same traffic.

use crate::measure;
use crate::queueing::MixEntry;
use deflection_core::admission::{AdmissionConfig, AdmissionFrontend, Ticket};
use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::pool::EnclavePool;
use deflection_core::producer::produce;
use deflection_core::tenant::{TenantConfig, TenantId, TenantRegistry};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_workloads::{credit, genome, kv, nbench, server};
use std::time::Duration;

/// Fuel budget for serving runs (matches the workloads runner default).
pub const FUEL: u64 = 2_000_000_000;
/// Requests per mixed admission batch.
pub const BATCH: usize = 32;

/// One tenant of the mixed serving workload: DCL source plus a request
/// generator (requests vary by index so batches are not degenerate).
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// DCL source (prelude included).
    pub source: String,
    /// Request payload for the `i`-th request of a session.
    pub request: fn(u64) -> Vec<u8>,
}

/// The mixed multi-tenant workload set.
#[must_use]
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload { name: "https", source: server::source(), request: |i| server::request(i, 2048) },
        Workload { name: "credit", source: credit::source(), request: |_| credit::input(50, 10) },
        Workload {
            name: "seqgen",
            source: genome::seqgen_source(),
            request: |_| genome::seqgen_input(2_000),
        },
        Workload {
            name: "numeric_sort",
            source: nbench::numeric_sort::source(),
            request: |_| nbench::numeric_sort::input(2),
        },
        Workload {
            name: "idea",
            source: nbench::idea::source(),
            request: |_| nbench::idea::input(2),
        },
        Workload {
            name: "kv",
            source: kv::source(),
            request: |i| kv::session_request(7, i as i64),
        },
    ]
}

/// The pool manifest all serving experiments run under (full policy).
#[must_use]
pub fn serving_manifest() -> Manifest {
    let mut m = Manifest::ccaas();
    m.policy = PolicySet::full();
    m
}

/// A pool with every workload produced as its own tenant binary, plus
/// one interleaved mixed batch of request payloads.
pub struct Rig {
    /// The worker pool (persists across rounds, so its prepared-image
    /// cache makes steady-state tenant switches replays).
    pub pool: EnclavePool,
    /// One produced binary per workload, in [`workloads`] order.
    pub binaries: Vec<Vec<u8>>,
    /// `(workload index, payload)` for one mixed batch.
    pub requests: Vec<(usize, Vec<u8>)>,
}

/// Builds the serving rig with `workers` pool workers.
///
/// # Panics
///
/// Panics if a workload fails to produce — bench fixtures are trusted.
#[must_use]
pub fn rig(workers: usize) -> Rig {
    let m = serving_manifest();
    let loads = workloads();
    let binaries: Vec<Vec<u8>> = loads
        .iter()
        .map(|w| produce(&w.source, &m.policy).expect("workload verifies").serialize())
        .collect();
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut pool = EnclavePool::new(&layout, &m, workers);
    pool.set_owner_session([3; 32]);
    // Keep every tenant image cached so steady-state batches replay
    // instead of re-verifying.
    pool.set_prepared_cap(binaries.len() + 1);
    let requests: Vec<(usize, Vec<u8>)> = (0..BATCH as u64)
        .map(|i| {
            let wl = (i as usize) % loads.len();
            (wl, (loads[wl].request)(i))
        })
        .collect();
    Rig { pool, binaries, requests }
}

/// One admission round: fresh frontend, every workload registered as a
/// tenant, the rig's mixed batch submitted, dispatcher run, verdicts
/// awaited. Returns a checksum over the exit values (so callers can
/// detect silent corruption across rounds).
///
/// # Panics
///
/// Panics if any request of the trusted fixture batch is shed or fails.
pub fn admission_round(r: &mut Rig) -> u64 {
    let m = serving_manifest();
    let frontend = AdmissionFrontend::new(
        AdmissionConfig {
            queue_capacity: 2 * BATCH,
            high_water: 2 * BATCH,
            batch_max: BATCH,
            batch_wait: Duration::from_micros(200),
        },
        TenantRegistry::new(&m),
    );
    let tenants: Vec<TenantId> = r
        .binaries
        .iter()
        .enumerate()
        .map(|(i, b)| {
            frontend
                .register(TenantConfig {
                    name: format!("t{i}"),
                    binary: b.clone(),
                    manifest: m.clone(),
                    max_in_flight: BATCH,
                    lifetime_output_budget: None,
                })
                .expect("tenant fits pool")
        })
        .collect();
    let tickets: Vec<Ticket> = r
        .requests
        .iter()
        .map(|(wl, payload)| {
            frontend.submit(tenants[*wl], payload.clone()).expect("under high water")
        })
        .collect();
    frontend.close();
    frontend.run_dispatcher(&mut r.pool, FUEL);
    let mut acc = 0u64;
    for t in tickets {
        let report = t.wait().expect("mixed batch serves");
        acc = acc.wrapping_add(report.exit.exit_value().unwrap_or(0));
    }
    acc
}

/// Measures each workload's real in-enclave service time (µs, median of
/// three runs under the full policy) as the simulation mix.
#[must_use]
pub fn measured_mix() -> Vec<(String, MixEntry)> {
    let config = MemConfig::small();
    let policy = PolicySet::full();
    workloads()
        .iter()
        .map(|w| {
            let mut times: Vec<f64> = (0..3)
                .map(|i| {
                    let input = (w.request)(i);
                    measure(&w.source, &input, &policy, &config).wall.as_secs_f64() * 1e6
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (w.name.to_string(), MixEntry { service_us: times[times.len() / 2], weight: 1 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_admission_round_is_reproducible_for_stateless_tenants() {
        // Two rigs served the same batch agree on every stateless
        // tenant's verdict; the KV tenant is session-stateful, so the
        // round checksum is compared on a fresh rig at the same session
        // position instead of across positions.
        let mut a = rig(1);
        let mut b = rig(1);
        assert_eq!(admission_round(&mut a), admission_round(&mut b));
    }
}
