//! The typed, name-resolved intermediate representation produced by
//! semantic analysis and consumed by code generation.

use crate::ast::{BinOp, UnOp};

/// A fully resolved DCL type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Signed 64-bit integer.
    Int,
    /// IEEE 754 double.
    Float,
    /// 8-bit storage cell (only as array/slice element).
    Byte,
    /// Fixed-size array (globals and locals).
    Array(Box<Type>, u64),
    /// Unsized slice (parameters; value is the base address).
    Slice(Box<Type>),
    /// Function pointer (value is a branch-table index).
    FnPtr(Vec<Type>, Option<Box<Type>>),
}

impl Type {
    /// Size in bytes of one value of this type when stored in memory.
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            Type::Byte => 1,
            Type::Int | Type::Float | Type::Slice(_) | Type::FnPtr(..) => 8,
            Type::Array(elem, n) => elem.size() * n,
        }
    }

    /// Whether values of this type fit in a register.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Slice(_) | Type::FnPtr(..))
    }
}

/// Well-known builtin functions (the program's only I/O surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `input_len() -> int` — bytes available in the input buffer.
    InputLen,
    /// `input_byte(i: int) -> int` — read byte `i` of the input buffer.
    InputByte,
    /// `output_byte(i: int, v: int)` — write byte `i` of the output buffer.
    OutputByte,
    /// `input_word(i: int) -> int` — read the `i`-th 64-bit word of the
    /// input buffer.
    InputWord,
    /// `output_word(i: int, v: int)` — write the `i`-th 64-bit word of the
    /// output buffer.
    OutputWord,
    /// `send(len: int) -> int` — OCall: emit `len` output bytes (encrypted
    /// and padded by the P0 wrapper).
    Send,
    /// `recv() -> int` — OCall: refill the input buffer, returns new length.
    Recv,
    /// `log(v: int)` — OCall: diagnostic counter (content-free).
    Log,
    /// `clock() -> int` — OCall: virtual instruction-count clock.
    Clock,
    /// `itof(i: int) -> float`.
    Itof,
    /// `ftoi(f: float) -> int` (truncating).
    Ftoi,
    /// `fsqrt(f: float) -> float`.
    Fsqrt,
}

impl Builtin {
    /// Looks up a builtin by source name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "input_len" => Builtin::InputLen,
            "input_byte" => Builtin::InputByte,
            "output_byte" => Builtin::OutputByte,
            "input_word" => Builtin::InputWord,
            "output_word" => Builtin::OutputWord,
            "send" => Builtin::Send,
            "recv" => Builtin::Recv,
            "log" => Builtin::Log,
            "clock" => Builtin::Clock,
            "itof" => Builtin::Itof,
            "ftoi" => Builtin::Ftoi,
            "fsqrt" => Builtin::Fsqrt,
            _ => return None,
        })
    }

    /// Parameter types of the builtin.
    #[must_use]
    pub fn params(&self) -> Vec<Type> {
        match self {
            Builtin::InputLen | Builtin::Recv | Builtin::Clock => vec![],
            Builtin::InputByte | Builtin::Send | Builtin::Log | Builtin::InputWord => {
                vec![Type::Int]
            }
            Builtin::OutputByte | Builtin::OutputWord => vec![Type::Int, Type::Int],
            Builtin::Itof => vec![Type::Int],
            Builtin::Ftoi | Builtin::Fsqrt => vec![Type::Float],
        }
    }

    /// Return type of the builtin, if any.
    #[must_use]
    pub fn ret(&self) -> Option<Type> {
        match self {
            Builtin::OutputByte | Builtin::OutputWord | Builtin::Log => None,
            Builtin::Itof | Builtin::Fsqrt => Some(Type::Float),
            _ => Some(Type::Int),
        }
    }
}

/// A global variable after semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name (also the object-file symbol).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Initial bytes; `None` means zero-initialized (`.bss`).
    pub init: Option<Vec<u8>>,
}

/// A stack slot (parameter or local).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSlot {
    /// Source name (for diagnostics).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Positive displacement below `rbp`: the slot occupies
    /// `[rbp - offset, rbp - offset + size)`.
    pub offset: u64,
}

/// The base of an indexable place.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceBase {
    /// A global array (symbol name).
    Global(String),
    /// A local array in slot `slot`.
    LocalArray(usize),
    /// A slice whose base address lives in scalar slot `slot`.
    Slice(usize),
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Result type; `None` for void calls in statement position.
    pub ty: Option<Type>,
    /// Expression kind.
    pub kind: ExprKind,
}

/// Expression kinds (typed, resolved).
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Read a scalar local/param slot.
    ReadLocal(usize),
    /// Read a scalar global.
    ReadGlobal(String),
    /// Read `base[index]`; `elem` is the element type.
    Index {
        /// Array or slice base.
        base: PlaceBase,
        /// Element type (drives load width).
        elem: Type,
        /// Index expression.
        index: Box<Expr>,
    },
    /// The address of an array (passing it to a slice parameter).
    ArrayAddr(PlaceBase),
    /// Direct call to a named function.
    CallDirect {
        /// Callee symbol.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Indirect call through a function-pointer value.
    CallIndirect {
        /// Expression yielding the branch-table index.
        target: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Builtin invocation.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `&f` — the branch-table index of `f`.
    FuncRef {
        /// Function name.
        name: String,
        /// Index into the indirect-branch table.
        table_index: u32,
    },
    /// Binary operation; `float_op` selects FPU lowering.
    Binary {
        /// Operator.
        op: BinOp,
        /// Operands are floats.
        float_op: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand is a float.
        float_op: bool,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Initialize scalar slot `slot` with `value` (locals without
    /// initializer and array locals produce no statement).
    AssignLocal {
        /// Destination slot.
        slot: usize,
        /// Value.
        value: Expr,
    },
    /// Store to a scalar global.
    AssignGlobal {
        /// Global symbol.
        name: String,
        /// Value.
        value: Expr,
    },
    /// Store to `base[index]`.
    AssignIndex {
        /// Array or slice base.
        base: PlaceBase,
        /// Element type (drives store width).
        elem: Type,
        /// Index expression.
        index: Expr,
        /// Value.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (int).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
    },
    /// Loop.
    While {
        /// Condition (int).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Return.
    Return {
        /// Optional value.
        value: Option<Expr>,
    },
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Expression statement (calls).
    Expr(Expr),
}

/// A function after semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name (also the object-file symbol).
    pub name: String,
    /// Number of parameters (the first slots).
    pub param_count: usize,
    /// All stack slots, parameters first.
    pub slots: Vec<LocalSlot>,
    /// Total frame size in bytes (8-aligned).
    pub frame_size: u64,
    /// Return type.
    pub ret: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// The whole checked program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Globals.
    pub globals: Vec<Global>,
    /// Functions.
    pub functions: Vec<Function>,
    /// Functions whose address is taken, in branch-table order — the
    /// indirect-branch target list the object file will carry as the proof.
    pub address_taken: Vec<String>,
}
