//! # deflection-lang
//!
//! The code producer's compiler frontend: **DCL** (Deflection C-like
//! Language), a small, statically typed systems language compiled to the
//! `deflection-isa` machine model through a conventional pipeline —
//! lexer → parser → semantic analysis → machine IR → assembly into a
//! relocatable [`deflection_obj::ObjectFile`].
//!
//! In the paper the code producer is "a customized LLVM-based compiler"
//! (Section IV-C); DCL plays Clang/LLVM's role here. The crate stops at the
//! *machine IR* boundary on purpose: the security-annotation instrumentation
//! passes (policies P1–P6) live in `deflection-core`'s producer and operate
//! on [`mir::MirProgram`], mirroring how the paper hangs its passes off
//! LLVM's machine layer (Fig. 4).
//!
//! ## Language summary
//!
//! ```text
//! var total: int;                    // zero-initialized global
//! var table: [int; 64];              // global array
//! var msg: [byte; 6] = "hello\n";    // byte array with string initializer
//!
//! fn add(a: int, b: int) -> int { return a + b; }
//!
//! fn main() -> int {
//!     var i: int = 0;
//!     var f: fn(int, int) -> int = &add;   // function pointer (CFI-checked)
//!     while (i < 10) { table[i] = f(i, i); i = i + 1; }
//!     return table[9];
//! }
//! ```
//!
//! Types: `int` (i64), `float` (f64), `byte` (u8, array element only),
//! fixed arrays `[T; N]`, unsized slice parameters `[T]`, and function
//! pointers `fn(..) -> T`. Builtins give programs their only I/O:
//! `input_len`, `input_byte`, `output_byte`, `send`, `recv`, `log`,
//! `clock`, plus `itof`/`ftoi`/`fsqrt` conversions.
//!
//! # Example
//!
//! ```
//! let source = "fn main() -> int { return 6 * 7; }";
//! let mir = deflection_lang::compile(source)?;
//! assert_eq!(mir.entry, "__start");
//! let object = deflection_lang::assemble(&mir)?;
//! assert!(object.symbol("main").is_some());
//! # Ok::<(), deflection_lang::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod ast;
pub mod codegen;
pub mod hir;
pub mod lexer;
pub mod mir;
pub mod opt;
pub mod parser;
pub mod sema;

use std::error::Error as StdError;
use std::fmt;

/// Source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any failure while compiling DCL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where in the source the error was detected.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(span: Span, message: impl Into<String>) -> Self {
        CompileError { span, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl StdError for CompileError {}

/// Compiles DCL source to machine IR (frontend + codegen, no
/// instrumentation).
///
/// # Errors
///
/// Returns a [`CompileError`] with a source span for lexical, syntactic and
/// type errors.
pub fn compile(source: &str) -> Result<mir::MirProgram, CompileError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(tokens)?;
    let hir = sema::check(&ast)?;
    Ok(codegen::lower(&hir))
}

/// Assembles machine IR into a relocatable object file.
///
/// # Errors
///
/// Returns a [`CompileError`] if a branch target exceeds `rel32` range or a
/// label is undefined (compiler-internal conditions surfaced as errors
/// rather than panics).
pub fn assemble(program: &mir::MirProgram) -> Result<deflection_obj::ObjectFile, CompileError> {
    asm::assemble(program)
}

/// Convenience: compile and assemble in one step.
///
/// # Errors
///
/// Propagates errors from [`compile`] and [`assemble`].
pub fn compile_to_object(source: &str) -> Result<deflection_obj::ObjectFile, CompileError> {
    assemble(&compile(source)?)
}
