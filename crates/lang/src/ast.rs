//! The abstract syntax tree produced by the parser (untyped).

use crate::Span;

/// A DCL type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int` — signed 64-bit integer.
    Int,
    /// `float` — IEEE 754 double.
    Float,
    /// `byte` — 8-bit storage cell (array element only).
    Byte,
    /// `[T; N]` — fixed-size array.
    Array(Box<TypeExpr>, u64),
    /// `[T]` — unsized slice, parameter position only.
    Slice(Box<TypeExpr>),
    /// `fn(T, ...) -> R` — function pointer.
    FnPtr(Vec<TypeExpr>, Option<Box<TypeExpr>>),
}

/// A whole source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<FunctionDecl>,
}

/// Initializer of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// A single literal value.
    Scalar(Expr),
    /// `{ lit, lit, ... }` for arrays.
    List(Vec<Expr>),
    /// `"..."` for byte arrays.
    Str(Vec<u8>),
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer.
    pub init: Option<Initializer>,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, TypeExpr)>,
    /// Return type, if any.
    pub ret: Option<TypeExpr>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name: ty = init;`
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Optional initializing expression.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `lvalue = expr;`
    Assign {
        /// The assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Optional value.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `break;`
    Break {
        /// Source location.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for its effects (a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Float literal.
    Float(f64, Span),
    /// Variable reference.
    Ident(String, Span),
    /// `a[i]`.
    Index {
        /// The array (an identifier expression).
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `f(args)` — direct, builtin, or function-pointer call depending on
    /// what `callee` resolves to.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `&f` — take the address (branch-table index) of a function.
    FuncRef(String, Span),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source location of this expression.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Ident(_, s)
            | Expr::FuncRef(_, s)
            | Expr::Index { span: s, .. }
            | Expr::Call { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Unary { span: s, .. } => *s,
        }
    }
}
