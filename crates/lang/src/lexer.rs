//! The DCL lexer.

use crate::{CompileError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (byte-array initializer).
    Str(Vec<u8>),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Var,
    Fn,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    Int,
    Float,
    Byte,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,  // ->
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,   // &
    Pipe,  // |
    Caret, // ^
    Tilde, // ~
    Bang,  // !
    Shl,   // <<
    Shr,   // >>
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn escape(&mut self, span: Span) -> Result<u8, CompileError> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            _ => Err(CompileError::new(span, "invalid escape sequence")),
        }
    }

    fn number(&mut self, span: Span) -> Result<Tok, CompileError> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("ascii");
            if text.is_empty() {
                return Err(CompileError::new(span, "empty hex literal"));
            }
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| CompileError::new(span, "hex literal out of range"))?;
            return Ok(Tok::Int(value as i64));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.col) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| CompileError::new(span, "invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| CompileError::new(span, "integer literal out of range"))
        }
    }
}

fn keyword(ident: &str) -> Option<Kw> {
    Some(match ident {
        "var" => Kw::Var,
        "fn" => Kw::Fn,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "int" => Kw::Int,
        "float" => Kw::Float,
        "byte" => Kw::Byte,
        _ => return None,
    })
}

/// Tokenizes DCL source.
///
/// # Errors
///
/// Returns a [`CompileError`] for invalid characters, unterminated
/// comments/strings and malformed literals.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut lx = Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let span = lx.span();
        let Some(c) = lx.peek() else {
            out.push(Token { tok: Tok::Eof, span });
            return Ok(out);
        };
        let tok = match c {
            b'0'..=b'9' => lx.number(span)?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = lx.pos;
                while matches!(lx.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    lx.bump();
                }
                let text = std::str::from_utf8(&lx.src[start..lx.pos]).expect("ascii");
                match keyword(text) {
                    Some(kw) => Tok::Kw(kw),
                    None => Tok::Ident(text.to_string()),
                }
            }
            b'\'' => {
                lx.bump();
                let b = match lx.bump() {
                    Some(b'\\') => lx.escape(span)?,
                    Some(b'\'') => return Err(CompileError::new(span, "empty char literal")),
                    Some(b) => b,
                    None => return Err(CompileError::new(span, "unterminated char literal")),
                };
                if lx.bump() != Some(b'\'') {
                    return Err(CompileError::new(span, "unterminated char literal"));
                }
                Tok::Int(b as i64)
            }
            b'"' => {
                lx.bump();
                let mut bytes = Vec::new();
                loop {
                    match lx.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => bytes.push(lx.escape(span)?),
                        Some(b) => bytes.push(b),
                        None => return Err(CompileError::new(span, "unterminated string")),
                    }
                }
                Tok::Str(bytes)
            }
            _ => {
                lx.bump();
                let two = |lx: &mut Lexer, second: u8, a: Punct, b: Punct| {
                    if lx.peek() == Some(second) {
                        lx.bump();
                        a
                    } else {
                        b
                    }
                };
                let p = match c {
                    b'(' => Punct::LParen,
                    b')' => Punct::RParen,
                    b'{' => Punct::LBrace,
                    b'}' => Punct::RBrace,
                    b'[' => Punct::LBracket,
                    b']' => Punct::RBracket,
                    b',' => Punct::Comma,
                    b';' => Punct::Semi,
                    b':' => Punct::Colon,
                    b'+' => Punct::Plus,
                    b'-' => two(&mut lx, b'>', Punct::Arrow, Punct::Minus),
                    b'*' => Punct::Star,
                    b'/' => Punct::Slash,
                    b'%' => Punct::Percent,
                    b'^' => Punct::Caret,
                    b'~' => Punct::Tilde,
                    b'&' => two(&mut lx, b'&', Punct::AndAnd, Punct::Amp),
                    b'|' => two(&mut lx, b'|', Punct::OrOr, Punct::Pipe),
                    b'!' => two(&mut lx, b'=', Punct::Ne, Punct::Bang),
                    b'=' => two(&mut lx, b'=', Punct::EqEq, Punct::Assign),
                    b'<' => {
                        if lx.peek() == Some(b'<') {
                            lx.bump();
                            Punct::Shl
                        } else {
                            two(&mut lx, b'=', Punct::Le, Punct::Lt)
                        }
                    }
                    b'>' => {
                        if lx.peek() == Some(b'>') {
                            lx.bump();
                            Punct::Shr
                        } else {
                            two(&mut lx, b'=', Punct::Ge, Punct::Gt)
                        }
                    }
                    other => {
                        return Err(CompileError::new(
                            span,
                            format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                Tok::Punct(p)
            }
        };
        out.push(Token { tok, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("0x10"), vec![Tok::Int(16), Tok::Eof]);
        assert_eq!(toks("3.25"), vec![Tok::Float(3.25), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Float(0.25), Tok::Eof]);
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            toks("var x fn while foo_1"),
            vec![
                Tok::Kw(Kw::Var),
                Tok::Ident("x".into()),
                Tok::Kw(Kw::Fn),
                Tok::Kw(Kw::While),
                Tok::Ident("foo_1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("<= >= == != && || << >> ->"),
            vec![
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Ge),
                Tok::Punct(Punct::EqEq),
                Tok::Punct(Punct::Ne),
                Tok::Punct(Punct::AndAnd),
                Tok::Punct(Punct::OrOr),
                Tok::Punct(Punct::Shl),
                Tok::Punct(Punct::Shr),
                Tok::Punct(Punct::Arrow),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(toks("'A'"), vec![Tok::Int(65), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(toks("\"hi\\0\""), vec![Tok::Str(vec![b'h', b'i', 0]), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line\n 2 /* block\n still */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("''").is_err());
        assert!(lex("0x").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn integer_then_method_like_dot_is_not_float() {
        // `1.` without a digit after the dot: the dot is an error character,
        // not part of the number — guards the float lookahead.
        assert!(lex("1.x").is_err());
    }
}
