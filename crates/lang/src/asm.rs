//! Assembly of machine IR into a relocatable object file.
//!
//! Two passes per program: the first sizes every instruction and records
//! label and symbol offsets, the second emits bytes, resolves function-local
//! label displacements, and records relocations (`Rel32` for direct calls,
//! `Abs64` for symbol-address loads) for the linker and the in-enclave
//! loader.

use crate::mir::{MFunction, MInst, MirProgram};
use crate::{CompileError, Span};
use deflection_isa::{encode, encoded_len, Inst};
use deflection_obj::{ObjectFile, RelocKind, Relocation, SectionId, Symbol, SymbolKind};
use std::collections::HashMap;

fn minst_len(inst: &MInst) -> Result<usize, CompileError> {
    Ok(match inst {
        MInst::Real(i) => encoded_len(i),
        MInst::Label(_) => 0,
        MInst::Jmp(_) => 5,
        MInst::Jcc(..) => 5,
        MInst::CallSym(_) => 5,
        MInst::CallReg(_) | MInst::JmpReg(_) => {
            return Err(CompileError::new(
                Span::default(),
                "unlowered indirect branch reached the assembler; run the \
                 producer's lowering pass first",
            ))
        }
        MInst::LoadSymAddr { .. } => 10,
        MInst::Ret => 1,
    })
}

/// Assembles `program` into an object file.
///
/// # Errors
///
/// Fails on unlowered indirect branches, duplicate/undefined labels and
/// `rel32` overflow.
pub fn assemble(program: &MirProgram) -> Result<ObjectFile, CompileError> {
    let mut obj = ObjectFile::new(program.entry.clone());

    // Pass 1: function start offsets and label offsets.
    let mut func_starts: Vec<usize> = Vec::with_capacity(program.functions.len());
    let mut label_offsets: Vec<HashMap<u32, usize>> = Vec::with_capacity(program.functions.len());
    let mut cursor = 0usize;
    for f in &program.functions {
        func_starts.push(cursor);
        let mut labels = HashMap::new();
        for inst in &f.insts {
            if let MInst::Label(l) = inst {
                if labels.insert(l.0, cursor).is_some() {
                    return Err(CompileError::new(
                        Span::default(),
                        format!("duplicate label {} in `{}`", l.0, f.name),
                    ));
                }
            }
            cursor += minst_len(inst)?;
        }
        label_offsets.push(labels);
    }

    // Pass 2: emit.
    for (idx, f) in program.functions.iter().enumerate() {
        obj.symbols.push(Symbol {
            name: f.name.clone(),
            section: SectionId::Text,
            offset: func_starts[idx] as u64,
            kind: SymbolKind::Func,
        });
        emit_function(f, &label_offsets[idx], &mut obj)?;
    }

    // Data and bss.
    for d in &program.data {
        match &d.init {
            Some(bytes) => {
                assert_eq!(bytes.len() as u64, d.size, "initializer size mismatch");
                let pad = (8 - obj.data.len() % 8) % 8;
                obj.data.resize(obj.data.len() + pad, 0);
                let offset = obj.data.len() as u64;
                obj.data.extend_from_slice(bytes);
                obj.symbols.push(Symbol {
                    name: d.name.clone(),
                    section: SectionId::Data,
                    offset,
                    kind: SymbolKind::Object,
                });
            }
            None => {
                let offset = (obj.bss_size + 7) & !7;
                obj.bss_size = offset + d.size;
                obj.symbols.push(Symbol {
                    name: d.name.clone(),
                    section: SectionId::Bss,
                    offset,
                    kind: SymbolKind::Object,
                });
            }
        }
    }

    obj.indirect_branch_table = program.indirect_targets.clone();
    Ok(obj)
}

fn emit_function(
    f: &MFunction,
    labels: &HashMap<u32, usize>,
    obj: &mut ObjectFile,
) -> Result<(), CompileError> {
    for inst in &f.insts {
        let here = obj.text.len();
        match inst {
            MInst::Real(i) => encode(i, &mut obj.text),
            MInst::Label(_) => {}
            MInst::Jmp(l) => {
                let target = *labels.get(&l.0).ok_or_else(|| {
                    CompileError::new(Span::default(), format!("undefined label in `{}`", f.name))
                })?;
                let rel = rel32(target, here + 5, &f.name)?;
                encode(&Inst::Jmp { rel }, &mut obj.text);
            }
            MInst::Jcc(cc, l) => {
                let target = *labels.get(&l.0).ok_or_else(|| {
                    CompileError::new(Span::default(), format!("undefined label in `{}`", f.name))
                })?;
                let rel = rel32(target, here + 5, &f.name)?;
                encode(&Inst::Jcc { cc: *cc, rel }, &mut obj.text);
            }
            MInst::CallSym(sym) => {
                encode(&Inst::Call { rel: 0 }, &mut obj.text);
                obj.relocations.push(Relocation {
                    section: SectionId::Text,
                    offset: (here + 1) as u64,
                    symbol: sym.clone(),
                    kind: RelocKind::Rel32,
                    addend: 0,
                });
            }
            MInst::CallReg(_) | MInst::JmpReg(_) => {
                return Err(CompileError::new(
                    Span::default(),
                    "unlowered indirect branch reached the assembler",
                ))
            }
            MInst::LoadSymAddr { dst, symbol, addend } => {
                encode(&Inst::MovRI { dst: *dst, imm: 0 }, &mut obj.text);
                obj.relocations.push(Relocation {
                    section: SectionId::Text,
                    offset: (here + 2) as u64,
                    symbol: symbol.clone(),
                    kind: RelocKind::Abs64,
                    addend: *addend,
                });
            }
            MInst::Ret => encode(&Inst::Ret, &mut obj.text),
        }
        debug_assert_eq!(obj.text.len() - here, minst_len(inst).expect("sized in pass 1"));
    }
    Ok(())
}

fn rel32(target: usize, from_end: usize, func: &str) -> Result<i32, CompileError> {
    let rel = target as i64 - from_end as i64;
    i32::try_from(rel).map_err(|_| {
        CompileError::new(Span::default(), format!("branch out of rel32 range in `{func}`"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{DataDef, Label, MirProgram};
    use deflection_isa::CondCode;
    use deflection_isa::Reg;

    fn one_func_program(f: MFunction) -> MirProgram {
        MirProgram {
            entry: f.name.clone(),
            functions: vec![f],
            data: vec![],
            indirect_targets: vec![],
        }
    }

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut f = MFunction::new("main");
        let top = f.new_label();
        let out = f.new_label();
        f.push(MInst::Label(top));
        f.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
        f.push(MInst::Jcc(CondCode::E, out));
        f.real(Inst::AluRI { op: deflection_isa::AluOp::Sub, dst: Reg::RAX, imm: 1 });
        f.push(MInst::Jmp(top));
        f.push(MInst::Label(out));
        f.real(Inst::Halt);
        let obj = assemble(&one_func_program(f)).unwrap();
        // Verify by recursive-descent disassembly: everything must decode.
        let d = deflection_isa::disassemble(&obj.text, 0, &[]).unwrap();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn call_emits_rel32_reloc() {
        let mut f = MFunction::new("main");
        f.push(MInst::CallSym("callee".into()));
        f.real(Inst::Halt);
        let mut callee = MFunction::new("callee");
        callee.push(MInst::Ret);
        let p = MirProgram {
            entry: "main".into(),
            functions: vec![f, callee],
            data: vec![],
            indirect_targets: vec![],
        };
        let obj = assemble(&p).unwrap();
        assert_eq!(obj.relocations.len(), 1);
        assert_eq!(obj.relocations[0].kind, RelocKind::Rel32);
        assert_eq!(obj.relocations[0].offset, 1);
        assert_eq!(obj.symbol("callee").unwrap().offset, 6);
    }

    #[test]
    fn loadsymaddr_emits_abs64_reloc() {
        let mut f = MFunction::new("main");
        f.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "g".into(), addend: 8 });
        f.real(Inst::Halt);
        let mut p = one_func_program(f);
        p.data.push(DataDef { name: "g".into(), size: 16, init: None });
        let obj = assemble(&p).unwrap();
        let r = &obj.relocations[0];
        assert_eq!(r.kind, RelocKind::Abs64);
        assert_eq!(r.offset, 2);
        assert_eq!(r.addend, 8);
        assert_eq!(obj.symbol("g").unwrap().section, SectionId::Bss);
    }

    #[test]
    fn data_defs_lay_out_aligned() {
        let mut f = MFunction::new("main");
        f.real(Inst::Halt);
        let mut p = one_func_program(f);
        p.data.push(DataDef { name: "a".into(), size: 3, init: Some(vec![1, 2, 3]) });
        p.data.push(DataDef { name: "b".into(), size: 8, init: Some(vec![9; 8]) });
        p.data.push(DataDef { name: "z1".into(), size: 4, init: None });
        p.data.push(DataDef { name: "z2".into(), size: 8, init: None });
        let obj = assemble(&p).unwrap();
        assert_eq!(obj.symbol("a").unwrap().offset, 0);
        assert_eq!(obj.symbol("b").unwrap().offset, 8);
        assert_eq!(obj.symbol("z1").unwrap().offset, 0);
        assert_eq!(obj.symbol("z2").unwrap().offset, 8);
        assert_eq!(obj.bss_size, 16);
    }

    #[test]
    fn unlowered_callreg_rejected() {
        let mut f = MFunction::new("main");
        f.push(MInst::CallReg(Reg::R10));
        let err = assemble(&one_func_program(f)).unwrap_err();
        assert!(err.message.contains("unlowered"));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut f = MFunction::new("main");
        f.push(MInst::Jmp(Label(7)));
        assert!(assemble(&one_func_program(f)).is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut f = MFunction::new("main");
        let l = f.new_label();
        f.push(MInst::Label(l));
        f.push(MInst::Label(l));
        assert!(assemble(&one_func_program(f)).is_err());
    }
}
