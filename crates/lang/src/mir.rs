//! Machine IR: the almost-assembled form the instrumentation passes of
//! `deflection-core` operate on.
//!
//! This layer corresponds to the paper's LLVM machine level (Fig. 4), where
//! the security annotations are inserted: instructions are concrete
//! `deflection-isa` instructions, but control flow still uses symbolic
//! labels, cross-function references are symbolic, and indirect calls are
//! the abstract [`MInst::CallReg`] (the register holds a *branch-table
//! index*) that the producer lowers — with or without CFI checks depending
//! on the policy switches.

use deflection_isa::{CondCode, Inst, Reg};

/// A function-local label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// One machine-IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MInst {
    /// A concrete instruction with no symbolic operand. Never a relative
    /// branch (those use [`MInst::Jmp`]/[`MInst::Jcc`]).
    Real(Inst),
    /// Label definition.
    Label(Label),
    /// Unconditional jump to a label.
    Jmp(Label),
    /// Conditional jump to a label.
    Jcc(CondCode, Label),
    /// Direct call to a named function (assembled as `call rel32` with a
    /// link-time relocation).
    CallSym(String),
    /// Indirect call: `reg` holds a *branch-table index*. Must be lowered by
    /// the producer before assembly.
    CallReg(Reg),
    /// Indirect jump: `reg` holds a *branch-table index*. Must be lowered by
    /// the producer before assembly.
    JmpReg(Reg),
    /// Load the absolute address of `symbol + addend` (assembled as a
    /// 64-bit move with an `Abs64` relocation the in-enclave loader
    /// resolves).
    LoadSymAddr {
        /// Destination register.
        dst: Reg,
        /// Symbol name.
        symbol: String,
        /// Constant offset.
        addend: i64,
    },
    /// Function return (wrapped by the shadow-stack epilogue under P5).
    Ret,
}

/// A function in machine IR.
#[derive(Debug, Clone, PartialEq)]
pub struct MFunction {
    /// Symbol name.
    pub name: String,
    /// Instruction sequence.
    pub insts: Vec<MInst>,
    next_label: u32,
}

impl MFunction {
    /// Creates an empty function.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        MFunction { name: name.into(), insts: Vec::new(), next_label: 0 }
    }

    /// Allocates a fresh label unique within this function.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// The current label high-water mark (all allocated labels are below it).
    #[must_use]
    pub fn label_watermark(&self) -> u32 {
        self.next_label
    }

    /// Raises the label counter so future labels do not collide with labels
    /// copied from another function (used by the instrumentation passes when
    /// rebuilding a function).
    pub fn reserve_labels(&mut self, watermark: u32) {
        self.next_label = self.next_label.max(watermark);
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: MInst) {
        self.insts.push(inst);
    }

    /// Appends a concrete instruction.
    pub fn real(&mut self, inst: Inst) {
        self.insts.push(MInst::Real(inst));
    }
}

/// A data definition (global variable image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDef {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial bytes (`None` → zero-initialized `.bss`).
    pub init: Option<Vec<u8>>,
}

/// A whole program in machine IR.
#[derive(Debug, Clone, PartialEq)]
pub struct MirProgram {
    /// Functions, entry glue first.
    pub functions: Vec<MFunction>,
    /// Data definitions.
    pub data: Vec<DataDef>,
    /// Entry symbol (`__start`).
    pub entry: String,
    /// Legitimate indirect-branch targets in table order — the proof list.
    pub indirect_targets: Vec<String>,
}

impl MirProgram {
    /// Total number of machine-IR instructions (a cheap size metric used by
    /// the benches).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_per_function() {
        let mut f = MFunction::new("f");
        let a = f.new_label();
        let b = f.new_label();
        assert_ne!(a, b);
    }

    #[test]
    fn push_and_count() {
        let mut f = MFunction::new("f");
        f.real(Inst::Nop);
        f.push(MInst::Ret);
        let p = MirProgram {
            functions: vec![f],
            data: vec![],
            entry: "f".into(),
            indirect_targets: vec![],
        };
        assert_eq!(p.inst_count(), 2);
    }
}
