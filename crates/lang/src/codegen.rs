//! Code generation: typed HIR → machine IR.
//!
//! A deliberately simple one-pass, accumulator-style code generator:
//! expression results land in `rax`, `rbx`/`rcx` are scratch, values live in
//! `rbp`-relative frame slots, and arguments travel in
//! `rdi/rsi/rdx/rcx/r8/r9`. The point of this crate is not optimization —
//! it is producing realistic instruction mixes (loads, SIB stores, calls,
//! indirect calls, float ops) for the instrumentation passes to annotate.

use crate::ast::{BinOp, UnOp};
use crate::hir::{Builtin, Expr, ExprKind, Function, PlaceBase, Program, Stmt, Type};
use crate::mir::{DataDef, Label, MFunction, MInst, MirProgram};
use deflection_isa::{AluOp, CondCode, Inst, MemOperand, Reg};

/// Argument registers in order.
pub const ARG_REGS: [Reg; 6] = [Reg::RDI, Reg::RSI, Reg::RDX, Reg::RCX, Reg::R8, Reg::R9];

/// Name of the I/O control block symbol (input base/len, output base/cap —
/// filled in by the bootstrap runtime before the program runs).
pub const IO_SYMBOL: &str = "__io";
/// Offset of the input-buffer base pointer in the I/O block.
pub const IO_INPUT_BASE: i64 = 0;
/// Offset of the input length in the I/O block.
pub const IO_INPUT_LEN: i64 = 8;
/// Offset of the output-buffer base pointer in the I/O block.
pub const IO_OUTPUT_BASE: i64 = 16;
/// Offset of the output-buffer capacity in the I/O block.
pub const IO_OUTPUT_CAP: i64 = 24;
/// Size of the I/O block in bytes.
pub const IO_SIZE: u64 = 32;

/// Lowers a checked program to machine IR, adding the `__start` entry glue
/// and the `__io` control block.
#[must_use]
pub fn lower(program: &Program) -> MirProgram {
    let mut functions = Vec::with_capacity(program.functions.len() + 1);

    let mut start = MFunction::new("__start");
    start.push(MInst::CallSym("main".into()));
    start.real(Inst::Halt);
    functions.push(start);

    for f in &program.functions {
        functions.push(lower_function(f));
    }

    let mut data: Vec<DataDef> =
        vec![DataDef { name: IO_SYMBOL.into(), size: IO_SIZE, init: None }];
    for g in &program.globals {
        data.push(DataDef { name: g.name.clone(), size: g.ty.size(), init: g.init.clone() });
    }

    MirProgram {
        functions,
        data,
        entry: "__start".into(),
        indirect_targets: program.address_taken.clone(),
    }
}

struct FnGen<'a> {
    hir: &'a Function,
    out: MFunction,
    epilogue: Label,
    loops: Vec<(Label, Label)>, // (continue target, break target)
}

fn lower_function(f: &Function) -> MFunction {
    let mut out = MFunction::new(f.name.clone());
    let epilogue = out.new_label();
    let mut g = FnGen { hir: f, out, epilogue, loops: Vec::new() };

    // Prologue: establish the frame.
    g.out.real(Inst::Push { reg: Reg::RBP });
    g.out.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    if f.frame_size > 0 {
        g.out.real(Inst::AluRI { op: AluOp::Sub, dst: Reg::RSP, imm: f.frame_size as i64 });
    }
    // Spill parameters to their slots.
    #[allow(clippy::needless_range_loop)]
    for i in 0..f.param_count {
        let off = f.slots[i].offset;
        g.out.real(Inst::Store { mem: slot_mem(off), src: ARG_REGS[i] });
    }

    for stmt in &f.body {
        g.stmt(stmt);
    }

    // Fall-off-the-end return value is 0.
    if f.ret.is_some() {
        g.out.real(Inst::MovRI { dst: Reg::RAX, imm: 0 });
    }
    g.out.push(MInst::Label(epilogue));
    g.out.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    g.out.real(Inst::Pop { reg: Reg::RBP });
    g.out.push(MInst::Ret);
    g.out
}

fn slot_mem(offset: u64) -> MemOperand {
    MemOperand::base_disp(Reg::RBP, -(offset as i64) as i32)
}

fn elem_scale(elem: &Type) -> u8 {
    if *elem == Type::Byte {
        1
    } else {
        8
    }
}

impl FnGen<'_> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::AssignLocal { slot, value } => {
                self.expr(value);
                let off = self.hir.slots[*slot].offset;
                self.out.real(Inst::Store { mem: slot_mem(off), src: Reg::RAX });
            }
            Stmt::AssignGlobal { name, value } => {
                self.expr(value);
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: name.clone(),
                    addend: 0,
                });
                self.out
                    .real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
            }
            Stmt::AssignIndex { base, elem, index, value } => {
                self.expr(index);
                self.out.real(Inst::Push { reg: Reg::RAX });
                self.expr(value);
                self.out.real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }); // value
                self.out.real(Inst::Pop { reg: Reg::RAX }); // index
                self.place_base_into(base, Reg::RCX);
                let mem = MemOperand::base_index(Reg::RCX, Reg::RAX, elem_scale(elem), 0);
                if *elem == Type::Byte {
                    self.out.real(Inst::Store8 { mem, src: Reg::RBX });
                } else {
                    self.out.real(Inst::Store { mem, src: Reg::RBX });
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let else_l = self.out.new_label();
                let end_l = self.out.new_label();
                self.expr(cond);
                self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                self.out.push(MInst::Jcc(CondCode::E, else_l));
                for s in then_body {
                    self.stmt(s);
                }
                self.out.push(MInst::Jmp(end_l));
                self.out.push(MInst::Label(else_l));
                for s in else_body {
                    self.stmt(s);
                }
                self.out.push(MInst::Label(end_l));
            }
            Stmt::While { cond, body } => {
                let head = self.out.new_label();
                let end = self.out.new_label();
                self.out.push(MInst::Label(head));
                self.expr(cond);
                self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                self.out.push(MInst::Jcc(CondCode::E, end));
                self.loops.push((head, end));
                for s in body {
                    self.stmt(s);
                }
                self.loops.pop();
                self.out.push(MInst::Jmp(head));
                self.out.push(MInst::Label(end));
            }
            Stmt::Return { value } => {
                if let Some(v) = value {
                    self.expr(v);
                }
                self.out.push(MInst::Jmp(self.epilogue));
            }
            Stmt::Break => {
                let (_, end) = *self.loops.last().expect("sema checked loop depth");
                self.out.push(MInst::Jmp(end));
            }
            Stmt::Continue => {
                let (head, _) = *self.loops.last().expect("sema checked loop depth");
                self.out.push(MInst::Jmp(head));
            }
            Stmt::Expr(e) => self.expr(e),
        }
    }

    /// Materializes the base address of `place` into `dst`.
    fn place_base_into(&mut self, place: &PlaceBase, dst: Reg) {
        match place {
            PlaceBase::Global(name) => {
                self.out.push(MInst::LoadSymAddr { dst, symbol: name.clone(), addend: 0 });
            }
            PlaceBase::LocalArray(slot) => {
                let off = self.hir.slots[*slot].offset;
                self.out.real(Inst::Lea { dst, mem: slot_mem(off) });
            }
            PlaceBase::Slice(slot) => {
                let off = self.hir.slots[*slot].offset;
                self.out.real(Inst::Load { dst, mem: slot_mem(off) });
            }
        }
    }

    /// Evaluates `e` into `rax`.
    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => self.out.real(Inst::MovRI { dst: Reg::RAX, imm: *v as u64 }),
            ExprKind::Float(v) => self.out.real(Inst::MovRI { dst: Reg::RAX, imm: v.to_bits() }),
            ExprKind::ReadLocal(slot) => {
                let off = self.hir.slots[*slot].offset;
                self.out.real(Inst::Load { dst: Reg::RAX, mem: slot_mem(off) });
            }
            ExprKind::ReadGlobal(name) => {
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: name.clone(),
                    addend: 0,
                });
                self.out
                    .real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBX, 0) });
            }
            ExprKind::Index { base, elem, index } => {
                self.expr(index);
                self.place_base_into(base, Reg::RBX);
                let mem = MemOperand::base_index(Reg::RBX, Reg::RAX, elem_scale(elem), 0);
                if *elem == Type::Byte {
                    self.out.real(Inst::Load8 { dst: Reg::RAX, mem });
                } else {
                    self.out.real(Inst::Load { dst: Reg::RAX, mem });
                }
            }
            ExprKind::ArrayAddr(place) => self.place_base_into(place, Reg::RAX),
            ExprKind::FuncRef { table_index, .. } => {
                self.out.real(Inst::MovRI { dst: Reg::RAX, imm: *table_index as u64 });
            }
            ExprKind::CallDirect { name, args } => {
                self.emit_args(args);
                self.out.push(MInst::CallSym(name.clone()));
            }
            ExprKind::CallIndirect { target, args } => {
                self.expr(target);
                self.out.real(Inst::Push { reg: Reg::RAX });
                self.emit_args_keeping_stack(args, 1);
                self.pop_args(args.len());
                self.out.real(Inst::Pop { reg: Reg::R10 });
                self.out.push(MInst::CallReg(Reg::R10));
            }
            ExprKind::CallBuiltin { builtin, args } => self.builtin(*builtin, args),
            ExprKind::Binary { op, float_op, lhs, rhs } => {
                self.expr(lhs);
                match op {
                    BinOp::LogicalAnd => {
                        let false_l = self.out.new_label();
                        let end_l = self.out.new_label();
                        self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                        self.out.push(MInst::Jcc(CondCode::E, false_l));
                        self.expr(rhs);
                        self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                        self.out.real(Inst::SetCc { cc: CondCode::Ne, dst: Reg::RAX });
                        self.out.push(MInst::Jmp(end_l));
                        self.out.push(MInst::Label(false_l));
                        self.out.real(Inst::MovRI { dst: Reg::RAX, imm: 0 });
                        self.out.push(MInst::Label(end_l));
                        return;
                    }
                    BinOp::LogicalOr => {
                        let true_l = self.out.new_label();
                        let end_l = self.out.new_label();
                        self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                        self.out.push(MInst::Jcc(CondCode::Ne, true_l));
                        self.expr(rhs);
                        self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                        self.out.real(Inst::SetCc { cc: CondCode::Ne, dst: Reg::RAX });
                        self.out.push(MInst::Jmp(end_l));
                        self.out.push(MInst::Label(true_l));
                        self.out.real(Inst::MovRI { dst: Reg::RAX, imm: 1 });
                        self.out.push(MInst::Label(end_l));
                        return;
                    }
                    _ => {}
                }
                self.out.real(Inst::Push { reg: Reg::RAX });
                self.expr(rhs);
                self.out.real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX });
                self.out.real(Inst::Pop { reg: Reg::RAX });
                if *float_op {
                    self.float_binary(*op);
                } else {
                    self.int_binary(*op);
                }
            }
            ExprKind::Unary { op, float_op, operand } => {
                self.expr(operand);
                match (op, float_op) {
                    (UnOp::Neg, false) => self.out.real(Inst::Neg { reg: Reg::RAX }),
                    (UnOp::Neg, true) => self.out.real(Inst::FNeg { dst: Reg::RAX, src: Reg::RAX }),
                    (UnOp::Not, _) => {
                        self.out.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
                        self.out.real(Inst::SetCc { cc: CondCode::E, dst: Reg::RAX });
                    }
                    (UnOp::BitNot, _) => self.out.real(Inst::Not { reg: Reg::RAX }),
                }
            }
        }
    }

    /// Evaluates `args` left-to-right pushing each, then pops into the
    /// argument registers.
    fn emit_args(&mut self, args: &[Expr]) {
        self.emit_args_keeping_stack(args, 0);
        self.pop_args(args.len());
    }

    fn emit_args_keeping_stack(&mut self, args: &[Expr], _below: usize) {
        for a in args {
            self.expr(a);
            self.out.real(Inst::Push { reg: Reg::RAX });
        }
    }

    fn pop_args(&mut self, count: usize) {
        for i in (0..count).rev() {
            self.out.real(Inst::Pop { reg: ARG_REGS[i] });
        }
    }

    fn int_binary(&mut self, op: BinOp) {
        let alu = match op {
            BinOp::Add => Some(AluOp::Add),
            BinOp::Sub => Some(AluOp::Sub),
            BinOp::Mul => Some(AluOp::Mul),
            BinOp::Div => Some(AluOp::SDiv),
            BinOp::Rem => Some(AluOp::SRem),
            BinOp::And => Some(AluOp::And),
            BinOp::Or => Some(AluOp::Or),
            BinOp::Xor => Some(AluOp::Xor),
            BinOp::Shl => Some(AluOp::Shl),
            BinOp::Shr => Some(AluOp::Sar),
            _ => None,
        };
        if let Some(alu) = alu {
            self.out.real(Inst::AluRR { op: alu, dst: Reg::RAX, src: Reg::RBX });
            return;
        }
        let cc = match op {
            BinOp::Lt => CondCode::L,
            BinOp::Le => CondCode::Le,
            BinOp::Gt => CondCode::G,
            BinOp::Ge => CondCode::Ge,
            BinOp::Eq => CondCode::E,
            BinOp::Ne => CondCode::Ne,
            _ => unreachable!("logical ops handled earlier"),
        };
        self.out.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
        self.out.real(Inst::SetCc { cc, dst: Reg::RAX });
    }

    fn float_binary(&mut self, op: BinOp) {
        use deflection_isa::FpuOp;
        let fpu = match op {
            BinOp::Add => Some(FpuOp::FAdd),
            BinOp::Sub => Some(FpuOp::FSub),
            BinOp::Mul => Some(FpuOp::FMul),
            BinOp::Div => Some(FpuOp::FDiv),
            _ => None,
        };
        if let Some(fpu) = fpu {
            self.out.real(Inst::FpuRR { op: fpu, dst: Reg::RAX, src: Reg::RBX });
            return;
        }
        // Float comparisons use the unsigned-style condition codes FCmp sets.
        let cc = match op {
            BinOp::Lt => CondCode::B,
            BinOp::Le => CondCode::Be,
            BinOp::Gt => CondCode::A,
            BinOp::Ge => CondCode::Ae,
            BinOp::Eq => CondCode::E,
            BinOp::Ne => CondCode::Ne,
            _ => unreachable!("logical ops handled earlier"),
        };
        self.out.real(Inst::FCmp { lhs: Reg::RAX, rhs: Reg::RBX });
        self.out.real(Inst::SetCc { cc, dst: Reg::RAX });
    }

    fn builtin(&mut self, b: Builtin, args: &[Expr]) {
        match b {
            Builtin::InputLen => {
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RAX,
                    mem: MemOperand::base_disp(Reg::RBX, IO_INPUT_LEN as i32),
                });
            }
            Builtin::InputByte => {
                self.expr(&args[0]);
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RBX,
                    mem: MemOperand::base_disp(Reg::RBX, IO_INPUT_BASE as i32),
                });
                self.out.real(Inst::Load8 {
                    dst: Reg::RAX,
                    mem: MemOperand::base_index(Reg::RBX, Reg::RAX, 1, 0),
                });
            }
            Builtin::OutputByte => {
                self.expr(&args[0]);
                self.out.real(Inst::Push { reg: Reg::RAX });
                self.expr(&args[1]);
                self.out.real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }); // value
                self.out.real(Inst::Pop { reg: Reg::RAX }); // index
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RCX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RCX,
                    mem: MemOperand::base_disp(Reg::RCX, IO_OUTPUT_BASE as i32),
                });
                self.out.real(Inst::Store8 {
                    mem: MemOperand::base_index(Reg::RCX, Reg::RAX, 1, 0),
                    src: Reg::RBX,
                });
            }
            Builtin::InputWord => {
                self.expr(&args[0]);
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RBX,
                    mem: MemOperand::base_disp(Reg::RBX, IO_INPUT_BASE as i32),
                });
                self.out.real(Inst::Load {
                    dst: Reg::RAX,
                    mem: MemOperand::base_index(Reg::RBX, Reg::RAX, 8, 0),
                });
            }
            Builtin::OutputWord => {
                self.expr(&args[0]);
                self.out.real(Inst::Push { reg: Reg::RAX });
                self.expr(&args[1]);
                self.out.real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }); // value
                self.out.real(Inst::Pop { reg: Reg::RAX }); // word index
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RCX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RCX,
                    mem: MemOperand::base_disp(Reg::RCX, IO_OUTPUT_BASE as i32),
                });
                self.out.real(Inst::Store {
                    mem: MemOperand::base_index(Reg::RCX, Reg::RAX, 8, 0),
                    src: Reg::RBX,
                });
            }
            Builtin::Send => {
                self.expr(&args[0]);
                self.out.real(Inst::MovRR { dst: Reg::RSI, src: Reg::RAX });
                self.out.push(MInst::LoadSymAddr {
                    dst: Reg::RBX,
                    symbol: IO_SYMBOL.into(),
                    addend: 0,
                });
                self.out.real(Inst::Load {
                    dst: Reg::RDI,
                    mem: MemOperand::base_disp(Reg::RBX, IO_OUTPUT_BASE as i32),
                });
                self.out.real(Inst::Ocall { code: deflection_isa::OcallCode::Send as u8 });
            }
            Builtin::Recv => {
                self.out.real(Inst::Ocall { code: deflection_isa::OcallCode::Recv as u8 });
            }
            Builtin::Log => {
                self.expr(&args[0]);
                self.out.real(Inst::MovRR { dst: Reg::RDI, src: Reg::RAX });
                self.out.real(Inst::Ocall { code: deflection_isa::OcallCode::Log as u8 });
            }
            Builtin::Clock => {
                self.out.real(Inst::Ocall { code: deflection_isa::OcallCode::Clock as u8 });
            }
            Builtin::Itof => {
                self.expr(&args[0]);
                self.out.real(Inst::CvtIF { dst: Reg::RAX, src: Reg::RAX });
            }
            Builtin::Ftoi => {
                self.expr(&args[0]);
                self.out.real(Inst::CvtFI { dst: Reg::RAX, src: Reg::RAX });
            }
            Builtin::Fsqrt => {
                self.expr(&args[0]);
                self.out.real(Inst::FSqrt { dst: Reg::RAX, src: Reg::RAX });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer::lex, parser::parse, sema::check};

    fn lower_src(src: &str) -> MirProgram {
        lower(&check(&parse(lex(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn start_glue_and_io_block_present() {
        let p = lower_src("fn main() -> int { return 0; }");
        assert_eq!(p.entry, "__start");
        assert_eq!(p.functions[0].name, "__start");
        assert!(matches!(p.functions[0].insts[0], MInst::CallSym(ref n) if n == "main"));
        assert!(matches!(p.functions[0].insts[1], MInst::Real(Inst::Halt)));
        assert_eq!(p.data[0].name, IO_SYMBOL);
        assert_eq!(p.data[0].size, IO_SIZE);
    }

    #[test]
    fn prologue_spills_params() {
        let p = lower_src(
            "fn f(a: int, b: int) -> int { return a; } fn main() -> int { return f(1,2); }",
        );
        let f = &p.functions[1];
        assert_eq!(f.name, "f");
        // push rbp; mov rbp, rsp; sub rsp, 16; store a; store b
        assert!(matches!(f.insts[0], MInst::Real(Inst::Push { reg: Reg::RBP })));
        assert!(matches!(
            f.insts[2],
            MInst::Real(Inst::AluRI { op: AluOp::Sub, dst: Reg::RSP, imm: 16 })
        ));
        assert!(matches!(f.insts[3], MInst::Real(Inst::Store { src: Reg::RDI, .. })));
        assert!(matches!(f.insts[4], MInst::Real(Inst::Store { src: Reg::RSI, .. })));
    }

    #[test]
    fn indirect_call_uses_callreg() {
        let p = lower_src("fn h() {} fn main() -> int { var f: fn() = &h; f(); return 0; }");
        let main = p.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(main.insts.iter().any(|i| matches!(i, MInst::CallReg(Reg::R10))));
        assert_eq!(p.indirect_targets, vec!["h".to_string()]);
    }

    #[test]
    fn stores_generated_for_assignments() {
        let p = lower_src("var g: [int; 4]; fn main() -> int { g[1] = 5; return 0; }");
        let main = p.functions.iter().find(|f| f.name == "main").unwrap();
        let stores = main
            .insts
            .iter()
            .filter(|i| matches!(i, MInst::Real(inst) if inst.stored_mem().is_some()))
            .count();
        assert!(stores >= 1);
    }

    #[test]
    fn byte_element_uses_store8() {
        let p = lower_src("var b: [byte; 4]; fn main() -> int { b[0] = 65; return b[0]; }");
        let main = p.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(main.insts.iter().any(|i| matches!(i, MInst::Real(Inst::Store8 { .. }))));
        assert!(main.insts.iter().any(|i| matches!(i, MInst::Real(Inst::Load8 { .. }))));
    }

    #[test]
    fn builtins_emit_ocalls() {
        let p = lower_src("fn main() -> int { log(1); return send(0); }");
        let main = p.functions.iter().find(|f| f.name == "main").unwrap();
        let ocalls: Vec<u8> = main
            .insts
            .iter()
            .filter_map(|i| match i {
                MInst::Real(Inst::Ocall { code }) => Some(*code),
                _ => None,
            })
            .collect();
        assert_eq!(ocalls, vec![2, 0]);
    }

    #[test]
    fn zero_globals_are_bss() {
        let p = lower_src("var z: [int; 10]; fn main() -> int { return 0; }");
        let z = p.data.iter().find(|d| d.name == "z").unwrap();
        assert_eq!(z.size, 80);
        assert!(z.init.is_none());
    }
}
