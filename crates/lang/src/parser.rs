//! Recursive-descent parser for DCL.

use crate::ast::*;
use crate::lexer::{Kw, Punct, Tok, Token};
use crate::{CompileError, Span};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.span(), msg)
    }

    fn expect_punct(&mut self, p: Punct, what: &str) -> Result<(), CompileError> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ty(&mut self) -> Result<TypeExpr, CompileError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Int) => {
                self.bump();
                Ok(TypeExpr::Int)
            }
            Tok::Kw(Kw::Float) => {
                self.bump();
                Ok(TypeExpr::Float)
            }
            Tok::Kw(Kw::Byte) => {
                self.bump();
                Ok(TypeExpr::Byte)
            }
            Tok::Punct(Punct::LBracket) => {
                self.bump();
                let elem = self.ty()?;
                if self.eat_punct(Punct::Semi) {
                    let n = match self.bump() {
                        Tok::Int(n) if n > 0 => n as u64,
                        _ => return Err(self.err("expected positive array length")),
                    };
                    self.expect_punct(Punct::RBracket, "`]`")?;
                    Ok(TypeExpr::Array(Box::new(elem), n))
                } else {
                    self.expect_punct(Punct::RBracket, "`]`")?;
                    Ok(TypeExpr::Slice(Box::new(elem)))
                }
            }
            Tok::Kw(Kw::Fn) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let mut params = Vec::new();
                if !self.eat_punct(Punct::RParen) {
                    loop {
                        params.push(self.ty()?);
                        if self.eat_punct(Punct::RParen) {
                            break;
                        }
                        self.expect_punct(Punct::Comma, "`,`")?;
                    }
                }
                let ret =
                    if self.eat_punct(Punct::Arrow) { Some(Box::new(self.ty()?)) } else { None };
                Ok(TypeExpr::FnPtr(params, ret))
            }
            other => Err(self.err(format!("expected type, found {other:?}"))),
        }
    }

    fn initializer(&mut self) -> Result<Initializer, CompileError> {
        match self.peek().clone() {
            Tok::Str(bytes) => {
                self.bump();
                Ok(Initializer::Str(bytes))
            }
            Tok::Punct(Punct::LBrace) => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat_punct(Punct::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_punct(Punct::RBrace) {
                            break;
                        }
                        self.expect_punct(Punct::Comma, "`,`")?;
                    }
                }
                Ok(Initializer::List(items))
            }
            _ => Ok(Initializer::Scalar(self.expr()?)),
        }
    }

    fn global(&mut self) -> Result<GlobalDecl, CompileError> {
        let span = self.span();
        self.bump(); // `var`
        let name = self.expect_ident("global name")?;
        self.expect_punct(Punct::Colon, "`:`")?;
        let ty = self.ty()?;
        let init = if self.eat_punct(Punct::Assign) { Some(self.initializer()?) } else { None };
        self.expect_punct(Punct::Semi, "`;`")?;
        Ok(GlobalDecl { name, ty, init, span })
    }

    fn function(&mut self) -> Result<FunctionDecl, CompileError> {
        let span = self.span();
        self.bump(); // `fn`
        let name = self.expect_ident("function name")?;
        self.expect_punct(Punct::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let pname = self.expect_ident("parameter name")?;
                self.expect_punct(Punct::Colon, "`:`")?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma, "`,`")?;
            }
        }
        let ret = if self.eat_punct(Punct::Arrow) { Some(self.ty()?) } else { None };
        let body = self.block()?;
        Ok(FunctionDecl { name, params, ret, body, span })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct(Punct::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Kw(Kw::Var) => {
                self.bump();
                let name = self.expect_ident("variable name")?;
                self.expect_punct(Punct::Colon, "`:`")?;
                let ty = self.ty()?;
                let init = if self.eat_punct(Punct::Assign) { Some(self.expr()?) } else { None };
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Var { name, ty, init, span })
            }
            Tok::Kw(Kw::If) => self.if_stmt(),
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value =
                    if self.peek() == &Tok::Punct(Punct::Semi) { None } else { Some(self.expr()?) };
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Return { value, span })
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Break { span })
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Continue { span })
            }
            _ => {
                let e = self.expr()?;
                if self.eat_punct(Punct::Assign) {
                    let value = self.expr()?;
                    self.expect_punct(Punct::Semi, "`;`")?;
                    Ok(Stmt::Assign { target: e, value, span })
                } else {
                    self.expect_punct(Punct::Semi, "`;`")?;
                    Ok(Stmt::Expr { expr: e, span })
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.bump(); // `if`
        self.expect_punct(Punct::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen, "`)`")?;
        let then_body = self.block()?;
        let else_body = if self.peek() == &Tok::Kw(Kw::Else) {
            self.bump();
            if self.peek() == &Tok::Kw(Kw::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, span })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct(Punct::OrOr) => (BinOp::LogicalOr, 1),
                Tok::Punct(Punct::AndAnd) => (BinOp::LogicalAnd, 2),
                Tok::Punct(Punct::Pipe) => (BinOp::Or, 3),
                Tok::Punct(Punct::Caret) => (BinOp::Xor, 4),
                Tok::Punct(Punct::Amp) => (BinOp::And, 5),
                Tok::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                Tok::Punct(Punct::Ne) => (BinOp::Ne, 6),
                Tok::Punct(Punct::Lt) => (BinOp::Lt, 7),
                Tok::Punct(Punct::Le) => (BinOp::Le, 7),
                Tok::Punct(Punct::Gt) => (BinOp::Gt, 7),
                Tok::Punct(Punct::Ge) => (BinOp::Ge, 7),
                Tok::Punct(Punct::Shl) => (BinOp::Shl, 8),
                Tok::Punct(Punct::Shr) => (BinOp::Shr, 8),
                Tok::Punct(Punct::Plus) => (BinOp::Add, 9),
                Tok::Punct(Punct::Minus) => (BinOp::Sub, 9),
                Tok::Punct(Punct::Star) => (BinOp::Mul, 10),
                Tok::Punct(Punct::Slash) => (BinOp::Div, 10),
                Tok::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek() {
            Tok::Punct(Punct::Minus) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(operand), span })
            }
            Tok::Punct(Punct::Bang) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(operand), span })
            }
            Tok::Punct(Punct::Tilde) => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary { op: UnOp::BitNot, operand: Box::new(operand), span })
            }
            Tok::Punct(Punct::Amp) => {
                self.bump();
                let name = self.expect_ident("function name after `&`")?;
                Ok(Expr::FuncRef(name, span))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v, span)),
            Tok::Float(v) => Ok(Expr::Float(v, span)),
            Tok::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma, "`,`")?;
                        }
                    }
                    Ok(Expr::Call { callee: name, args, span })
                } else if self.eat_punct(Punct::LBracket) {
                    let index = self.expr()?;
                    self.expect_punct(Punct::RBracket, "`]`")?;
                    Ok(Expr::Index {
                        base: Box::new(Expr::Ident(name, span)),
                        index: Box::new(index),
                        span,
                    })
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            other => Err(CompileError::new(span, format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] on any syntax error.
pub fn parse(tokens: Vec<Token>) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut globals = Vec::new();
    let mut functions = Vec::new();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Kw(Kw::Var) => globals.push(p.global()?),
            Tok::Kw(Kw::Fn) => functions.push(p.function()?),
            other => {
                return Err(p.err(format!("expected `var` or `fn` at top level, found {other:?}")))
            }
        }
    }
    Ok(Program { globals, functions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_with_initializers() {
        let p = parse_src(
            "var a: int; var b: [int; 4] = {1, 2, 3, 4}; var s: [byte; 3] = \"abc\"; var f: float = 1.5;",
        );
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[1].ty, TypeExpr::Array(Box::new(TypeExpr::Int), 4));
        assert!(matches!(p.globals[2].init, Some(Initializer::Str(_))));
    }

    #[test]
    fn parses_function_with_params_and_ret() {
        let p = parse_src("fn f(a: int, b: [int], c: fn(int) -> int) -> int { return a; }");
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].1, TypeExpr::Slice(Box::new(TypeExpr::Int)));
        assert_eq!(
            f.params[2].1,
            TypeExpr::FnPtr(vec![TypeExpr::Int], Some(Box::new(TypeExpr::Int)))
        );
        assert_eq!(f.ret, Some(TypeExpr::Int));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn m() -> int { return 1 + 2 * 3; }");
        let Stmt::Return { value: Some(Expr::Binary { op, rhs, .. }), .. } =
            &p.functions[0].body[0]
        else {
            panic!("expected return of binary");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_over_logical() {
        let p = parse_src("fn m() -> int { return 1 < 2 && 3 < 4; }");
        let Stmt::Return { value: Some(Expr::Binary { op, .. }), .. } = &p.functions[0].body[0]
        else {
            panic!();
        };
        assert_eq!(*op, BinOp::LogicalAnd);
    }

    #[test]
    fn if_else_chains() {
        let p = parse_src("fn m() { if (1) { } else if (2) { } else { } }");
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn assignment_and_index() {
        let p = parse_src("fn m(a: [int]) { a[0] = a[1] + 1; }");
        assert!(matches!(p.functions[0].body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn while_break_continue() {
        let p = parse_src("fn m() { while (1) { break; continue; } }");
        let Stmt::While { body, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(body[0], Stmt::Break { .. }));
        assert!(matches!(body[1], Stmt::Continue { .. }));
    }

    #[test]
    fn func_ref_and_indirect_call() {
        let p = parse_src("fn f() {} fn m() { var g: fn(); g = &f; g(); }");
        let Stmt::Assign { value, .. } = &p.functions[1].body[1] else { panic!() };
        assert!(matches!(value, Expr::FuncRef(n, _) if n == "f"));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse(lex("fn f( { }").unwrap()).is_err());
        assert!(parse(lex("var x int;").unwrap()).is_err());
        assert!(parse(lex("fn f() { return 1 }").unwrap()).is_err());
        assert!(parse(lex("1 + 1;").unwrap()).is_err());
        assert!(parse(lex("fn f() { if 1 { } }").unwrap()).is_err());
        assert!(parse(lex("var a: [int; 0];").unwrap()).is_err());
        assert!(parse(lex("fn f() {").unwrap()).is_err());
    }

    #[test]
    fn unary_chain() {
        let p = parse_src("fn m() -> int { return -~!1; }");
        let Stmt::Return { value: Some(Expr::Unary { op: UnOp::Neg, .. }), .. } =
            &p.functions[0].body[0]
        else {
            panic!();
        };
    }
}
