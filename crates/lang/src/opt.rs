//! Machine-IR peephole optimizations.
//!
//! The paper's producer is a full LLVM, so the binaries it instruments are
//! optimized code. Our accumulator-style code generator leaves easy wins on
//! the table; this pass removes them *before* instrumentation (annotations
//! attach to whatever stores/branches remain, so optimization composes
//! cleanly with every policy):
//!
//! * `mov r, r` — self-moves;
//! * `push rax; pop rbx` — adjacent spill/reload pairs become `mov rbx, rax`
//!   (and `push r; pop r` disappears entirely);
//! * `jmp L` where `L` is the next instruction — fall-through jumps;
//! * unreferenced labels (keeps later passes' label scans cheap).
//!
//! All rewrites are local and control-flow-safe: a `push`/`pop` pair is only
//! fused when the two instructions are adjacent and no label sits between
//! them (a branch target between the two would change the stack contract).

use crate::mir::{MFunction, MInst, MirProgram};
use deflection_isa::Inst;
use std::collections::HashSet;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `mov r, r` removed.
    pub self_moves: usize,
    /// `push a; pop b` pairs fused to moves (or dropped when `a == b`).
    pub push_pop_pairs: usize,
    /// Fall-through jumps removed.
    pub fallthrough_jumps: usize,
    /// Unreferenced labels dropped.
    pub dead_labels: usize,
}

impl OptStats {
    /// Total rewrites applied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.self_moves + self.push_pop_pairs + self.fallthrough_jumps + self.dead_labels
    }
}

/// Optimizes every function of `program`, returning the rewrite counts.
pub fn optimize(program: &mut MirProgram) -> OptStats {
    let mut stats = OptStats::default();
    for f in &mut program.functions {
        // Iterate to a fixed point: fusing a pair can expose a self-move, etc.
        loop {
            let before = stats;
            optimize_function(f, &mut stats);
            if stats == before {
                break;
            }
        }
    }
    stats
}

fn optimize_function(f: &mut MFunction, stats: &mut OptStats) {
    let mut out: Vec<MInst> = Vec::with_capacity(f.insts.len());
    let mut i = 0;
    while i < f.insts.len() {
        match (&f.insts[i], f.insts.get(i + 1)) {
            // mov r, r
            (MInst::Real(Inst::MovRR { dst, src }), _) if dst == src => {
                stats.self_moves += 1;
                i += 1;
            }
            // push a; pop b  (adjacent, no intervening label)
            (MInst::Real(Inst::Push { reg: a }), Some(MInst::Real(Inst::Pop { reg: b }))) => {
                if a != b {
                    out.push(MInst::Real(Inst::MovRR { dst: *b, src: *a }));
                }
                stats.push_pop_pairs += 1;
                i += 2;
            }
            // jmp L; L:
            (MInst::Jmp(target), Some(MInst::Label(next))) if target == next => {
                stats.fallthrough_jumps += 1;
                i += 1; // keep the label, drop the jump
            }
            _ => {
                out.push(f.insts[i].clone());
                i += 1;
            }
        }
    }

    // Drop labels nothing references.
    let referenced: HashSet<u32> = out
        .iter()
        .filter_map(|inst| match inst {
            MInst::Jmp(l) | MInst::Jcc(_, l) => Some(l.0),
            _ => None,
        })
        .collect();
    let before = out.len();
    out.retain(|inst| match inst {
        MInst::Label(l) => referenced.contains(&l.0),
        _ => true,
    });
    stats.dead_labels += before - out.len();
    f.insts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::Label;
    use deflection_isa::{CondCode, Reg};

    fn func(insts: Vec<MInst>) -> MirProgram {
        let mut f = MFunction::new("main");
        f.reserve_labels(64);
        f.insts = insts;
        MirProgram {
            entry: "main".into(),
            functions: vec![f],
            data: vec![],
            indirect_targets: vec![],
        }
    }

    #[test]
    fn removes_self_moves() {
        let mut p = func(vec![
            MInst::Real(Inst::MovRR { dst: Reg::RAX, src: Reg::RAX }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.self_moves, 1);
        assert_eq!(p.functions[0].insts.len(), 1);
    }

    #[test]
    fn fuses_push_pop_pairs() {
        let mut p = func(vec![
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RBX }),
            MInst::Real(Inst::Push { reg: Reg::RCX }),
            MInst::Real(Inst::Pop { reg: Reg::RCX }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.push_pop_pairs, 2);
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
                MInst::Real(Inst::Halt)
            ]
        );
    }

    #[test]
    fn keeps_push_pop_across_labels() {
        // A label between push and pop is a potential branch target; the
        // pair must survive.
        let mut p = func(vec![
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Label(Label(0)),
            MInst::Real(Inst::Pop { reg: Reg::RBX }),
            MInst::Jmp(Label(0)),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.push_pop_pairs, 0);
        assert_eq!(p.functions[0].insts.len(), 4);
    }

    #[test]
    fn removes_fallthrough_jumps_and_dead_labels() {
        let mut p = func(vec![
            MInst::Jmp(Label(3)),
            MInst::Label(Label(3)),
            MInst::Label(Label(4)), // nothing references this one
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.fallthrough_jumps, 1);
        // Label 3 loses its only reference once the jump dies, so the
        // fixed-point pass removes it too.
        assert_eq!(stats.dead_labels, 2);
        assert_eq!(p.functions[0].insts, vec![MInst::Real(Inst::Halt)]);
    }

    #[test]
    fn keeps_referenced_labels() {
        let mut p = func(vec![
            MInst::Label(Label(0)),
            MInst::Real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            MInst::Jcc(CondCode::Ne, Label(0)),
            MInst::Real(Inst::Halt),
        ]);
        optimize(&mut p);
        assert_eq!(p.functions[0].insts.len(), 4);
    }

    #[test]
    fn fixed_point_cascades() {
        // push rax; pop rax collapses to nothing, exposing jmp-to-next.
        let mut p = func(vec![
            MInst::Jmp(Label(1)),
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RAX }),
            MInst::Label(Label(1)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert!(stats.total() >= 2);
        assert_eq!(p.functions[0].insts, vec![MInst::Real(Inst::Halt)]);
    }
}
