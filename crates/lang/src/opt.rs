//! Machine-IR optimizer mid-end: a [`Pass`] framework plus the passes the
//! producer runs before instrumentation.
//!
//! The paper's producer is a full LLVM, so the binaries it instruments are
//! optimized code. Our accumulator-style code generator leaves easy wins on
//! the table; these passes remove them *before* instrumentation
//! (annotations attach to whatever stores/branches remain, so optimization
//! composes cleanly with every policy) and, just as importantly, reshape
//! the code into forms the in-enclave abstract interpreter can prove:
//!
//! * [`Peephole`] — self-moves, adjacent `push a; pop b` pairs,
//!   fall-through jumps, unreferenced labels;
//! * [`ConstFold`] — collapses the accumulator spill around a constant
//!   operand and folds constant ALU chains, canonicalizing comparisons
//!   against constants into the `cmp reg, imm` form branch refinement
//!   understands best;
//! * [`LoopBound`] — rewrites the materialized-boolean branch shape
//!   (`setcc; cmp reg, 0; jcc`) into a direct conditional jump, compiling
//!   counted loops down to the `cmp reg, imm`-bounded shape;
//! * [`AddrCanon`] — bounds-check-friendly address canonicalization: moves
//!   the index load of an array store next to the store itself instead of
//!   spilling it around the value computation, so the store address keeps
//!   its frame-slot provenance for the analysis;
//! * [`Dce`] — drops unreachable instructions and dead pure register
//!   definitions left behind by the other passes.
//!
//! # Flag discipline contract
//!
//! Rewrites that remove or replace a flag-setting instruction are guarded
//! by a conservative flags-liveness scan, which assumes the discipline the
//! code generator guarantees: flags are consumed only by a `jcc`/`setcc`
//! downstream of their defining compare with no intervening call, return,
//! or indirect branch. Machine IR that reads flags *across* a call or
//! return boundary (which the VM technically preserves) is outside the
//! optimizer's contract; the producer only runs it on code-generator
//! output, which never does.
//!
//! All rewrites are local and control-flow-safe: a `push`/`pop` pair is only
//! fused when the two instructions are adjacent and no label sits between
//! them (a branch target between the two would change the stack contract).

use crate::codegen::ARG_REGS;
use crate::mir::{MFunction, MInst, MirProgram};
use deflection_isa::{AluOp, CondCode, Inst, MemOperand, Reg};
use std::collections::{HashMap, HashSet};

/// Statistics from one [`optimize`] (peephole-only) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `mov r, r` removed.
    pub self_moves: usize,
    /// `push a; pop b` pairs fused to moves (or dropped when `a == b`).
    pub push_pop_pairs: usize,
    /// Fall-through jumps removed.
    pub fallthrough_jumps: usize,
    /// Unreferenced labels dropped.
    pub dead_labels: usize,
}

impl OptStats {
    /// Total rewrites applied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.self_moves + self.push_pop_pairs + self.fallthrough_jumps + self.dead_labels
    }
}

/// Per-pass rewrite counts from one [`optimize_pipeline`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Rewrites applied by [`Peephole`].
    pub peephole: usize,
    /// Constant folds and constant-operand canonicalizations ([`ConstFold`]).
    pub const_folds: usize,
    /// Materialized-boolean branches collapsed ([`LoopBound`]).
    pub loop_bounds: usize,
    /// Array-store index loads canonicalized ([`AddrCanon`]).
    pub addr_canons: usize,
    /// Instructions removed as unreachable or dead ([`Dce`]).
    pub dce: usize,
}

impl PipelineStats {
    /// Total rewrites applied across all passes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.peephole + self.const_folds + self.loop_bounds + self.addr_canons + self.dce
    }
}

/// One machine-IR optimization pass.
///
/// A pass rewrites a single function in place and reports how many
/// rewrites it applied; the [`Pipeline`] re-runs all passes on a function
/// until none of them report progress. Every rewrite must strictly reduce
/// the instruction count (which is what guarantees the fixpoint
/// terminates) and must preserve the program's observable behavior under
/// the flag-discipline contract in the module docs.
pub trait Pass {
    /// Stable pass name (used for stats aggregation and diagnostics).
    fn name(&self) -> &'static str;
    /// Rewrites `f`, returning the number of rewrites applied.
    fn run(&self, f: &mut MFunction) -> usize;
}

/// An ordered list of [`Pass`]es run to a joint fixpoint per function.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The standard producer pipeline, in the order the passes feed each
    /// other: peephole cleanups expose constant-operand shapes, constant
    /// canonicalization exposes the materialized-boolean branch shape,
    /// and DCE sweeps up the leftovers.
    #[must_use]
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![
                Box::new(Peephole),
                Box::new(ConstFold),
                Box::new(LoopBound),
                Box::new(AddrCanon),
                Box::new(Dce),
            ],
        }
    }

    /// A pipeline over an explicit pass list (used by tests to run and
    /// measure passes in isolation).
    #[must_use]
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Pipeline {
        Pipeline { passes }
    }

    /// Optimizes every function of `program` to a fixpoint, returning
    /// `(pass name, rewrite count)` per pass in pipeline order.
    pub fn run(&self, program: &mut MirProgram) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> =
            self.passes.iter().map(|p| (p.name(), 0)).collect();
        for f in &mut program.functions {
            loop {
                let mut changed = 0usize;
                for (pass, count) in self.passes.iter().zip(counts.iter_mut()) {
                    let n = pass.run(f);
                    count.1 += n;
                    changed += n;
                }
                if changed == 0 {
                    break;
                }
            }
        }
        counts
    }
}

/// Runs the [`Pipeline::standard`] pipeline and aggregates its counts.
pub fn optimize_pipeline(program: &mut MirProgram) -> PipelineStats {
    let mut stats = PipelineStats::default();
    for (name, n) in Pipeline::standard().run(program) {
        match name {
            "peephole" => stats.peephole += n,
            "const-fold" => stats.const_folds += n,
            "loop-bound" => stats.loop_bounds += n,
            "addr-canon" => stats.addr_canons += n,
            "dce" => stats.dce += n,
            _ => {}
        }
    }
    stats
}

/// Optimizes every function of `program` with the peephole pass only,
/// returning its fine-grained rewrite counts. Kept as the stable minimal
/// entry point; the producer's full mid-end is [`optimize_pipeline`].
pub fn optimize(program: &mut MirProgram) -> OptStats {
    let mut stats = OptStats::default();
    for f in &mut program.functions {
        // Iterate to a fixed point: fusing a pair can expose a self-move, etc.
        loop {
            let before = stats;
            optimize_function(f, &mut stats);
            if stats == before {
                break;
            }
        }
    }
    stats
}

/// The original peephole cleanups as a [`Pass`].
pub struct Peephole;

impl Pass for Peephole {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn run(&self, f: &mut MFunction) -> usize {
        let mut stats = OptStats::default();
        optimize_function(f, &mut stats);
        stats.total()
    }
}

fn optimize_function(f: &mut MFunction, stats: &mut OptStats) {
    let mut out: Vec<MInst> = Vec::with_capacity(f.insts.len());
    let mut i = 0;
    while i < f.insts.len() {
        match (&f.insts[i], f.insts.get(i + 1)) {
            // mov r, r
            (MInst::Real(Inst::MovRR { dst, src }), _) if dst == src => {
                stats.self_moves += 1;
                i += 1;
            }
            // push a; pop b  (adjacent, no intervening label).
            //
            // Fallthrough *into* the pair — e.g. from a preceding `jcc` whose
            // not-taken path runs straight into the push — is safe: the pair
            // still executes as a unit on that path. The case that would
            // break fusion is a branch *between* the push and the pop, and in
            // machine IR that can only exist as an `MInst::Label` separating
            // the two instructions, which defeats this adjacent match. Each
            // fused pair is counted exactly once (the cursor skips both
            // instructions), even though the enclosing driver loops to a
            // fixpoint.
            (MInst::Real(Inst::Push { reg: a }), Some(MInst::Real(Inst::Pop { reg: b }))) => {
                if a != b {
                    out.push(MInst::Real(Inst::MovRR { dst: *b, src: *a }));
                }
                stats.push_pop_pairs += 1;
                i += 2;
            }
            // jmp L; L:
            (MInst::Jmp(target), Some(MInst::Label(next))) if target == next => {
                stats.fallthrough_jumps += 1;
                i += 1; // keep the label, drop the jump
            }
            _ => {
                out.push(f.insts[i].clone());
                i += 1;
            }
        }
    }

    // Drop labels nothing references.
    let referenced: HashSet<u32> = out
        .iter()
        .filter_map(|inst| match inst {
            MInst::Jmp(l) | MInst::Jcc(_, l) => Some(l.0),
            _ => None,
        })
        .collect();
    let before = out.len();
    out.retain(|inst| match inst {
        MInst::Label(l) => referenced.contains(&l.0),
        _ => true,
    });
    stats.dead_labels += before - out.len();
    f.insts = out;
}

/// Mirrors the VM's exact ALU semantics on known constants; `None` for the
/// faulting cases (divide by zero, `MIN / -1`), which must keep their
/// original instruction so the fault still fires.
fn alu_const(op: AluOp, x: u64, y: u64) -> Option<u64> {
    Some(match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl((y & 63) as u32),
        AluOp::Shr => x.wrapping_shr((y & 63) as u32),
        AluOp::Sar => ((x as i64) >> (y & 63)) as u64,
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::UDiv => {
            if y == 0 {
                return None;
            }
            x / y
        }
        AluOp::SDiv => {
            let (a, b) = (x as i64, y as i64);
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            (a / b) as u64
        }
        AluOp::URem => {
            if y == 0 {
                return None;
            }
            x % y
        }
        AluOp::SRem => {
            let (a, b) = (x as i64, y as i64);
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            (a % b) as u64
        }
    })
}

fn mem_reads(m: &MemOperand, reg: Reg) -> bool {
    m.base == Some(reg) || m.index.is_some_and(|(r, _)| r == reg)
}

/// Whether the concrete instruction reads `reg` (operands, address
/// registers, and the implicit `rsp` of the stack instructions). `Ocall`
/// is treated as reading all its potential argument/result registers.
fn real_reads(inst: &Inst, reg: Reg) -> bool {
    match *inst {
        Inst::MovRR { src, .. } => src == reg,
        Inst::Lea { ref mem, .. } | Inst::Load { ref mem, .. } | Inst::Load8 { ref mem, .. } => {
            mem_reads(mem, reg)
        }
        Inst::Store { ref mem, src } | Inst::Store8 { ref mem, src } => {
            src == reg || mem_reads(mem, reg)
        }
        Inst::StoreImm { ref mem, .. } => mem_reads(mem, reg),
        Inst::CmpMem { reg: r, ref mem } => r == reg || mem_reads(mem, reg),
        Inst::AluRR { dst, src, .. } => dst == reg || src == reg,
        Inst::AluRI { dst, .. } => dst == reg,
        Inst::Neg { reg: r } | Inst::Not { reg: r } => r == reg,
        Inst::CmpRR { lhs, rhs } | Inst::TestRR { lhs, rhs } | Inst::FCmp { lhs, rhs } => {
            lhs == reg || rhs == reg
        }
        Inst::CmpRI { lhs, .. } => lhs == reg,
        Inst::Push { reg: r } => r == reg || reg == Reg::RSP,
        Inst::Pop { .. } | Inst::Ret | Inst::Call { .. } => reg == Reg::RSP,
        Inst::FpuRR { dst, src, .. } => dst == reg || src == reg,
        Inst::CvtIF { src, .. }
        | Inst::CvtFI { src, .. }
        | Inst::FSqrt { src, .. }
        | Inst::FNeg { src, .. } => src == reg,
        Inst::JmpInd { reg: r } | Inst::CallInd { reg: r } => r == reg || reg == Reg::RSP,
        Inst::Ocall { .. } => matches!(reg, Reg::RAX | Reg::RDI | Reg::RSI | Reg::RDX),
        Inst::MovRI { .. }
        | Inst::SetCc { .. }
        | Inst::Jmp { .. }
        | Inst::Jcc { .. }
        | Inst::Nop
        | Inst::Halt
        | Inst::Abort { .. }
        | Inst::AexProbe => false,
    }
}

/// Whether the concrete instruction overwrites the arithmetic flags.
fn real_defines_flags(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::AluRR { .. }
            | Inst::AluRI { .. }
            | Inst::Neg { .. }
            | Inst::CmpRR { .. }
            | Inst::CmpRI { .. }
            | Inst::CmpMem { .. }
            | Inst::TestRR { .. }
            | Inst::FCmp { .. }
    )
}

/// Conservative fuel-bounded liveness scans over one function's
/// instruction list. Liveness is judged against the *current* instruction
/// vector; passes only query positions in the un-rewritten suffix, and
/// every rewrite removes reads rather than adding them, so stale answers
/// err on the "live" (no-rewrite) side.
struct Liveness<'a> {
    insts: &'a [MInst],
    labels: HashMap<u32, usize>,
}

/// Forward-scan budget shared across branch recursion; enough to cross a
/// few basic blocks, small enough to keep the sweep linear in practice.
const LIVENESS_FUEL: u32 = 96;

impl<'a> Liveness<'a> {
    fn new(insts: &'a [MInst]) -> Liveness<'a> {
        let labels = insts
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| match inst {
                MInst::Label(l) => Some((l.0, i)),
                _ => None,
            })
            .collect();
        Liveness { insts, labels }
    }

    /// Whether `reg` is dead at `pos` (redefined before any read on every
    /// path). Runs out of fuel or hits an unanalyzable edge → `false`.
    fn reg_dead_at(&self, mut pos: usize, reg: Reg, fuel: &mut u32) -> bool {
        loop {
            if *fuel == 0 {
                return false;
            }
            *fuel -= 1;
            let Some(inst) = self.insts.get(pos) else {
                return true;
            };
            match inst {
                MInst::Label(_) => pos += 1,
                MInst::Jmp(l) => match self.labels.get(&l.0) {
                    Some(&t) => pos = t,
                    None => return false,
                },
                MInst::Jcc(_, l) => {
                    let Some(&t) = self.labels.get(&l.0) else {
                        return false;
                    };
                    return self.reg_dead_at(t, reg, fuel) && self.reg_dead_at(pos + 1, reg, fuel);
                }
                // Calls read the argument registers and the stack pointers;
                // the accumulator registers are caller-saved scratch.
                MInst::CallSym(_) => {
                    return !(ARG_REGS.contains(&reg) || reg == Reg::RSP || reg == Reg::RBP);
                }
                MInst::CallReg(r) => {
                    return *r != reg
                        && !(ARG_REGS.contains(&reg) || reg == Reg::RSP || reg == Reg::RBP);
                }
                MInst::JmpReg(_) => return false,
                MInst::Ret => return !matches!(reg, Reg::RAX | Reg::RSP | Reg::RBP),
                MInst::LoadSymAddr { dst, .. } => {
                    if *dst == reg {
                        return true;
                    }
                    pos += 1;
                }
                MInst::Real(r) => {
                    if real_reads(r, reg) {
                        return false;
                    }
                    if r.is_terminator() {
                        return true;
                    }
                    if r.written_reg() == Some(reg) {
                        return true;
                    }
                    pos += 1;
                }
            }
        }
    }

    /// Whether the arithmetic flags are dead at `pos` under the module's
    /// flag-discipline contract (never live across calls/returns).
    fn flags_dead_at(&self, mut pos: usize, fuel: &mut u32) -> bool {
        loop {
            if *fuel == 0 {
                return false;
            }
            *fuel -= 1;
            let Some(inst) = self.insts.get(pos) else {
                return true;
            };
            match inst {
                MInst::Label(_) | MInst::LoadSymAddr { .. } => pos += 1,
                MInst::Jmp(l) => match self.labels.get(&l.0) {
                    Some(&t) => pos = t,
                    None => return false,
                },
                MInst::Jcc(..) => return false,
                MInst::CallSym(_) | MInst::CallReg(_) | MInst::JmpReg(_) | MInst::Ret => {
                    return true;
                }
                MInst::Real(r) => match r {
                    Inst::SetCc { .. } => return false,
                    _ if real_defines_flags(r) => return true,
                    _ if r.is_terminator() => return true,
                    _ => pos += 1,
                },
            }
        }
    }
}

/// Constant folding and constant-operand canonicalization.
///
/// Collapses the accumulator spill the code generator emits around a
/// constant right-hand operand, folds fully-constant ALU chains, and
/// rewrites register-register ALU/compare instructions whose right operand
/// is a known dead constant into their immediate forms — in particular
/// turning `mov rbx, N; cmp rax, rbx` into the `cmp rax, imm` shape the
/// verifier's branch refinement consumes directly.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, f: &mut MFunction) -> usize {
        let live = Liveness::new(&f.insts);
        let insts = &f.insts;
        let mut out: Vec<MInst> = Vec::with_capacity(insts.len());
        let mut count = 0usize;
        let mut i = 0;
        while i < insts.len() {
            // push rax; mov rax, C; mov rbx, rax; pop rax  =>  mov rbx, C
            // (the spilled accumulator is restored unchanged; the transient
            // stack slot is unobservable between the adjacent push/pop).
            if let [MInst::Real(Inst::Push { reg: Reg::RAX }), MInst::Real(Inst::MovRI { dst: Reg::RAX, imm }), MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }), MInst::Real(Inst::Pop { reg: Reg::RAX })] =
                window4(insts, i)
            {
                out.push(MInst::Real(Inst::MovRI { dst: Reg::RBX, imm: *imm }));
                count += 1;
                i += 4;
                continue;
            }
            // mov a, X; mov b, Y; alu a, b  =>  mov b, Y; mov a, fold(X, Y)
            // when the folded ALU's flags are never consumed. `b`'s
            // definition is kept (DCE removes it if dead).
            if let [MInst::Real(Inst::MovRI { dst: da, imm: x }), MInst::Real(Inst::MovRI { dst: db, imm: y }), MInst::Real(Inst::AluRR { op, dst, src })] =
                window3(insts, i)
            {
                if dst == da && src == db && da != db {
                    if let Some(r) = alu_const(*op, *x, *y) {
                        let mut fuel = LIVENESS_FUEL;
                        if live.flags_dead_at(i + 3, &mut fuel) {
                            out.push(MInst::Real(Inst::MovRI { dst: *db, imm: *y }));
                            out.push(MInst::Real(Inst::MovRI { dst: *da, imm: r }));
                            count += 1;
                            i += 3;
                            continue;
                        }
                    }
                }
            }
            match window2(insts, i) {
                // mov r, X; alu r, imm  =>  mov r, fold(X, imm)
                Some(
                    [MInst::Real(Inst::MovRI { dst, imm: x }), MInst::Real(Inst::AluRI { op, dst: d2, imm })],
                ) if dst == d2 => {
                    if let Some(r) = alu_const(*op, *x, *imm as u64) {
                        let mut fuel = LIVENESS_FUEL;
                        if live.flags_dead_at(i + 2, &mut fuel) {
                            out.push(MInst::Real(Inst::MovRI { dst: *dst, imm: r }));
                            count += 1;
                            i += 2;
                            continue;
                        }
                    }
                }
                // mov b, Y; alu a, b  =>  alu a, Y  (b dead after; flags and
                // the destination value are identical by construction).
                Some(
                    [MInst::Real(Inst::MovRI { dst: db, imm: y }), MInst::Real(Inst::AluRR { op, dst, src })],
                ) if src == db && dst != db => {
                    let mut fuel = LIVENESS_FUEL;
                    if live.reg_dead_at(i + 2, *db, &mut fuel) {
                        out.push(MInst::Real(Inst::AluRI { op: *op, dst: *dst, imm: *y as i64 }));
                        count += 1;
                        i += 2;
                        continue;
                    }
                }
                // mov b, Y; cmp a, b  =>  cmp a, Y  (b dead after).
                Some(
                    [MInst::Real(Inst::MovRI { dst: db, imm: y }), MInst::Real(Inst::CmpRR { lhs, rhs })],
                ) if rhs == db && lhs != db => {
                    let mut fuel = LIVENESS_FUEL;
                    if live.reg_dead_at(i + 2, *db, &mut fuel) {
                        out.push(MInst::Real(Inst::CmpRI { lhs: *lhs, imm: *y as i64 }));
                        count += 1;
                        i += 2;
                        continue;
                    }
                }
                _ => {}
            }
            out.push(insts[i].clone());
            i += 1;
        }
        f.insts = out;
        count
    }
}

fn window2(insts: &[MInst], i: usize) -> Option<&[MInst; 2]> {
    insts.get(i..i + 2).and_then(|w| w.try_into().ok())
}

fn window3(insts: &[MInst], i: usize) -> &[MInst] {
    insts.get(i..i + 3).unwrap_or(&[])
}

fn window4(insts: &[MInst], i: usize) -> &[MInst] {
    insts.get(i..i + 4).unwrap_or(&[])
}

/// Loop-bound (and branch) materialization.
///
/// The code generator evaluates every comparison to a 0/1 value and then
/// branches on it: `setcc cc, r; cmp r, 0; jcc e/ne, L`. When the
/// materialized boolean and the intermediate flags are dead, the three
/// instructions collapse to a single conditional jump on the *original*
/// flags — compiling a counted loop's `while (i < N)` header down to
/// `cmp reg, imm; jcc ge, end`, the exact bounded shape the verifier's
/// relational branch refinement is built around.
pub struct LoopBound;

impl Pass for LoopBound {
    fn name(&self) -> &'static str {
        "loop-bound"
    }

    fn run(&self, f: &mut MFunction) -> usize {
        let live = Liveness::new(&f.insts);
        let insts = &f.insts;
        let mut out: Vec<MInst> = Vec::with_capacity(insts.len());
        let mut count = 0usize;
        let mut i = 0;
        while i < insts.len() {
            if let Some(
                [MInst::Real(Inst::SetCc { cc, dst }), MInst::Real(Inst::CmpRI { lhs, imm: 0 })],
            ) = window2(insts, i)
            {
                if let Some(MInst::Jcc(jcc, target)) = insts.get(i + 2) {
                    if dst == lhs && matches!(jcc, CondCode::E | CondCode::Ne) {
                        // `jcc e` takes the branch when the boolean is 0,
                        // i.e. when `cc` was false.
                        let direct = if *jcc == CondCode::E { cc.negate() } else { *cc };
                        let dead = |fuel: &mut u32| {
                            let Some(&t) = live.labels.get(&target.0) else {
                                return false;
                            };
                            live.reg_dead_at(i + 3, *dst, fuel)
                                && live.reg_dead_at(t, *dst, fuel)
                                && live.flags_dead_at(i + 3, fuel)
                                && live.flags_dead_at(t, fuel)
                        };
                        let mut fuel = LIVENESS_FUEL;
                        if dead(&mut fuel) {
                            out.push(MInst::Jcc(direct, *target));
                            count += 1;
                            i += 3;
                            continue;
                        }
                    }
                }
            }
            out.push(insts[i].clone());
            i += 1;
        }
        f.insts = out;
        count
    }
}

/// Bounds-check-friendly address canonicalization for indexed stores.
///
/// The code generator compiles `arr[i] = e` as: load the index, spill it
/// with `push rax`, evaluate `e`, then `pop rax` the index back right
/// before the store. This pass moves the index load *after* the value
/// computation instead, deleting the spill:
///
/// ```text
/// load rax, [rbp-d]            <value code>
/// push rax                     mov rbx, rax
/// <value code>         =>      load rax, [rbp-d]
/// mov rbx, rax                 <base into rcx>
/// pop rax                      store [rcx + rax*s], rbx
/// <base into rcx>
/// store [rcx + rax*s], rbx
/// ```
///
/// Besides dropping two stack operations per store, the rewritten shape
/// loads the index directly adjacent to the store, so the store address
/// keeps its frame-slot provenance through the verifier's abstract
/// interpretation (a spilled index must instead survive a push/pop round
/// trip through the abstract stack).
///
/// The value code is only crossed when it is provably transparent to the
/// move: straight-line, call-free, store-free, `rsp`/`rbp`-write-free,
/// push/pop balanced without underflow, and never reading `rax` before
/// redefining it.
pub struct AddrCanon;

/// Whether `insts[from..]` is an expression body the index load can be
/// moved across; returns the index of the balancing `pop rax` terminator
/// sequence start (the `mov rbx, rax` position).
fn value_code_end(insts: &[MInst], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut rax_defined = false;
    let mut i = from;
    while i < insts.len() {
        // The candidate tail: `mov rbx, rax; pop rax` at our own depth.
        if depth == 0 && i > from {
            if let Some(
                [MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }), MInst::Real(Inst::Pop { reg: Reg::RAX })],
            ) = window2(insts, i)
            {
                return Some(i);
            }
        }
        match &insts[i] {
            MInst::Real(inst) => {
                if !rax_defined && real_reads(inst, Reg::RAX) {
                    return None;
                }
                match inst {
                    Inst::Push { .. } => depth += 1,
                    Inst::Pop { .. } => {
                        // A pop at depth 0 that is not our tail would
                        // consume the spilled index itself.
                        depth = depth.checked_sub(1)?;
                    }
                    Inst::Store { .. }
                    | Inst::Store8 { .. }
                    | Inst::StoreImm { .. }
                    | Inst::Ocall { .. }
                    | Inst::AexProbe => return None,
                    _ if inst.is_terminator() => return None,
                    _ => {}
                }
                if mem_of(inst).is_some_and(mem_reads_rsp) {
                    return None;
                }
                match inst.written_reg() {
                    Some(Reg::RSP | Reg::RBP) => return None,
                    Some(Reg::RAX) => rax_defined = true,
                    _ => {}
                }
            }
            MInst::LoadSymAddr { dst, .. } => {
                if *dst == Reg::RAX {
                    rax_defined = true;
                } else if matches!(dst, Reg::RSP | Reg::RBP) {
                    return None;
                }
            }
            _ => return None, // labels, branches, calls, ret
        }
        i += 1;
    }
    None
}

fn mem_of(inst: &Inst) -> Option<&MemOperand> {
    match inst {
        Inst::Lea { mem, .. }
        | Inst::Load { mem, .. }
        | Inst::Load8 { mem, .. }
        | Inst::Store { mem, .. }
        | Inst::Store8 { mem, .. }
        | Inst::StoreImm { mem, .. }
        | Inst::CmpMem { mem, .. } => Some(mem),
        _ => None,
    }
}

fn mem_reads_rsp(m: &MemOperand) -> bool {
    m.base == Some(Reg::RSP) || m.index.is_some_and(|(r, _)| r == Reg::RSP)
}

/// Whether `inst` is a `place_base_into` product: materializes an array
/// base into `dst` reading at most `rbp`.
fn is_base_inst(inst: &MInst, dst: Reg) -> bool {
    match inst {
        MInst::LoadSymAddr { dst: d, .. } => *d == dst,
        MInst::Real(Inst::Lea { dst: d, mem }) | MInst::Real(Inst::Load { dst: d, mem }) => {
            *d == dst && mem.base == Some(Reg::RBP) && mem.index.is_none()
        }
        _ => false,
    }
}

impl Pass for AddrCanon {
    fn name(&self) -> &'static str {
        "addr-canon"
    }

    fn run(&self, f: &mut MFunction) -> usize {
        let insts = &f.insts;
        let mut out: Vec<MInst> = Vec::with_capacity(insts.len());
        let mut count = 0usize;
        let mut i = 0;
        'scan: while i < insts.len() {
            if let Some(
                [MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }), MInst::Real(Inst::Push { reg: Reg::RAX })],
            ) = window2(insts, i)
            {
                if slot.base == Some(Reg::RBP) && slot.index.is_none() {
                    if let Some(tail) = value_code_end(insts, i + 2) {
                        // tail: mov rbx, rax; pop rax; <base>; store
                        let base = insts.get(tail + 2);
                        let store = insts.get(tail + 3);
                        if let (
                            Some(base),
                            Some(MInst::Real(
                                store @ (Inst::Store { mem, .. } | Inst::Store8 { mem, .. }),
                            )),
                        ) = (base, store)
                        {
                            let indexed_on_rax = mem.index.is_some_and(|(r, _)| r == Reg::RAX);
                            let base_reg_ok = mem.base.is_some_and(|b| {
                                b != Reg::RAX && b != Reg::RBX && is_base_inst(base, b)
                            });
                            if indexed_on_rax && base_reg_ok {
                                out.extend(insts[i + 2..tail].iter().cloned());
                                out.push(insts[tail].clone()); // mov rbx, rax
                                out.push(MInst::Real(Inst::Load { dst: Reg::RAX, mem: *slot }));
                                out.push(base.clone());
                                out.push(MInst::Real(*store));
                                count += 1;
                                i = tail + 4;
                                continue 'scan;
                            }
                        }
                    }
                }
            }
            out.push(insts[i].clone());
            i += 1;
        }
        f.insts = out;
        count
    }
}

/// Dead-code elimination: unreachable instruction sweeping plus dead pure
/// register definitions (`mov`/`lea`/symbol-address loads whose result is
/// provably never read). Loads are *not* removed even when dead — a load
/// may fault, and eliding it would elide the fault.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, f: &mut MFunction) -> usize {
        let mut count = 0usize;
        // Unreachable code: everything after a barrier up to the next label.
        let mut reachable = true;
        let before = f.insts.len();
        f.insts.retain(|inst| {
            if let MInst::Label(_) = inst {
                reachable = true;
                return true;
            }
            if !reachable {
                return false;
            }
            let barrier = match inst {
                MInst::Jmp(_) | MInst::Ret | MInst::JmpReg(_) => true,
                MInst::Real(r) => r.is_terminator(),
                _ => false,
            };
            if barrier {
                reachable = false;
            }
            true
        });
        count += before - f.insts.len();

        // Dead pure definitions.
        let live = Liveness::new(&f.insts);
        let mut keep = vec![true; f.insts.len()];
        for (i, inst) in f.insts.iter().enumerate() {
            let dst = match inst {
                MInst::Real(
                    Inst::MovRI { dst, .. } | Inst::MovRR { dst, .. } | Inst::Lea { dst, .. },
                )
                | MInst::LoadSymAddr { dst, .. } => *dst,
                _ => continue,
            };
            if matches!(dst, Reg::RSP | Reg::RBP) {
                continue;
            }
            let mut fuel = LIVENESS_FUEL;
            if live.reg_dead_at(i + 1, dst, &mut fuel) {
                keep[i] = false;
                count += 1;
            }
        }
        if count > 0 {
            let mut it = keep.iter();
            f.insts.retain(|_| *it.next().expect("keep mask length"));
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::Label;
    use deflection_isa::{CondCode, Reg};

    fn func(insts: Vec<MInst>) -> MirProgram {
        let mut f = MFunction::new("main");
        f.reserve_labels(64);
        f.insts = insts;
        MirProgram {
            entry: "main".into(),
            functions: vec![f],
            data: vec![],
            indirect_targets: vec![],
        }
    }

    #[test]
    fn removes_self_moves() {
        let mut p = func(vec![
            MInst::Real(Inst::MovRR { dst: Reg::RAX, src: Reg::RAX }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.self_moves, 1);
        assert_eq!(p.functions[0].insts.len(), 1);
    }

    #[test]
    fn fuses_push_pop_pairs() {
        let mut p = func(vec![
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RBX }),
            MInst::Real(Inst::Push { reg: Reg::RCX }),
            MInst::Real(Inst::Pop { reg: Reg::RCX }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.push_pop_pairs, 2);
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
                MInst::Real(Inst::Halt)
            ]
        );
    }

    #[test]
    fn keeps_push_pop_across_labels() {
        // A label between push and pop is a potential branch target; the
        // pair must survive.
        let mut p = func(vec![
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Label(Label(0)),
            MInst::Real(Inst::Pop { reg: Reg::RBX }),
            MInst::Jmp(Label(0)),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.push_pop_pairs, 0);
        assert_eq!(p.functions[0].insts.len(), 4);
    }

    #[test]
    fn fuses_push_pop_entered_by_fallthrough_from_branch() {
        // Regression: a conditional branch immediately before the pair means
        // the not-taken path *falls through into* the push. That is safe —
        // the pair still executes as a unit on the fallthrough path, and a
        // branch into the middle of the pair is impossible without an
        // intervening label (which defeats the adjacency match). The pair
        // must fuse, and must be counted exactly once even though the
        // driver iterates to a fixpoint.
        let mut p = func(vec![
            MInst::Real(Inst::CmpRI { lhs: Reg::RCX, imm: 0 }),
            MInst::Jcc(CondCode::E, Label(7)),
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RBX }),
            MInst::Label(Label(7)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.push_pop_pairs, 1);
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::CmpRI { lhs: Reg::RCX, imm: 0 }),
                MInst::Jcc(CondCode::E, Label(7)),
                MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
                MInst::Label(Label(7)),
                MInst::Real(Inst::Halt),
            ]
        );
    }

    #[test]
    fn removes_fallthrough_jumps_and_dead_labels() {
        let mut p = func(vec![
            MInst::Jmp(Label(3)),
            MInst::Label(Label(3)),
            MInst::Label(Label(4)), // nothing references this one
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert_eq!(stats.fallthrough_jumps, 1);
        // Label 3 loses its only reference once the jump dies, so the
        // fixed-point pass removes it too.
        assert_eq!(stats.dead_labels, 2);
        assert_eq!(p.functions[0].insts, vec![MInst::Real(Inst::Halt)]);
    }

    #[test]
    fn keeps_referenced_labels() {
        let mut p = func(vec![
            MInst::Label(Label(0)),
            MInst::Real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            MInst::Jcc(CondCode::Ne, Label(0)),
            MInst::Real(Inst::Halt),
        ]);
        optimize(&mut p);
        assert_eq!(p.functions[0].insts.len(), 4);
    }

    #[test]
    fn fixed_point_cascades() {
        // push rax; pop rax collapses to nothing, exposing jmp-to-next.
        let mut p = func(vec![
            MInst::Jmp(Label(1)),
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RAX }),
            MInst::Label(Label(1)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize(&mut p);
        assert!(stats.total() >= 2);
        assert_eq!(p.functions[0].insts, vec![MInst::Real(Inst::Halt)]);
    }

    #[test]
    fn collapses_constant_rhs_spill() {
        // The binary-expression shape for `rax OP 7`.
        let mut p = func(vec![
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 7 }),
            MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RAX }),
            MInst::Real(Inst::AluRR { op: AluOp::Add, dst: Reg::RAX, src: Reg::RBX }),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX }),
            MInst::Ret,
        ]);
        let stats = optimize_pipeline(&mut p);
        assert!(stats.const_folds >= 2, "spill collapse + alu imm fold: {stats:?}");
        // The whole chain becomes `alu rax, 7` (rbx def removed by DCE).
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 7 }),
                MInst::Real(Inst::Store {
                    mem: MemOperand::base_disp(Reg::RBP, -8),
                    src: Reg::RAX,
                }),
                MInst::Ret,
            ]
        );
    }

    #[test]
    fn folds_constant_chains() {
        // 2 + 3 with dead flags folds to a single constant.
        let mut p = func(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 2 }),
            MInst::Real(Inst::MovRI { dst: Reg::RBX, imm: 3 }),
            MInst::Real(Inst::AluRR { op: AluOp::Add, dst: Reg::RAX, src: Reg::RBX }),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX }),
            MInst::Ret,
        ]);
        let stats = optimize_pipeline(&mut p);
        assert!(stats.const_folds >= 1);
        assert!(stats.dce >= 1, "dead rbx constant must be swept: {stats:?}");
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 5 }),
                MInst::Real(Inst::Store {
                    mem: MemOperand::base_disp(Reg::RBP, -8),
                    src: Reg::RAX,
                }),
                MInst::Ret,
            ]
        );
    }

    #[test]
    fn keeps_faulting_division_folds() {
        // 1 / 0 must keep the faulting instruction.
        let mut p = func(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 1 }),
            MInst::Real(Inst::MovRI { dst: Reg::RBX, imm: 0 }),
            MInst::Real(Inst::AluRR { op: AluOp::UDiv, dst: Reg::RAX, src: Reg::RBX }),
            MInst::Ret,
        ]);
        optimize_pipeline(&mut p);
        assert!(
            p.functions[0].insts.iter().any(|i| matches!(
                i,
                MInst::Real(Inst::AluRR { op: AluOp::UDiv, .. })
                    | MInst::Real(Inst::AluRI { op: AluOp::UDiv, .. })
            )),
            "faulting division must survive: {:?}",
            p.functions[0].insts
        );
    }

    #[test]
    fn materializes_loop_bound_compare() {
        // The `while (i < 64)` header after constant canonicalization:
        // cmp rax, 64; setl rax; cmp rax, 0; je end  =>  cmp rax, 64; jge end
        let mut p = func(vec![
            MInst::Label(Label(0)),
            MInst::Real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) }),
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 64 }),
            MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RAX }),
            MInst::Real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX }),
            MInst::Real(Inst::SetCc { cc: CondCode::L, dst: Reg::RAX }),
            MInst::Real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            MInst::Jcc(CondCode::E, Label(1)),
            // body: i = i + 1
            MInst::Real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) }),
            MInst::Real(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 }),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX }),
            MInst::Jmp(Label(0)),
            MInst::Label(Label(1)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize_pipeline(&mut p);
        assert!(stats.const_folds >= 2, "{stats:?}");
        assert_eq!(stats.loop_bounds, 1, "{stats:?}");
        assert_eq!(
            &p.functions[0].insts[..3],
            &[
                MInst::Label(Label(0)),
                MInst::Real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) }),
                MInst::Real(Inst::CmpRI { lhs: Reg::RAX, imm: 64 }),
            ]
        );
        assert_eq!(p.functions[0].insts[3], MInst::Jcc(CondCode::Ge, Label(1)));
    }

    #[test]
    fn loop_bound_blocked_by_live_boolean() {
        // The materialized boolean is stored after the branch: no rewrite.
        let mut p = func(vec![
            MInst::Real(Inst::CmpRI { lhs: Reg::RCX, imm: 3 }),
            MInst::Real(Inst::SetCc { cc: CondCode::L, dst: Reg::RAX }),
            MInst::Real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 }),
            MInst::Jcc(CondCode::E, Label(1)),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX }),
            MInst::Label(Label(1)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize_pipeline(&mut p);
        assert_eq!(stats.loop_bounds, 0, "{stats:?}");
        assert!(p.functions[0].insts.iter().any(|i| matches!(i, MInst::Real(Inst::SetCc { .. }))));
    }

    #[test]
    fn canonicalizes_indexed_store_address() {
        // arr[i] = i * 3: the index spill around the value code collapses
        // and the index load lands adjacent to the store.
        let slot = MemOperand::base_disp(Reg::RBP, -8);
        let mut p = func(vec![
            MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }),
            MInst::Real(Inst::Push { reg: Reg::RAX }),
            // value code: i * 3 (already constant-canonicalized)
            MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }),
            MInst::Real(Inst::AluRI { op: AluOp::Mul, dst: Reg::RAX, imm: 3 }),
            MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
            MInst::Real(Inst::Pop { reg: Reg::RAX }),
            MInst::LoadSymAddr { dst: Reg::RCX, symbol: "arr".into(), addend: 0 },
            MInst::Real(Inst::Store {
                mem: MemOperand::base_index(Reg::RCX, Reg::RAX, 8, 0),
                src: Reg::RBX,
            }),
            MInst::Ret,
        ]);
        let stats = optimize_pipeline(&mut p);
        assert_eq!(stats.addr_canons, 1, "{stats:?}");
        assert_eq!(
            p.functions[0].insts,
            vec![
                MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }),
                MInst::Real(Inst::AluRI { op: AluOp::Mul, dst: Reg::RAX, imm: 3 }),
                MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
                MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }),
                MInst::LoadSymAddr { dst: Reg::RCX, symbol: "arr".into(), addend: 0 },
                MInst::Real(Inst::Store {
                    mem: MemOperand::base_index(Reg::RCX, Reg::RAX, 8, 0),
                    src: Reg::RBX,
                }),
                MInst::Ret,
            ]
        );
    }

    #[test]
    fn addr_canon_blocked_by_calls_and_stores() {
        // A call inside the value code must block the rewrite (the callee
        // could observe or clobber anything).
        let slot = MemOperand::base_disp(Reg::RBP, -8);
        let make = |value: Vec<MInst>| {
            let mut v = vec![
                MInst::Real(Inst::Load { dst: Reg::RAX, mem: slot }),
                MInst::Real(Inst::Push { reg: Reg::RAX }),
            ];
            v.extend(value);
            v.extend([
                MInst::Real(Inst::MovRR { dst: Reg::RBX, src: Reg::RAX }),
                MInst::Real(Inst::Pop { reg: Reg::RAX }),
                MInst::LoadSymAddr { dst: Reg::RCX, symbol: "arr".into(), addend: 0 },
                MInst::Real(Inst::Store {
                    mem: MemOperand::base_index(Reg::RCX, Reg::RAX, 8, 0),
                    src: Reg::RBX,
                }),
                MInst::Ret,
            ]);
            func(v)
        };
        let mut with_call = make(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RDI, imm: 1 }),
            MInst::CallSym("f".into()),
        ]);
        assert_eq!(AddrCanon.run(&mut with_call.functions[0]), 0);
        let mut with_store = make(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RDX, imm: 1 }),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -16), src: Reg::RDX }),
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 2 }),
        ]);
        assert_eq!(AddrCanon.run(&mut with_store.functions[0]), 0);
    }

    #[test]
    fn dce_sweeps_unreachable_and_dead_defs() {
        let mut p = func(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RCX, imm: 9 }), // dead def
            MInst::Jmp(Label(1)),
            MInst::Real(Inst::MovRI { dst: Reg::RAX, imm: 1 }), // unreachable
            MInst::Label(Label(1)),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize_pipeline(&mut p);
        assert!(stats.dce >= 2, "{stats:?}");
        assert!(!p.functions[0].insts.iter().any(|i| matches!(i, MInst::Real(Inst::MovRI { .. }))));
    }

    #[test]
    fn dce_keeps_possibly_faulting_loads() {
        let mut p = func(vec![
            MInst::Real(Inst::Load { dst: Reg::RCX, mem: MemOperand::abs(0x10) }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize_pipeline(&mut p);
        assert_eq!(stats.dce, 0, "{stats:?}");
        assert_eq!(p.functions[0].insts.len(), 2);
    }

    #[test]
    fn liveness_respects_branch_paths() {
        // rbx is read on the taken path only: the const-to-imm rewrite must
        // be blocked.
        let mut p = func(vec![
            MInst::Real(Inst::MovRI { dst: Reg::RBX, imm: 4 }),
            MInst::Real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX }),
            MInst::Jcc(CondCode::L, Label(1)),
            MInst::Real(Inst::Halt),
            MInst::Label(Label(1)),
            MInst::Real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RBX }),
            MInst::Real(Inst::Halt),
        ]);
        let stats = optimize_pipeline(&mut p);
        assert_eq!(stats.const_folds, 0, "{stats:?}");
        assert!(p.functions[0].insts.iter().any(|i| matches!(i, MInst::Real(Inst::CmpRR { .. }))));
    }
}
