//! Semantic analysis: name resolution, type checking, frame layout, global
//! initializer evaluation, and collection of the address-taken function list
//! (the future indirect-branch table).

use crate::ast::{self, BinOp, Initializer, TypeExpr, UnOp};
use crate::hir::{
    Builtin, Expr, ExprKind, Function, Global, LocalSlot, PlaceBase, Program, Stmt, Type,
};
use crate::{CompileError, Span};
use std::collections::HashMap;

/// Maximum number of parameters (one per argument register).
pub const MAX_PARAMS: usize = 6;

/// Type-checks `ast` and produces the typed program.
///
/// # Errors
///
/// Returns a [`CompileError`] for any semantic violation: unknown names,
/// type mismatches, bad initializers, missing `main`, etc.
pub fn check(ast: &ast::Program) -> Result<Program, CompileError> {
    Checker::new().run(ast)
}

struct FuncSig {
    params: Vec<Type>,
    ret: Option<Type>,
}

struct Checker {
    globals: HashMap<String, Type>,
    funcs: HashMap<String, FuncSig>,
    address_taken: Vec<String>,
}

struct FuncCtx {
    slots: Vec<LocalSlot>,
    scopes: Vec<HashMap<String, usize>>,
    cur_offset: u64,
    max_offset: u64,
    loop_depth: u32,
    ret: Option<Type>,
}

impl FuncCtx {
    fn lookup(&self, name: &str) -> Option<usize> {
        for scope in self.scopes.iter().rev() {
            if let Some(&slot) = scope.get(name) {
                return Some(slot);
            }
        }
        None
    }

    fn declare(&mut self, name: &str, ty: Type) -> usize {
        let size = (ty.size() + 7) & !7;
        self.cur_offset += size;
        self.max_offset = self.max_offset.max(self.cur_offset);
        let slot = self.slots.len();
        self.slots.push(LocalSlot { name: name.to_string(), ty, offset: self.cur_offset });
        self.scopes.last_mut().expect("scope stack nonempty").insert(name.to_string(), slot);
        slot
    }
}

impl Checker {
    fn new() -> Self {
        Checker { globals: HashMap::new(), funcs: HashMap::new(), address_taken: Vec::new() }
    }

    fn resolve_type(
        &self,
        t: &TypeExpr,
        span: Span,
        param_pos: bool,
    ) -> Result<Type, CompileError> {
        Ok(match t {
            TypeExpr::Int => Type::Int,
            TypeExpr::Float => Type::Float,
            TypeExpr::Byte => Type::Byte,
            TypeExpr::Array(elem, n) => {
                let elem = self.resolve_type(elem, span, false)?;
                if !elem.is_scalar() && elem != Type::Byte {
                    return Err(CompileError::new(span, "array element must be scalar or byte"));
                }
                Type::Array(Box::new(elem), *n)
            }
            TypeExpr::Slice(elem) => {
                if !param_pos {
                    return Err(CompileError::new(
                        span,
                        "slice types `[T]` are only allowed as parameters",
                    ));
                }
                let elem = self.resolve_type(elem, span, false)?;
                if !elem.is_scalar() && elem != Type::Byte {
                    return Err(CompileError::new(span, "slice element must be scalar or byte"));
                }
                Type::Slice(Box::new(elem))
            }
            TypeExpr::FnPtr(params, ret) => {
                let params = params
                    .iter()
                    .map(|p| self.resolve_type(p, span, true))
                    .collect::<Result<Vec<_>, _>>()?;
                let ret = match ret {
                    Some(r) => Some(Box::new(self.resolve_type(r, span, false)?)),
                    None => None,
                };
                Type::FnPtr(params, ret)
            }
        })
    }

    fn run(mut self, ast: &ast::Program) -> Result<Program, CompileError> {
        // Pass 1: signatures and global types.
        for g in &ast.globals {
            if Builtin::by_name(&g.name).is_some() {
                return Err(CompileError::new(g.span, format!("`{}` is a builtin name", g.name)));
            }
            let ty = self.resolve_type(&g.ty, g.span, false)?;
            if matches!(ty, Type::Byte) {
                return Err(CompileError::new(
                    g.span,
                    "scalar globals cannot be `byte`; use `int`",
                ));
            }
            if self.globals.insert(g.name.clone(), ty).is_some() {
                return Err(CompileError::new(g.span, format!("duplicate global `{}`", g.name)));
            }
        }
        for f in &ast.functions {
            if Builtin::by_name(&f.name).is_some() {
                return Err(CompileError::new(f.span, format!("`{}` is a builtin name", f.name)));
            }
            if self.globals.contains_key(&f.name) {
                return Err(CompileError::new(
                    f.span,
                    format!("`{}` already declared as a global", f.name),
                ));
            }
            if f.params.len() > MAX_PARAMS {
                return Err(CompileError::new(
                    f.span,
                    format!("at most {MAX_PARAMS} parameters are supported"),
                ));
            }
            let params = f
                .params
                .iter()
                .map(|(_, t)| self.resolve_type(t, f.span, true))
                .collect::<Result<Vec<_>, _>>()?;
            for p in &params {
                if !p.is_scalar() {
                    return Err(CompileError::new(f.span, "parameters must be scalar or slice"));
                }
            }
            let ret = match &f.ret {
                Some(t) => {
                    let ty = self.resolve_type(t, f.span, false)?;
                    if !ty.is_scalar() {
                        return Err(CompileError::new(f.span, "return type must be scalar"));
                    }
                    Some(ty)
                }
                None => None,
            };
            if self.funcs.insert(f.name.clone(), FuncSig { params, ret }).is_some() {
                return Err(CompileError::new(f.span, format!("duplicate function `{}`", f.name)));
            }
        }
        match self.funcs.get("main") {
            Some(sig) if sig.params.is_empty() && sig.ret == Some(Type::Int) => {}
            Some(_) => {
                return Err(CompileError::new(
                    Span::default(),
                    "`main` must have no parameters and return `int`",
                ))
            }
            None => return Err(CompileError::new(Span::default(), "missing `fn main() -> int`")),
        }

        // Pass 2: global initializers.
        let mut globals = Vec::new();
        for g in &ast.globals {
            let ty = self.globals[&g.name].clone();
            let init = self.global_init(&ty, g.init.as_ref(), g.span)?;
            globals.push(Global { name: g.name.clone(), ty, init });
        }

        // Pass 3: function bodies.
        let mut functions = Vec::new();
        for f in &ast.functions {
            functions.push(self.check_function(f)?);
        }

        Ok(Program { globals, functions, address_taken: self.address_taken })
    }

    fn global_init(
        &self,
        ty: &Type,
        init: Option<&Initializer>,
        span: Span,
    ) -> Result<Option<Vec<u8>>, CompileError> {
        let Some(init) = init else { return Ok(None) };
        let bytes = match (ty, init) {
            (Type::Int | Type::Float | Type::FnPtr(..), Initializer::Scalar(e)) => {
                self.const_scalar_bytes(ty, e, span)?
            }
            (Type::Array(elem, n), Initializer::List(items)) => {
                if items.len() as u64 > *n {
                    return Err(CompileError::new(span, "too many initializer elements"));
                }
                let mut out = Vec::with_capacity((elem.size() * n) as usize);
                for item in items {
                    out.extend_from_slice(&self.const_scalar_bytes(elem, item, span)?);
                }
                out.resize((elem.size() * n) as usize, 0);
                out
            }
            (Type::Array(elem, n), Initializer::Str(s)) if **elem == Type::Byte => {
                if s.len() as u64 > *n {
                    return Err(CompileError::new(span, "string longer than byte array"));
                }
                let mut out = s.clone();
                out.resize(*n as usize, 0);
                out
            }
            _ => return Err(CompileError::new(span, "initializer does not match type")),
        };
        if bytes.iter().all(|&b| b == 0) {
            Ok(None) // zero image — let it live in .bss
        } else {
            Ok(Some(bytes))
        }
    }

    fn const_scalar_bytes(
        &self,
        ty: &Type,
        e: &ast::Expr,
        span: Span,
    ) -> Result<Vec<u8>, CompileError> {
        match (ty, e) {
            (Type::Int, _) => Ok(self.const_int(e, span)?.to_le_bytes().to_vec()),
            (Type::Byte, _) => {
                let v = self.const_int(e, span)?;
                if !(0..=255).contains(&v) {
                    return Err(CompileError::new(span, "byte initializer out of range"));
                }
                Ok(vec![v as u8])
            }
            (Type::Float, _) => Ok(self.const_float(e, span)?.to_bits().to_le_bytes().to_vec()),
            _ => Err(CompileError::new(span, "unsupported constant initializer")),
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn const_int(&self, e: &ast::Expr, span: Span) -> Result<i64, CompileError> {
        match e {
            ast::Expr::Int(v, _) => Ok(*v),
            ast::Expr::Unary { op: UnOp::Neg, operand, .. } => {
                Ok(self.const_int(operand, span)?.wrapping_neg())
            }
            _ => Err(CompileError::new(e.span(), "expected constant integer")),
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn const_float(&self, e: &ast::Expr, span: Span) -> Result<f64, CompileError> {
        match e {
            ast::Expr::Float(v, _) => Ok(*v),
            ast::Expr::Unary { op: UnOp::Neg, operand, .. } => {
                Ok(-self.const_float(operand, span)?)
            }
            _ => Err(CompileError::new(e.span(), "expected constant float")),
        }
    }

    fn table_index(&mut self, name: &str) -> u32 {
        if let Some(pos) = self.address_taken.iter().position(|n| n == name) {
            pos as u32
        } else {
            self.address_taken.push(name.to_string());
            (self.address_taken.len() - 1) as u32
        }
    }

    fn check_function(&mut self, f: &ast::FunctionDecl) -> Result<Function, CompileError> {
        let sig_ret = self.funcs[&f.name].ret.clone();
        let mut ctx = FuncCtx {
            slots: Vec::new(),
            scopes: vec![HashMap::new()],
            cur_offset: 0,
            max_offset: 0,
            loop_depth: 0,
            ret: sig_ret,
        };
        for (pname, pty) in &f.params {
            let ty = self.resolve_type(pty, f.span, true)?;
            if ctx.lookup(pname).is_some() {
                return Err(CompileError::new(f.span, format!("duplicate parameter `{pname}`")));
            }
            ctx.declare(pname, ty);
        }
        let body = self.check_block(&f.body, &mut ctx)?;
        let frame_size = (ctx.max_offset + 7) & !7;
        Ok(Function {
            name: f.name.clone(),
            param_count: f.params.len(),
            slots: ctx.slots,
            frame_size,
            ret: self.funcs[&f.name].ret.clone(),
            body,
        })
    }

    fn check_block(
        &mut self,
        stmts: &[ast::Stmt],
        ctx: &mut FuncCtx,
    ) -> Result<Vec<Stmt>, CompileError> {
        ctx.scopes.push(HashMap::new());
        let saved_offset = ctx.cur_offset;
        let mut out = Vec::new();
        for s in stmts {
            if let Some(stmt) = self.check_stmt(s, ctx)? {
                out.push(stmt);
            }
        }
        ctx.scopes.pop();
        ctx.cur_offset = saved_offset;
        Ok(out)
    }

    fn check_stmt(
        &mut self,
        s: &ast::Stmt,
        ctx: &mut FuncCtx,
    ) -> Result<Option<Stmt>, CompileError> {
        match s {
            ast::Stmt::Var { name, ty, init, span } => {
                if Builtin::by_name(name).is_some() {
                    return Err(CompileError::new(*span, format!("`{name}` is a builtin name")));
                }
                let ty = self.resolve_type(ty, *span, false)?;
                if ty == Type::Byte {
                    return Err(CompileError::new(
                        *span,
                        "scalar locals cannot be `byte`; use `int`",
                    ));
                }
                let is_array = matches!(ty, Type::Array(..));
                let slot = ctx.declare(name, ty.clone());
                match init {
                    Some(e) => {
                        if is_array {
                            return Err(CompileError::new(
                                *span,
                                "local arrays cannot have initializers",
                            ));
                        }
                        let value = self.check_expr(e, ctx)?;
                        self.expect_ty(&value, &ty, e.span())?;
                        Ok(Some(Stmt::AssignLocal { slot, value }))
                    }
                    None => Ok(None),
                }
            }
            ast::Stmt::Assign { target, value, span } => match target {
                ast::Expr::Ident(name, ispan) => {
                    let value_expr = self.check_expr(value, ctx)?;
                    if let Some(slot) = ctx.lookup(name) {
                        let ty = ctx.slots[slot].ty.clone();
                        if !ty.is_scalar() {
                            return Err(CompileError::new(*ispan, "cannot assign whole arrays"));
                        }
                        self.expect_ty(&value_expr, &ty, value.span())?;
                        Ok(Some(Stmt::AssignLocal { slot, value: value_expr }))
                    } else if let Some(ty) = self.globals.get(name).cloned() {
                        if !ty.is_scalar() {
                            return Err(CompileError::new(*ispan, "cannot assign whole arrays"));
                        }
                        self.expect_ty(&value_expr, &ty, value.span())?;
                        Ok(Some(Stmt::AssignGlobal { name: name.clone(), value: value_expr }))
                    } else {
                        Err(CompileError::new(*ispan, format!("unknown variable `{name}`")))
                    }
                }
                ast::Expr::Index { base, index, span: ispan } => {
                    let (place, elem) = self.resolve_place(base, ctx, *ispan)?;
                    let index_expr = self.check_expr(index, ctx)?;
                    self.expect_ty(&index_expr, &Type::Int, index.span())?;
                    let value_expr = self.check_expr(value, ctx)?;
                    let want = if elem == Type::Byte { Type::Int } else { elem.clone() };
                    self.expect_ty(&value_expr, &want, value.span())?;
                    Ok(Some(Stmt::AssignIndex {
                        base: place,
                        elem,
                        index: index_expr,
                        value: value_expr,
                    }))
                }
                _ => Err(CompileError::new(*span, "invalid assignment target")),
            },
            ast::Stmt::If { cond, then_body, else_body, span } => {
                let cond_expr = self.check_expr(cond, ctx)?;
                self.expect_ty(&cond_expr, &Type::Int, *span)?;
                let then_body = self.check_block(then_body, ctx)?;
                let else_body = self.check_block(else_body, ctx)?;
                Ok(Some(Stmt::If { cond: cond_expr, then_body, else_body }))
            }
            ast::Stmt::While { cond, body, span } => {
                let cond_expr = self.check_expr(cond, ctx)?;
                self.expect_ty(&cond_expr, &Type::Int, *span)?;
                ctx.loop_depth += 1;
                let body = self.check_block(body, ctx)?;
                ctx.loop_depth -= 1;
                Ok(Some(Stmt::While { cond: cond_expr, body }))
            }
            ast::Stmt::Return { value, span } => {
                let ret = ctx.ret.clone();
                match (value, ret) {
                    (None, None) => Ok(Some(Stmt::Return { value: None })),
                    (Some(e), Some(want)) => {
                        let ve = self.check_expr(e, ctx)?;
                        self.expect_ty(&ve, &want, e.span())?;
                        Ok(Some(Stmt::Return { value: Some(ve) }))
                    }
                    (None, Some(_)) => Err(CompileError::new(*span, "missing return value")),
                    (Some(_), None) => {
                        Err(CompileError::new(*span, "function does not return a value"))
                    }
                }
            }
            ast::Stmt::Break { span } => {
                if ctx.loop_depth == 0 {
                    return Err(CompileError::new(*span, "`break` outside loop"));
                }
                Ok(Some(Stmt::Break))
            }
            ast::Stmt::Continue { span } => {
                if ctx.loop_depth == 0 {
                    return Err(CompileError::new(*span, "`continue` outside loop"));
                }
                Ok(Some(Stmt::Continue))
            }
            ast::Stmt::Expr { expr, span } => {
                let e = self.check_expr(expr, ctx)?;
                if !matches!(
                    e.kind,
                    ExprKind::CallDirect { .. }
                        | ExprKind::CallIndirect { .. }
                        | ExprKind::CallBuiltin { .. }
                ) {
                    return Err(CompileError::new(*span, "expression statement must be a call"));
                }
                Ok(Some(Stmt::Expr(e)))
            }
        }
    }

    fn resolve_place(
        &self,
        base: &ast::Expr,
        ctx: &FuncCtx,
        span: Span,
    ) -> Result<(PlaceBase, Type), CompileError> {
        let ast::Expr::Ident(name, _) = base else {
            return Err(CompileError::new(span, "indexing requires a named array"));
        };
        if let Some(slot) = ctx.lookup(name) {
            match ctx.slots[slot].ty.clone() {
                Type::Array(elem, _) => Ok((PlaceBase::LocalArray(slot), *elem)),
                Type::Slice(elem) => Ok((PlaceBase::Slice(slot), *elem)),
                _ => Err(CompileError::new(span, format!("`{name}` is not indexable"))),
            }
        } else if let Some(ty) = self.globals.get(name) {
            match ty {
                Type::Array(elem, _) => Ok((PlaceBase::Global(name.clone()), (**elem).clone())),
                _ => Err(CompileError::new(span, format!("`{name}` is not indexable"))),
            }
        } else {
            Err(CompileError::new(span, format!("unknown variable `{name}`")))
        }
    }

    fn expect_ty(&self, e: &Expr, want: &Type, span: Span) -> Result<(), CompileError> {
        match &e.ty {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(CompileError::new(
                span,
                format!("type mismatch: expected {want:?}, found {t:?}"),
            )),
            None => Err(CompileError::new(span, "void expression used as a value")),
        }
    }

    fn check_args(
        &mut self,
        params: &[Type],
        args: &[ast::Expr],
        ctx: &mut FuncCtx,
        span: Span,
    ) -> Result<Vec<Expr>, CompileError> {
        if params.len() != args.len() {
            return Err(CompileError::new(
                span,
                format!("expected {} arguments, found {}", params.len(), args.len()),
            ));
        }
        let mut out = Vec::with_capacity(args.len());
        for (want, arg) in params.iter().zip(args) {
            if let Type::Slice(elem) = want {
                // Arrays decay to slices at call boundaries.
                if let ast::Expr::Ident(name, ispan) = arg {
                    let place = self.resolve_place(arg, ctx, *ispan);
                    if let Ok((place, arg_elem)) = place {
                        if arg_elem != **elem {
                            return Err(CompileError::new(
                                *ispan,
                                "array element type does not match slice parameter",
                            ));
                        }
                        // A slice local can simply be re-passed by value.
                        if let PlaceBase::Slice(slot) = place {
                            out.push(Expr {
                                ty: Some(want.clone()),
                                kind: ExprKind::ReadLocal(slot),
                            });
                        } else {
                            out.push(Expr {
                                ty: Some(want.clone()),
                                kind: ExprKind::ArrayAddr(place),
                            });
                        }
                        continue;
                    }
                    let _ = name;
                }
                return Err(CompileError::new(
                    arg.span(),
                    "slice argument must be an array or slice variable",
                ));
            }
            let e = self.check_expr(arg, ctx)?;
            self.expect_ty(&e, want, arg.span())?;
            out.push(e);
        }
        Ok(out)
    }

    fn check_expr(&mut self, e: &ast::Expr, ctx: &mut FuncCtx) -> Result<Expr, CompileError> {
        match e {
            ast::Expr::Int(v, _) => Ok(Expr { ty: Some(Type::Int), kind: ExprKind::Int(*v) }),
            ast::Expr::Float(v, _) => Ok(Expr { ty: Some(Type::Float), kind: ExprKind::Float(*v) }),
            ast::Expr::Ident(name, span) => {
                if let Some(slot) = ctx.lookup(name) {
                    let ty = ctx.slots[slot].ty.clone();
                    if !ty.is_scalar() {
                        return Err(CompileError::new(
                            *span,
                            format!("array `{name}` cannot be used as a value here"),
                        ));
                    }
                    Ok(Expr { ty: Some(ty), kind: ExprKind::ReadLocal(slot) })
                } else if let Some(ty) = self.globals.get(name).cloned() {
                    if !ty.is_scalar() {
                        return Err(CompileError::new(
                            *span,
                            format!("array `{name}` cannot be used as a value here"),
                        ));
                    }
                    Ok(Expr { ty: Some(ty), kind: ExprKind::ReadGlobal(name.clone()) })
                } else {
                    Err(CompileError::new(*span, format!("unknown variable `{name}`")))
                }
            }
            ast::Expr::Index { base, index, span } => {
                let (place, elem) = self.resolve_place(base, ctx, *span)?;
                let index_expr = self.check_expr(index, ctx)?;
                self.expect_ty(&index_expr, &Type::Int, index.span())?;
                let result_ty = if elem == Type::Byte { Type::Int } else { elem.clone() };
                Ok(Expr {
                    ty: Some(result_ty),
                    kind: ExprKind::Index { base: place, elem, index: Box::new(index_expr) },
                })
            }
            ast::Expr::FuncRef(name, span) => {
                let Some(sig) = self.funcs.get(name) else {
                    return Err(CompileError::new(*span, format!("unknown function `{name}`")));
                };
                let ty = Type::FnPtr(sig.params.clone(), sig.ret.clone().map(Box::new));
                let table_index = self.table_index(name);
                Ok(Expr {
                    ty: Some(ty),
                    kind: ExprKind::FuncRef { name: name.clone(), table_index },
                })
            }
            ast::Expr::Call { callee, args, span } => {
                // Resolution order: locals/globals holding fn pointers,
                // then builtins, then functions.
                if let Some(slot) = ctx.lookup(callee) {
                    let ty = ctx.slots[slot].ty.clone();
                    let Type::FnPtr(params, ret) = ty else {
                        return Err(CompileError::new(
                            *span,
                            format!("`{callee}` is not callable"),
                        ));
                    };
                    let args = self.check_args(&params, args, ctx, *span)?;
                    return Ok(Expr {
                        ty: ret.map(|b| *b),
                        kind: ExprKind::CallIndirect {
                            target: Box::new(Expr { ty: None, kind: ExprKind::ReadLocal(slot) }),
                            args,
                        },
                    });
                }
                if let Some(Type::FnPtr(params, ret)) = self.globals.get(callee).cloned() {
                    let args = self.check_args(&params, args, ctx, *span)?;
                    return Ok(Expr {
                        ty: ret.map(|b| *b),
                        kind: ExprKind::CallIndirect {
                            target: Box::new(Expr {
                                ty: None,
                                kind: ExprKind::ReadGlobal(callee.clone()),
                            }),
                            args,
                        },
                    });
                }
                if let Some(builtin) = Builtin::by_name(callee) {
                    let args = self.check_args(&builtin.params(), args, ctx, *span)?;
                    return Ok(Expr {
                        ty: builtin.ret(),
                        kind: ExprKind::CallBuiltin { builtin, args },
                    });
                }
                let Some(sig) = self.funcs.get(callee) else {
                    return Err(CompileError::new(*span, format!("unknown function `{callee}`")));
                };
                let (params, ret) = (sig.params.clone(), sig.ret.clone());
                let args = self.check_args(&params, args, ctx, *span)?;
                Ok(Expr { ty: ret, kind: ExprKind::CallDirect { name: callee.clone(), args } })
            }
            ast::Expr::Binary { op, lhs, rhs, span } => {
                let l = self.check_expr(lhs, ctx)?;
                let r = self.check_expr(rhs, ctx)?;
                let lt = l.ty.clone().ok_or_else(|| {
                    CompileError::new(*span, "void expression in binary operation")
                })?;
                let rt = r.ty.clone().ok_or_else(|| {
                    CompileError::new(*span, "void expression in binary operation")
                })?;
                if lt != rt {
                    return Err(CompileError::new(
                        *span,
                        format!("operand type mismatch: {lt:?} vs {rt:?}"),
                    ));
                }
                let (result, float_op) = match (op, &lt) {
                    (BinOp::LogicalAnd | BinOp::LogicalOr, Type::Int) => (Type::Int, false),
                    (
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne,
                        Type::Int,
                    ) => (Type::Int, false),
                    (
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne,
                        Type::Float,
                    ) => (Type::Int, true),
                    (
                        BinOp::Add
                        | BinOp::Sub
                        | BinOp::Mul
                        | BinOp::Div
                        | BinOp::Rem
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::Shl
                        | BinOp::Shr,
                        Type::Int,
                    ) => (Type::Int, false),
                    (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div, Type::Float) => {
                        (Type::Float, true)
                    }
                    _ => {
                        return Err(CompileError::new(
                            *span,
                            format!("operator {op:?} not defined for {lt:?}"),
                        ))
                    }
                };
                Ok(Expr {
                    ty: Some(result),
                    kind: ExprKind::Binary {
                        op: *op,
                        float_op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                })
            }
            ast::Expr::Unary { op, operand, span } => {
                let o = self.check_expr(operand, ctx)?;
                let ot = o.ty.clone().ok_or_else(|| {
                    CompileError::new(*span, "void expression in unary operation")
                })?;
                let (result, float_op) = match (op, &ot) {
                    (UnOp::Neg, Type::Int) => (Type::Int, false),
                    (UnOp::Neg, Type::Float) => (Type::Float, true),
                    (UnOp::Not, Type::Int) => (Type::Int, false),
                    (UnOp::BitNot, Type::Int) => (Type::Int, false),
                    _ => {
                        return Err(CompileError::new(
                            *span,
                            format!("operator {op:?} not defined for {ot:?}"),
                        ))
                    }
                };
                Ok(Expr {
                    ty: Some(result),
                    kind: ExprKind::Unary { op: *op, float_op, operand: Box::new(o) },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Program, CompileError> {
        check(&parse(lex(src).unwrap()).unwrap())
    }

    #[test]
    fn minimal_program() {
        let p = check_src("fn main() -> int { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert!(p.address_taken.is_empty());
    }

    #[test]
    fn missing_main_rejected() {
        assert!(check_src("fn f() {}").is_err());
        assert!(check_src("fn main(x: int) -> int { return x; }").is_err());
        assert!(check_src("fn main() {}").is_err());
    }

    #[test]
    fn frame_layout_assigns_offsets() {
        let p = check_src(
            "fn f(a: int, b: float) -> int { var x: int; var arr: [int; 4]; return a; }
             fn main() -> int { return f(1, 2.0); }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!(f.param_count, 2);
        assert_eq!(f.slots[0].offset, 8);
        assert_eq!(f.slots[1].offset, 16);
        assert_eq!(f.slots[2].offset, 24); // x
        assert_eq!(f.slots[3].offset, 56); // arr = 24 + 32
        assert_eq!(f.frame_size, 56);
    }

    #[test]
    fn block_scoping_reuses_stack_and_allows_shadowing() {
        let p = check_src(
            "fn main() -> int {
                 if (1) { var t: int = 1; } else { }
                 if (1) { var u: int = 2; } else { }
                 var t: int = 3;
                 return t;
             }",
        )
        .unwrap();
        let f = &p.functions[0];
        // t (inner), u, t (outer) all exist as slots, but inner ones share
        // the same offset because scopes pop.
        assert_eq!(f.slots.len(), 3);
        assert_eq!(f.slots[0].offset, f.slots[1].offset);
        assert_eq!(f.frame_size, 8);
    }

    #[test]
    fn type_errors() {
        assert!(check_src("fn main() -> int { return 1.5; }").is_err());
        assert!(check_src("fn main() -> int { return 1 + 1.5; }").is_err());
        assert!(check_src("fn main() -> int { var f: float = 0.0; return f % f; }").is_err());
        assert!(check_src("fn main() -> int { var x: int = 1.0; return x; }").is_err());
        assert!(check_src("fn main() -> int { while (1.0) {} return 0; }").is_err());
        assert!(check_src("fn main() -> int { return unknown; }").is_err());
        assert!(check_src("fn main() -> int { break; return 0; }").is_err());
        assert!(check_src("fn main() -> int { 1 + 1; return 0; }").is_err());
    }

    #[test]
    fn float_arithmetic_accepted() {
        let src = "fn main() -> int {
            var a: float = 1.5;
            var b: float = 2.5;
            var c: float = a * b + a / b - a;
            if (c > 3.0) { return 1; }
            return 0;
        }";
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn func_ref_collects_table() {
        let p = check_src(
            "fn h1() {} fn h2() {}
             fn main() -> int {
                 var a: fn() = &h1;
                 var b: fn() = &h2;
                 var c: fn() = &h1;
                 a(); b(); c();
                 return 0;
             }",
        )
        .unwrap();
        assert_eq!(p.address_taken, vec!["h1".to_string(), "h2".to_string()]);
    }

    #[test]
    fn fnptr_signature_mismatch_rejected() {
        assert!(
            check_src("fn h(x: int) {} fn main() -> int { var a: fn() = &h; return 0; }").is_err()
        );
        assert!(
            check_src("fn h() {} fn main() -> int { var a: fn() = &h; a(1); return 0; }").is_err()
        );
    }

    #[test]
    fn slice_parameters_and_array_decay() {
        let src = "var g: [int; 8];
             fn sum(a: [int], n: int) -> int {
                 var s: int = 0;
                 var i: int = 0;
                 while (i < n) { s = s + a[i]; i = i + 1; }
                 return s;
             }
             fn main() -> int { var l: [int; 4]; return sum(g, 8) + sum(l, 4); }";
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn slice_element_mismatch_rejected() {
        assert!(check_src(
            "var g: [byte; 8];
             fn f(a: [int]) {}
             fn main() -> int { f(g); return 0; }"
        )
        .is_err());
    }

    #[test]
    fn byte_array_semantics() {
        let p = check_src(
            "var buf: [byte; 16] = \"hi\";
             fn main() -> int { buf[2] = 65; return buf[0]; }",
        )
        .unwrap();
        // Reading a byte element yields int.
        let f = &p.functions[0];
        assert!(matches!(
            &f.body[1],
            Stmt::Return { value: Some(Expr { ty: Some(Type::Int), .. }) }
        ));
        // "hi" padded to 16.
        assert_eq!(p.globals[0].init.as_ref().unwrap().len(), 16);
    }

    #[test]
    fn zero_initializer_becomes_bss() {
        let p = check_src("var z: [int; 100] = {0, 0}; fn main() -> int { return 0; }").unwrap();
        assert!(p.globals[0].init.is_none());
    }

    #[test]
    fn array_initializer_bytes() {
        let p = check_src("var a: [int; 3] = {1, -2}; fn main() -> int { return 0; }").unwrap();
        let bytes = p.globals[0].init.as_ref().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[..8], &1i64.to_le_bytes());
        assert_eq!(&bytes[8..16], &(-2i64).to_le_bytes());
        assert_eq!(&bytes[16..], &0i64.to_le_bytes());
    }

    #[test]
    fn builtins_typed() {
        assert!(check_src(
            "fn main() -> int {
                 var n: int = input_len();
                 output_byte(0, input_byte(0));
                 var f: float = fsqrt(itof(n));
                 return ftoi(f) + send(1) + recv() + clock();
             }"
        )
        .is_ok());
        assert!(check_src("fn main() -> int { return fsqrt(1); }").is_err());
        assert!(check_src("var send: int; fn main() -> int { return 0; }").is_err());
        assert!(check_src("fn log(x: int) {} fn main() -> int { return 0; }").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(check_src("var a: int; var a: int; fn main() -> int { return 0; }").is_err());
        assert!(check_src("fn f() {} fn f() {} fn main() -> int { return 0; }").is_err());
        assert!(check_src("var f: int; fn f() {} fn main() -> int { return 0; }").is_err());
    }

    #[test]
    fn too_many_params_rejected() {
        assert!(check_src(
            "fn f(a: int, b: int, c: int, d: int, e: int, g: int, h: int) {}
             fn main() -> int { return 0; }"
        )
        .is_err());
    }

    #[test]
    fn void_in_value_position_rejected() {
        assert!(check_src(
            "fn v() {}
             fn main() -> int { return v() + 1; }"
        )
        .is_err());
    }
}
