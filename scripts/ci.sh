#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the repository root.
#
# Bench smoke mode: `scripts/ci.sh --smoke` (or BENCH_SMOKE=1) additionally
# runs every Criterion bench target once in --quick mode and captures its
# output as target/bench-smoke/BENCH_<name>.json (also copied to the repo
# root), so CI catches bench bit-rot (panicking asserts, broken tables)
# without paying for a full measurement run. Each smoke run also writes a
# telemetry snapshot (target/bench-smoke/METRICS_smoke.json), a validated
# chrome://tracing export of the demo batch (TRACE_smoke.json), one
# sampling-profiler pass (PROFILE_smoke.log), and prints the trend report
# against the committed repo-root series; add `--trend` to make a
# regression past the threshold fail the build.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE="${BENCH_SMOKE:-0}"
TREND_ENFORCE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        --trend) SMOKE=1; TREND_ENFORCE=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# The fault-injection suites run as part of `cargo test` above, but tier-1
# names them explicitly so a packaging/bin-filter regression that silently
# drops them is caught here.
echo "==> tier-1: chaos/fault-injection suite (pool_chaos, sealed_install)"
cargo test -q -p deflection-core --test pool_chaos --test sealed_install

# The icache differential suite runs under the default (traced) dispatch
# above; force one pass through the decode-every-step environment switch so
# the env-var plumbing the CI differential job depends on cannot rot.
echo "==> tier-1: icache differential with DEFLECTION_DECODE_EVERY_STEP=1"
DEFLECTION_DECODE_EVERY_STEP=1 cargo test -q --test icache_differential

# Elision-precision ratchet: the test regenerates PRECISION.json and fails
# if any program proves fewer guards than the committed baseline. The diff
# below closes the other direction — an *improvement* (or any drift) must
# be committed as the new baseline, or the ratchet quietly stops ratcheting.
echo "==> tier-1: precision ratchet (PRECISION.json vs PRECISION.baseline.json)"
cargo test -q --test precision_ratchet || {
    echo "precision ratchet failed:" >&2
    echo "  if the regression is intended, review PRECISION.json, then:" >&2
    echo "  cp PRECISION.json PRECISION.baseline.json" >&2
    exit 1
}
if ! diff -u PRECISION.baseline.json PRECISION.json; then
    echo "precision drifted from the committed baseline:" >&2
    echo "  review the diff, then: cp PRECISION.json PRECISION.baseline.json" >&2
    exit 1
fi

if [ "$SMOKE" = "1" ]; then
    echo "==> bench smoke (--quick, one pass per target)"
    mkdir -p target/bench-smoke
    # Host context stamped into every BENCH file: the trend reporter only
    # enforces regressions between runs with the same core count.
    CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
    benches=$(sed -n 's/^name = "\(.*\)"$/\1/p' crates/bench/Cargo.toml | tail -n +2)
    for bench in $benches; do
        echo "==> bench smoke: $bench"
        log="target/bench-smoke/BENCH_${bench}.log"
        cargo bench -p deflection-bench --bench "$bench" -- --quick >"$log" 2>&1 || {
            cat "$log"
            echo "bench smoke failed: $bench" >&2
            exit 1
        }
        # Emit a machine-readable summary per bench — name, status, and the
        # Criterion measurement lines the run produced — with no external
        # interpreter, and copy it to the repo root so the trajectory is
        # visible outside gitignored target/.
        json="target/bench-smoke/BENCH_${bench}.json"
        {
            printf '{\n  "bench": "%s",\n  "status": "ok",\n' "$bench"
            printf '  "host": {"available_parallelism": %s, "smoke": true, "quick": true},\n' "$CORES"
            printf '  "measurements": ['
            first=1
            while IFS= read -r line; do
                esc=$(printf '%s' "$line" | sed -e 's/\\/\\\\/g' -e 's/"/\\"/g')
                if [ "$first" = 1 ]; then first=0; else printf ','; fi
                printf '\n    "%s"' "$esc"
            done < <(sed -n 's/^[[:space:]]*\(bench .*\)$/\1/p' "$log")
            printf '\n  ]\n}\n'
        } >"$json"
        count=$(sed -n 's/^[[:space:]]*bench .*$/x/p' "$log" | wc -l)
        echo "    wrote $json ($count measurements)"
    done

    echo "==> telemetry snapshot (metrics_snapshot, with chrome-trace export)"
    cargo run -q --release --bin metrics_snapshot -- -o target/bench-smoke/METRICS_smoke.json \
        --trace-out target/bench-smoke/TRACE_smoke.json \
        >target/bench-smoke/METRICS_smoke.log 2>&1 || {
        cat target/bench-smoke/METRICS_smoke.log
        echo "metrics snapshot failed" >&2
        exit 1
    }
    # metrics_snapshot validates the trace before writing it; re-check here
    # with an independent parser when one is available.
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
            target/bench-smoke/TRACE_smoke.json || {
            echo "TRACE_smoke.json is not valid JSON" >&2
            exit 1
        }
    fi
    echo "    wrote target/bench-smoke/METRICS_smoke.json + TRACE_smoke.json"

    echo "==> sampling profiler (profile, one kernel)"
    cargo run -q --release --bin profile -- --kernel "NUMERIC SORT" \
        >target/bench-smoke/PROFILE_smoke.log 2>&1 || {
        cat target/bench-smoke/PROFILE_smoke.log
        echo "profile smoke failed" >&2
        exit 1
    }
    echo "    wrote target/bench-smoke/PROFILE_smoke.log"

    echo "==> closed-loop load harness (loadgen --quick, >=10^5 simulated clients)"
    cargo run -q --release --bin loadgen -- --quick \
        --metrics-out target/bench-smoke/METRICS_loadgen.json \
        >target/bench-smoke/LOADGEN_smoke.log 2>&1 || {
        cat target/bench-smoke/LOADGEN_smoke.log
        echo "loadgen smoke failed (bounded-tail acceptance or harness error)" >&2
        exit 1
    }
    echo "    wrote target/bench-smoke/METRICS_loadgen.json + LOADGEN_smoke.log"

    echo "==> trend report (current: target/bench-smoke, previous: repo root)"
    if [ "$TREND_ENFORCE" = "1" ]; then
        cargo run -q --release --bin trend -- --enforce
    else
        cargo run -q --release --bin trend || true
    fi

    # Refresh the repo-root baseline only AFTER the trend comparison (and,
    # under --trend, only when it passed — set -e aborts above otherwise):
    # copying earlier would overwrite the very series `trend` diffs against,
    # turning every delta into 0% and making the regression gate vacuous.
    for bench in $benches; do
        cp "target/bench-smoke/BENCH_${bench}.json" "BENCH_${bench}.json"
    done
    echo "    refreshed repo-root BENCH_*.json baseline"
fi

echo "==> CI green"
