#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the repository root.
#
# Bench smoke mode: `scripts/ci.sh --smoke` (or BENCH_SMOKE=1) additionally
# runs every Criterion bench target once in --quick mode and captures its
# output under target/bench-smoke/BENCH_<name>.json, so CI catches bench
# bit-rot (panicking asserts, broken tables) without paying for a full
# measurement run.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE="${BENCH_SMOKE:-0}"
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if [ "$SMOKE" = "1" ]; then
    echo "==> bench smoke (--quick, one pass per target)"
    mkdir -p target/bench-smoke
    benches=$(sed -n 's/^name = "\(.*\)"$/\1/p' crates/bench/Cargo.toml | tail -n +2)
    for bench in $benches; do
        echo "==> bench smoke: $bench"
        log="target/bench-smoke/BENCH_${bench}.log"
        cargo bench -p deflection-bench --bench "$bench" -- --quick >"$log" 2>&1 || {
            cat "$log"
            echo "bench smoke failed: $bench" >&2
            exit 1
        }
        # Emit a machine-readable summary per bench: name, status, and the
        # Criterion measurement lines the run produced.
        python3 - "$bench" "$log" <<'EOF' || true
import json, sys
bench, log = sys.argv[1], sys.argv[2]
lines = [l.rstrip() for l in open(log, encoding="utf-8", errors="replace")]
measurements = [l.strip() for l in lines if l.strip().startswith("bench ")]
out = {"bench": bench, "status": "ok", "measurements": measurements}
path = f"target/bench-smoke/BENCH_{bench}.json"
json.dump(out, open(path, "w"), indent=2)
print(f"    wrote {path} ({len(measurements)} measurements)")
EOF
    done
fi

echo "==> CI green"
